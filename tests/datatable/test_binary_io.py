"""Binary table artefacts: round-trip fidelity and failure atomicity.

The format promise is simple: a saved table loads back ``equals`` the
original (schema included), and any damaged file raises a typed
``ArtefactError`` — never a partial table.
"""

import numpy as np
import pytest

from repro.datatable import (
    CategoricalColumn,
    ColumnSpec,
    DataTable,
    MeasurementLevel,
    NumericColumn,
    Role,
    TableSchema,
    cached_read_csv,
    default_cache_path,
    read_binary,
    read_binary_header,
    write_binary,
    write_csv,
)
from repro.datatable.binary import FORMAT_VERSION, MAGIC
from repro.exceptions import (
    ArtefactError,
    ArtefactIntegrityError,
    ArtefactVersionError,
)


@pytest.fixture
def table():
    schema = TableSchema(
        [
            ColumnSpec("aadt", MeasurementLevel.INTERVAL, Role.INPUT),
            ColumnSpec("surface", MeasurementLevel.NOMINAL, Role.INPUT),
            ColumnSpec("target", MeasurementLevel.BINARY, Role.TARGET),
        ]
    )
    return DataTable(
        [
            NumericColumn("aadt", [120.0, None, 88.5, 0.0]),
            CategoricalColumn(
                "surface", ["sealed", None, "gravel", "sealed"]
            ),
            CategoricalColumn.from_codes(
                "target", np.array([0, 1, -1, 0]), ("n", "p")
            ),
        ],
        schema=schema,
    )


class TestRoundTrip:
    def test_mmap_load_equals_original(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        loaded = read_binary(path)
        assert loaded.equals(table)
        assert loaded.column_names == table.column_names

    def test_schema_round_trips(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        loaded = read_binary(path)
        assert loaded.schema is not None
        assert loaded.schema.names == table.schema.names
        assert loaded.schema.target.name == "target"
        assert loaded.schema["surface"].level is MeasurementLevel.NOMINAL

    def test_no_mmap_and_verify_load(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        assert read_binary(path, mmap=False, verify=True).equals(table)
        assert read_binary(path, mmap=True, verify=True).equals(table)

    def test_loaded_columns_are_read_only(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        loaded = read_binary(path)
        assert not loaded.numeric("aadt").flags.writeable
        assert not loaded.categorical("surface").codes.flags.writeable

    def test_empty_and_schemaless_tables(self, tmp_path):
        for name, empty in (
            ("none.rpdt", DataTable.empty()),
            ("zero.rpdt", DataTable([NumericColumn("x", [])])),
        ):
            path = tmp_path / name
            write_binary(empty, path)
            loaded = read_binary(path)
            assert loaded.equals(empty)
            assert loaded.schema is None

    def test_missing_values_survive(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        loaded = read_binary(path)
        assert loaded.column("aadt").to_objects() == [120.0, None, 88.5, 0.0]
        assert loaded.column("surface").to_objects()[1] is None

    def test_meta_round_trips_through_header(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path, meta={"source": {"sha256": "abc"}})
        header = read_binary_header(path)
        assert header["meta"]["source"]["sha256"] == "abc"
        assert header["format_version"] == FORMAT_VERSION


class TestFailureAtomicity:
    def write(self, table, tmp_path):
        path = tmp_path / "t.rpdt"
        write_binary(table, path)
        return path

    def test_bad_magic(self, table, tmp_path):
        path = self.write(table, tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"JUNK"
        path.write_bytes(data)
        with pytest.raises(ArtefactError, match="magic"):
            read_binary(path)

    def test_version_skew(self, table, tmp_path):
        path = self.write(table, tmp_path)
        data = bytearray(path.read_bytes())
        data[4] = FORMAT_VERSION + 1
        path.write_bytes(data)
        with pytest.raises(ArtefactVersionError, match="version"):
            read_binary(path)

    def test_truncated_header(self, table, tmp_path):
        path = self.write(table, tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ArtefactIntegrityError, match="truncated"):
            read_binary(path)

    def test_truncated_data(self, table, tmp_path):
        path = self.write(table, tmp_path)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ArtefactIntegrityError, match="truncated"):
            read_binary(path)

    def test_trailing_garbage(self, table, tmp_path):
        path = self.write(table, tmp_path)
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(ArtefactIntegrityError, match="trailing"):
            read_binary(path)

    def test_header_bitflip(self, table, tmp_path):
        path = self.write(table, tmp_path)
        data = bytearray(path.read_bytes())
        data[30] ^= 0xFF  # inside the header JSON
        path.write_bytes(data)
        with pytest.raises(ArtefactIntegrityError, match="header checksum"):
            read_binary(path)

    def test_out_of_vocabulary_codes_rejected_without_verify(
        self, table, tmp_path
    ):
        path = self.write(table, tmp_path)
        header = read_binary_header(path)
        entry = next(
            c for c in header["columns"] if c["name"] == "target"
        )
        data = bytearray(path.read_bytes())
        offset = header["_data_start"] + entry["offset"]
        data[offset : offset + 8] = np.int64(99).tobytes()
        path.write_bytes(data)
        with pytest.raises(ArtefactIntegrityError, match="vocabulary"):
            read_binary(path)

    def test_numeric_bitflip_caught_with_verify(self, table, tmp_path):
        path = self.write(table, tmp_path)
        header = read_binary_header(path)
        entry = next(c for c in header["columns"] if c["name"] == "aadt")
        data = bytearray(path.read_bytes())
        offset = header["_data_start"] + entry["offset"]
        data[offset] ^= 0xFF
        path.write_bytes(data)
        with pytest.raises(ArtefactIntegrityError, match="checksum"):
            read_binary(path, verify=True)

    def test_not_an_artefact_at_all(self, tmp_path):
        path = tmp_path / "t.rpdt"
        path.write_bytes(b"segment_id,aadt\n1,100\n")
        with pytest.raises(ArtefactError):
            read_binary(path)

    def test_magic_constant_is_stable(self):
        # The on-disk contract: changing this breaks every saved
        # artefact, so it must be a deliberate, versioned decision.
        assert MAGIC == b"RPDT"
        assert FORMAT_VERSION == 1


class TestCsvCache:
    def csv(self, table, tmp_path, name="t.csv"):
        path = tmp_path / name
        write_csv(table, path)
        return path

    def test_first_read_builds_sidecar(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        loaded = cached_read_csv(path)
        assert default_cache_path(path).exists()
        assert loaded.equals(cached_read_csv(path))

    def test_second_read_hits_without_rewriting(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        cached_read_csv(path)
        cache = default_cache_path(path)
        before = cache.stat().st_mtime_ns
        cached_read_csv(path)
        assert cache.stat().st_mtime_ns == before

    def test_source_edit_invalidates(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        first = cached_read_csv(path)
        edited = table.with_column(NumericColumn("aadt", [1.0, 2.0, 3.0, 4.0]))
        write_csv(edited, path)
        reloaded = cached_read_csv(path)
        assert not reloaded.equals(first)
        assert reloaded.column("aadt").to_objects() == [1.0, 2.0, 3.0, 4.0]

    def test_touched_but_identical_source_hits_via_sha(
        self, table, tmp_path
    ):
        path = self.csv(table, tmp_path)
        cached_read_csv(path)
        cache = default_cache_path(path)
        before = cache.stat().st_mtime_ns
        # Rewrite identical bytes: stat changes, content does not.
        content = path.read_bytes()
        path.write_bytes(content)
        import os

        os.utime(path, ns=(0, 0))
        loaded = cached_read_csv(path)
        assert cache.stat().st_mtime_ns == before  # no rebuild
        assert loaded.n_rows == table.n_rows

    def test_corrupt_cache_rebuilds_silently(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        cached_read_csv(path)
        cache = default_cache_path(path)
        cache.write_bytes(b"garbage")
        loaded = cached_read_csv(path)
        assert loaded.n_rows == table.n_rows
        # Sidecar was rewritten and now loads cleanly.
        assert read_binary(cache).n_rows == table.n_rows

    def test_refresh_forces_rebuild(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        cached_read_csv(path)
        cache = default_cache_path(path)
        before = cache.stat().st_mtime_ns
        import time

        time.sleep(0.01)
        cached_read_csv(path, refresh=True)
        assert cache.stat().st_mtime_ns != before

    def test_explicit_cache_path(self, table, tmp_path):
        path = self.csv(table, tmp_path)
        cache = tmp_path / "elsewhere" / "cache.rpdt"
        cache.parent.mkdir()
        loaded = cached_read_csv(path, cache_path=cache)
        assert cache.exists()
        assert loaded.n_rows == table.n_rows
        assert not default_cache_path(path).exists()
