"""Unit tests for typed columns."""

import numpy as np
import pytest

from repro.datatable import (
    CategoricalColumn,
    NumericColumn,
    column_from_values,
)
from repro.exceptions import ColumnTypeError, SchemaError


class TestNumericColumn:
    def test_values_roundtrip(self):
        col = NumericColumn("x", [1, 2.5, None, 4])
        assert col.to_objects() == [1.0, 2.5, None, 4.0]

    def test_missing_mask(self):
        col = NumericColumn("x", [1.0, None, 3.0])
        assert col.missing_mask().tolist() == [False, True, False]
        assert col.n_missing() == 1

    def test_values_are_read_only(self):
        col = NumericColumn("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            col.values[0] = 99.0

    def test_take_reorders(self):
        col = NumericColumn("x", [10.0, 20.0, 30.0])
        taken = col.take(np.array([2, 0]))
        assert taken.to_objects() == [30.0, 10.0]

    def test_filter_length_mismatch_raises(self):
        col = NumericColumn("x", [1.0, 2.0])
        with pytest.raises(SchemaError):
            col.filter(np.array([True]))

    def test_concat(self):
        a = NumericColumn("x", [1.0, None])
        b = NumericColumn("x", [3.0])
        assert a.concat(b).to_objects() == [1.0, None, 3.0]

    def test_concat_type_mismatch_raises(self):
        a = NumericColumn("x", [1.0])
        b = CategoricalColumn("x", ["u"])
        with pytest.raises(ColumnTypeError):
            a.concat(b)

    def test_equals_treats_nan_as_equal(self):
        a = NumericColumn("x", [1.0, None])
        b = NumericColumn("x", [1.0, None])
        c = NumericColumn("x", [1.0, 2.0])
        assert a.equals(b)
        assert not a.equals(c)

    def test_summary(self):
        col = NumericColumn("x", [1.0, 2.0, 3.0, None])
        summary = col.summary()
        assert summary["count"] == 3
        assert summary["missing"] == 1
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["median"] == pytest.approx(2.0)

    def test_summary_all_missing(self):
        col = NumericColumn("x", [None, None])
        summary = col.summary()
        assert summary["count"] == 0
        assert np.isnan(summary["mean"])

    def test_rejects_2d(self):
        with pytest.raises(SchemaError):
            NumericColumn.from_array("x", np.zeros((2, 2)))


class TestCategoricalColumn:
    def test_vocabulary_inference_preserves_order(self):
        col = CategoricalColumn("c", ["b", "a", "b", None])
        assert col.labels == ("b", "a")
        assert col.codes.tolist() == [0, 1, 0, -1]

    def test_explicit_vocabulary_enforced(self):
        with pytest.raises(SchemaError):
            CategoricalColumn("c", ["x"], labels=("a", "b"))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn("c", ["a"], labels=("a", "a"))

    def test_from_codes_validates_range(self):
        with pytest.raises(SchemaError):
            CategoricalColumn.from_codes("c", np.array([3]), ("a", "b"))
        with pytest.raises(SchemaError):
            CategoricalColumn.from_codes("c", np.array([-2]), ("a", "b"))

    def test_value_counts(self):
        col = CategoricalColumn("c", ["a", "b", "a", None], ("a", "b"))
        assert col.value_counts() == {"a": 2, "b": 1}

    def test_concat_merges_vocabularies(self):
        a = CategoricalColumn("c", ["x", "y"], ("x", "y"))
        b = CategoricalColumn("c", ["z", None], ("z",))
        merged = a.concat(b)
        assert merged.to_objects() == ["x", "y", "z", None]
        assert set(merged.labels) == {"x", "y", "z"}

    def test_concat_same_vocabulary_fast_path(self):
        a = CategoricalColumn("c", ["x"], ("x", "y"))
        b = CategoricalColumn("c", ["y"], ("x", "y"))
        assert a.concat(b).to_objects() == ["x", "y"]

    def test_take(self):
        col = CategoricalColumn("c", ["a", "b", None], ("a", "b"))
        assert col.take(np.array([2, 1])).to_objects() == [None, "b"]

    def test_summary_mode(self):
        col = CategoricalColumn("c", ["a", "a", "b"], ("a", "b"))
        assert col.summary()["mode"] == "a"


class TestColumnFromValues:
    def test_numeric_inference(self):
        assert isinstance(column_from_values("x", [1, 2.0, None]), NumericColumn)

    def test_string_inference(self):
        col = column_from_values("x", ["a", None])
        assert isinstance(col, CategoricalColumn)

    def test_empty_defaults_to_numeric(self):
        assert isinstance(column_from_values("x", []), NumericColumn)

    def test_mixed_types_rejected(self):
        with pytest.raises(SchemaError):
            column_from_values("x", [1, "a"])
