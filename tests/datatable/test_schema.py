"""Unit tests for TableSchema / ColumnSpec."""

import pytest

from repro.datatable import ColumnSpec, MeasurementLevel, Role, TableSchema
from repro.exceptions import MissingColumnError, SchemaError


def make_schema() -> TableSchema:
    return TableSchema(
        [
            ColumnSpec("f60", MeasurementLevel.INTERVAL, units="F60"),
            ColumnSpec("road_class", MeasurementLevel.NOMINAL),
            ColumnSpec("crash_prone", MeasurementLevel.BINARY, Role.TARGET),
            ColumnSpec("segment_id", MeasurementLevel.INTERVAL, Role.ID),
        ]
    )


class TestSchema:
    def test_lookup(self):
        schema = make_schema()
        assert schema["f60"].units == "F60"
        assert "road_class" in schema
        assert len(schema) == 4

    def test_missing_lookup(self):
        with pytest.raises(MissingColumnError):
            make_schema()["nope"]

    def test_single_target(self):
        schema = make_schema()
        assert schema.target is not None
        assert schema.target.name == "crash_prone"

    def test_multiple_targets_rejected(self):
        with pytest.raises(SchemaError, match="multiple targets"):
            TableSchema(
                [
                    ColumnSpec("a", MeasurementLevel.BINARY, Role.TARGET),
                    ColumnSpec("b", MeasurementLevel.BINARY, Role.TARGET),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema(
                [
                    ColumnSpec("a", MeasurementLevel.INTERVAL),
                    ColumnSpec("a", MeasurementLevel.NOMINAL),
                ]
            )

    def test_inputs_exclude_target_and_id(self):
        schema = make_schema()
        assert schema.input_names() == ["f60", "road_class"]
        assert schema.interval_inputs() == ["f60"]
        assert schema.nominal_inputs() == ["road_class"]

    def test_with_target_demotes_previous(self):
        schema = make_schema().with_target("f60")
        assert schema.target.name == "f60"
        assert schema["crash_prone"].role is Role.INPUT

    def test_with_target_missing_column(self):
        with pytest.raises(MissingColumnError):
            make_schema().with_target("nope")

    def test_reject(self):
        schema = make_schema().reject("road_class")
        assert schema["road_class"].role is Role.REJECTED
        assert "road_class" not in schema.input_names()

    def test_subset_preserves_order(self):
        schema = make_schema().subset(["road_class", "f60"])
        assert schema.names == ["f60", "road_class"]

    def test_add_returns_new(self):
        schema = make_schema()
        grown = schema.add(ColumnSpec("new", MeasurementLevel.INTERVAL))
        assert "new" in grown
        assert "new" not in schema

    def test_binary_is_categorical(self):
        assert MeasurementLevel.BINARY.is_categorical
        assert MeasurementLevel.NOMINAL.is_categorical
        assert not MeasurementLevel.INTERVAL.is_categorical

    def test_spec_with_role_copies(self):
        spec = ColumnSpec("a", MeasurementLevel.INTERVAL, description="d")
        target = spec.with_role(Role.TARGET)
        assert target.role is Role.TARGET
        assert target.description == "d"
        assert spec.role is Role.INPUT
