"""Unit tests for DataTable."""

import numpy as np
import pytest

from repro.datatable import (
    CategoricalColumn,
    ColumnSpec,
    DataTable,
    MeasurementLevel,
    NumericColumn,
    Role,
    TableSchema,
)
from repro.exceptions import (
    EmptyTableError,
    MissingColumnError,
    SchemaError,
)


class TestConstruction:
    def test_from_columns_mixed(self, toy_table):
        assert toy_table.n_rows == 6
        assert toy_table.n_columns == 3
        assert toy_table.column_names == ["x", "y", "colour"]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(SchemaError, match="unequal lengths"):
            DataTable(
                [NumericColumn("a", [1.0]), NumericColumn("b", [1.0, 2.0])]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            DataTable([NumericColumn("a", [1.0]), NumericColumn("a", [2.0])])

    def test_from_rows(self):
        table = DataTable.from_rows(
            [{"x": 1.0, "c": "u"}, {"x": None, "c": None}]
        )
        assert table.n_rows == 2
        assert table.row(1) == {"x": None, "c": None}

    def test_from_rows_inconsistent_keys_rejected(self):
        with pytest.raises(
            SchemaError,
            match=r"row 1: missing column\(s\) \['x'\]; "
            r"unexpected column\(s\) \['y'\]",
        ):
            DataTable.from_rows([{"x": 1}, {"y": 2}])

    def test_from_rows_reordered_keys_rejected(self):
        with pytest.raises(SchemaError, match="row 1: columns ordered"):
            DataTable.from_rows([{"x": 1, "y": 2}, {"y": 2, "x": 1}])

    def test_from_columns_bad_value_names_column(self):
        with pytest.raises(SchemaError, match="'bad'"):
            DataTable.from_columns({"bad": [1.0, object()]})

    def test_from_columns_numpy_array(self):
        table = DataTable.from_columns({"v": np.array([1.0, 2.0])})
        assert table.numeric("v").tolist() == [1.0, 2.0]

    def test_schema_must_cover_existing_columns(self):
        schema = TableSchema([ColumnSpec("nope", MeasurementLevel.INTERVAL)])
        with pytest.raises(SchemaError, match="nope"):
            DataTable([NumericColumn("x", [1.0])], schema=schema)


class TestAccess:
    def test_missing_column_error_lists_available(self, toy_table):
        with pytest.raises(MissingColumnError) as err:
            toy_table.column("zzz")
        assert "colour" in str(err.value)

    def test_numeric_on_categorical_rejected(self, toy_table):
        with pytest.raises(SchemaError):
            toy_table.numeric("colour")

    def test_row_negative_index(self, toy_table):
        assert toy_table.row(-1)["colour"] == "blue"

    def test_row_out_of_range(self, toy_table):
        with pytest.raises(IndexError):
            toy_table.row(6)

    def test_to_rows_roundtrip(self, toy_table):
        rebuilt = DataTable.from_rows(toy_table.to_rows())
        assert rebuilt.equals(toy_table)


class TestTransforms:
    def test_select_preserves_order(self, toy_table):
        sub = toy_table.select(["colour", "x"])
        assert sub.column_names == ["colour", "x"]

    def test_drop(self, toy_table):
        assert toy_table.drop("y").column_names == ["x", "colour"]

    def test_with_column_replaces(self, toy_table):
        replaced = toy_table.with_column(NumericColumn("x", [0.0] * 6))
        assert replaced.numeric("x").tolist() == [0.0] * 6
        assert replaced.column_names == ["y", "colour", "x"]

    def test_with_column_length_check(self, toy_table):
        with pytest.raises(SchemaError):
            toy_table.with_column(NumericColumn("z", [1.0]))

    def test_rename(self, toy_table):
        renamed = toy_table.rename({"x": "skid"})
        assert "skid" in renamed.column_names
        assert "x" not in renamed.column_names

    def test_filter_and_take(self, toy_table):
        mask = toy_table.numeric("y") > 30
        sub = toy_table.filter(mask)
        assert sub.n_rows == 3
        assert sub.numeric("y").tolist() == [40.0, 50.0, 60.0]

    def test_take_out_of_range(self, toy_table):
        with pytest.raises(IndexError):
            toy_table.take(np.array([99]))

    def test_concat(self, toy_table):
        doubled = toy_table.concat(toy_table)
        assert doubled.n_rows == 12

    def test_concat_mismatched_columns_rejected(self, toy_table):
        with pytest.raises(SchemaError):
            toy_table.concat(toy_table.drop("y"))

    def test_concat_empty_left_identity(self, toy_table):
        assert DataTable.empty().concat(toy_table).equals(toy_table)

    def test_sort_by_numeric_missing_last(self, toy_table):
        ordered = toy_table.sort_by("x")
        values = ordered.column("x").to_objects()
        assert values[-1] is None
        assert values[:-1] == sorted(v for v in values[:-1])

    def test_sort_descending(self, toy_table):
        ordered = toy_table.sort_by("y", descending=True)
        assert ordered.numeric("y").tolist() == [60, 50, 40, 30, 20, 10]

    def test_shuffle_is_permutation(self, toy_table, rng):
        shuffled = toy_table.shuffle(rng)
        assert sorted(shuffled.numeric("y").tolist()) == sorted(
            toy_table.numeric("y").tolist()
        )

    def test_sample_without_replacement_bounds(self, toy_table, rng):
        with pytest.raises(EmptyTableError):
            toy_table.sample(10, rng)

    def test_sample_with_replacement(self, toy_table, rng):
        sampled = toy_table.sample(10, rng, replace=True)
        assert sampled.n_rows == 10


class TestGroupingAndSplitting:
    def test_group_by_categorical(self, toy_table):
        groups = toy_table.group_by("colour")
        assert groups["red"].n_rows == 2
        assert groups["blue"].n_rows == 2
        assert groups[None].n_rows == 1

    def test_group_by_numeric(self):
        table = DataTable([NumericColumn("v", [1.0, 1.0, 2.0, None])])
        groups = table.group_by("v")
        assert groups[1.0].n_rows == 2
        assert groups[None].n_rows == 1

    def test_split_fractions(self, rng):
        table = DataTable([NumericColumn("v", list(range(100)))])
        train, valid = table.split(0.6, rng)
        assert train.n_rows == 60
        assert valid.n_rows == 40
        combined = sorted(
            train.numeric("v").tolist() + valid.numeric("v").tolist()
        )
        assert combined == list(range(100))

    def test_split_invalid_fraction(self, toy_table, rng):
        with pytest.raises(ValueError):
            toy_table.split(1.5, rng)

    def test_stratified_split_keeps_minority(self, rng):
        labels = ["maj"] * 95 + ["min"] * 5
        table = DataTable(
            [CategoricalColumn("cls", labels, ("maj", "min"))]
        )
        train, valid = table.split(0.6, rng, stratify_by="cls")
        train_counts = train.categorical("cls").value_counts()
        valid_counts = valid.categorical("cls").value_counts()
        assert train_counts["min"] >= 1
        assert valid_counts["min"] >= 1
        assert train_counts["min"] + valid_counts["min"] == 5

    def test_split_too_small(self, rng):
        table = DataTable([NumericColumn("v", [1.0])])
        with pytest.raises(EmptyTableError):
            table.split(0.5, rng)


class TestSchemaOnTable:
    def test_with_schema_and_subset(self, toy_table):
        schema = TableSchema(
            [
                ColumnSpec("x", MeasurementLevel.INTERVAL),
                ColumnSpec("colour", MeasurementLevel.NOMINAL, Role.TARGET),
            ]
        )
        table = toy_table.with_schema(schema)
        sub = table.select(["x", "colour"])
        assert sub.schema is not None
        assert sub.schema.target.name == "colour"

    def test_describe(self, toy_table):
        desc = toy_table.describe()
        assert desc["x"]["missing"] == 1
        assert desc["colour"]["levels"] == 3


class TestSchemaThroughTransforms:
    """Schema metadata must survive (or be dropped) coherently."""

    def schema(self):
        return TableSchema(
            [
                ColumnSpec("x", MeasurementLevel.INTERVAL, Role.INPUT),
                ColumnSpec("colour", MeasurementLevel.NOMINAL, Role.TARGET),
            ]
        )

    def test_rename_carries_schema(self, toy_table):
        table = toy_table.with_schema(self.schema())
        renamed = table.rename({"x": "skid", "colour": "hue"})
        assert renamed.schema is not None
        assert renamed.schema.names == ["skid", "hue"]
        assert renamed.schema["skid"].level is MeasurementLevel.INTERVAL
        assert renamed.schema.target.name == "hue"

    def test_rename_of_unspecced_column_keeps_schema(self, toy_table):
        table = toy_table.with_schema(self.schema())
        renamed = table.rename({"y": "speed"})
        assert renamed.schema is not None
        assert renamed.schema.names == ["x", "colour"]

    def test_with_column_same_kind_keeps_spec(self, toy_table):
        table = toy_table.with_schema(self.schema())
        replaced = table.with_column(NumericColumn("x", [0.0] * 6))
        assert replaced.schema is not None
        assert replaced.schema["x"].level is MeasurementLevel.INTERVAL

    def test_with_column_kind_change_drops_stale_spec(self, toy_table):
        table = toy_table.with_schema(self.schema())
        replaced = table.with_column(
            CategoricalColumn("x", ["lo", "hi", "lo", "hi", "lo", "hi"])
        )
        # A numeric spec cannot describe a categorical column; keeping
        # it would fail validation (or worse, lie).  It is dropped.
        assert replaced.schema is not None
        assert "x" not in replaced.schema.names
        assert replaced.schema.target.name == "colour"

    def test_slice_preserves_schema_and_is_view(self, toy_table):
        table = toy_table.with_schema(self.schema())
        view = table.slice(1, 4)
        assert view.n_rows == 3
        assert view.schema is not None and view.schema.names == table.schema.names
        assert view.numeric("y").tolist() == [20.0, 30.0, 40.0]
        # Zero-copy: the slice shares the parent's buffer.
        assert np.shares_memory(view.numeric("y"), table.numeric("y"))

    def test_slice_clamps_like_python(self, toy_table):
        assert toy_table.slice(4, 100).n_rows == 2
        assert toy_table.slice(6, 6).n_rows == 0
        assert toy_table.head(100).n_rows == 6
        assert toy_table.head(-3).n_rows == 0

    def test_to_rows_limit(self, toy_table):
        assert toy_table.to_rows(limit=2) == [
            toy_table.row(0),
            toy_table.row(1),
        ]
        assert toy_table.to_rows(limit=0) == []
        assert toy_table.to_rows(limit=99) == toy_table.to_rows()
