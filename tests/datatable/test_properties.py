"""Property-based tests for the datatable substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatable import (
    DataTable,
    NumericColumn,
    from_csv_string,
    to_csv_string,
)

# Finite floats that survive a text round-trip exactly enough for
# equality via repr; None models missingness.
floats = st.one_of(
    st.none(),
    st.floats(
        allow_nan=False,
        allow_infinity=False,
        min_value=-1e9,
        max_value=1e9,
        width=32,
    ),
)
labels = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd"]))


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    numeric = draw(st.lists(floats, min_size=n, max_size=n))
    cats = draw(st.lists(labels, min_size=n, max_size=n))
    return DataTable.from_columns({"num": numeric, "cat": cats})


@given(tables())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_preserves_table(table):
    rebuilt = from_csv_string(to_csv_string(table))
    # All-missing categorical columns deserialise as numeric; both
    # represent the same (empty) information, so compare objects.
    assert rebuilt.column("num").to_objects() == [
        None if v is None else float(np.float64(v))
        for v in table.column("num").to_objects()
    ]
    assert rebuilt.column("cat").to_objects() == table.column(
        "cat"
    ).to_objects()


@given(tables(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_shuffle_preserves_multiset(table, seed):
    rng = np.random.default_rng(seed)
    shuffled = table.shuffle(rng)
    assert sorted(
        map(str, table.column("cat").to_objects())
    ) == sorted(map(str, shuffled.column("cat").to_objects()))


@given(tables())
@settings(max_examples=50, deadline=None)
def test_filter_then_concat_partition(table):
    """Filtering a mask and its complement partitions the rows."""
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[:: 2] = True
    part_a = table.filter(mask)
    part_b = table.filter(~mask)
    assert part_a.n_rows + part_b.n_rows == table.n_rows
    rebuilt = part_a.concat(part_b)
    assert rebuilt.n_rows == table.n_rows


@given(
    st.lists(floats, min_size=2, max_size=40),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_split_is_partition(values, seed):
    table = DataTable([NumericColumn("v", values)])
    rng = np.random.default_rng(seed)
    train, valid = table.split(0.5, rng)
    assert train.n_rows + valid.n_rows == table.n_rows
    assert train.n_rows >= 1 and valid.n_rows >= 1


@given(tables())
@settings(max_examples=40, deadline=None)
def test_sort_by_is_stable_permutation(table):
    ordered = table.sort_by("num")
    assert ordered.n_rows == table.n_rows
    values = [
        v for v in ordered.column("num").to_objects() if v is not None
    ]
    assert values == sorted(values)
    # Missing values are all at the end.
    objects = ordered.column("num").to_objects()
    seen_none = False
    for v in objects:
        if v is None:
            seen_none = True
        else:
            assert not seen_none
