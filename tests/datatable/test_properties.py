"""Property-based tests for the datatable substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatable import (
    DataTable,
    NumericColumn,
    from_csv_string,
    to_csv_string,
)

# Finite floats that survive a text round-trip exactly enough for
# equality via repr; None models missingness.
floats = st.one_of(
    st.none(),
    st.floats(
        allow_nan=False,
        allow_infinity=False,
        min_value=-1e9,
        max_value=1e9,
        width=32,
    ),
)
labels = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "dd"]))


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    numeric = draw(st.lists(floats, min_size=n, max_size=n))
    cats = draw(st.lists(labels, min_size=n, max_size=n))
    return DataTable.from_columns({"num": numeric, "cat": cats})


@given(tables())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_preserves_table(table):
    rebuilt = from_csv_string(to_csv_string(table))
    # All-missing categorical columns deserialise as numeric; both
    # represent the same (empty) information, so compare objects.
    assert rebuilt.column("num").to_objects() == [
        None if v is None else float(np.float64(v))
        for v in table.column("num").to_objects()
    ]
    assert rebuilt.column("cat").to_objects() == table.column(
        "cat"
    ).to_objects()


@given(tables(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_shuffle_preserves_multiset(table, seed):
    rng = np.random.default_rng(seed)
    shuffled = table.shuffle(rng)
    assert sorted(
        map(str, table.column("cat").to_objects())
    ) == sorted(map(str, shuffled.column("cat").to_objects()))


@given(tables())
@settings(max_examples=50, deadline=None)
def test_filter_then_concat_partition(table):
    """Filtering a mask and its complement partitions the rows."""
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[:: 2] = True
    part_a = table.filter(mask)
    part_b = table.filter(~mask)
    assert part_a.n_rows + part_b.n_rows == table.n_rows
    rebuilt = part_a.concat(part_b)
    assert rebuilt.n_rows == table.n_rows


@given(
    st.lists(floats, min_size=2, max_size=40),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_split_is_partition(values, seed):
    table = DataTable([NumericColumn("v", values)])
    rng = np.random.default_rng(seed)
    train, valid = table.split(0.5, rng)
    assert train.n_rows + valid.n_rows == table.n_rows
    assert train.n_rows >= 1 and valid.n_rows >= 1


@given(tables())
@settings(max_examples=40, deadline=None)
def test_sort_by_is_stable_permutation(table):
    ordered = table.sort_by("num")
    assert ordered.n_rows == table.n_rows
    values = [
        v for v in ordered.column("num").to_objects() if v is not None
    ]
    assert values == sorted(values)
    # Missing values are all at the end.
    objects = ordered.column("num").to_objects()
    seen_none = False
    for v in objects:
        if v is None:
            seen_none = True
        else:
            assert not seen_none


# -- bit-identity: vectorised kernels vs pre-refactor semantics -----------
#
# The columnar rewrite replaced per-row python loops with contiguous
# numpy kernels.  These properties pin the new kernels to reference
# implementations written the way the old code worked — object lists
# and explicit loops — so any semantic drift (ordering, missing-value
# placement, stability) fails loudly.

from repro.datatable import (  # noqa: E402
    CategoricalColumn,
    read_binary,
    write_binary,
)
from repro.evaluation.validation import (  # noqa: E402
    stratified_fold_codes,
    stratified_kfold_indices,
)


def _reference_group_by(table, name):
    """Pre-refactor group_by: row loop over to_objects()."""
    col = table.column(name)
    buckets: dict = {}
    for i, value in enumerate(col.to_objects()):
        buckets.setdefault(value, []).append(i)
    missing = buckets.pop(None, None)
    if col.is_numeric:
        keys = sorted(buckets)
    else:
        keys = [label for label in col.labels if label in buckets]
    ordered = {key: buckets[key] for key in keys}
    if missing is not None:
        ordered[None] = missing
    return ordered


def _rows_of(table):
    return [table.row(i) for i in range(table.n_rows)]


@given(tables())
@settings(max_examples=60, deadline=None)
def test_group_by_matches_row_loop_reference(table):
    for name in ("num", "cat"):
        reference = _reference_group_by(table, name)
        groups = table.group_by(name)
        assert list(groups) == list(reference)
        for key, indices in reference.items():
            assert _rows_of(groups[key]) == [table.row(i) for i in indices]


@given(tables())
@settings(max_examples=60, deadline=None)
def test_to_rows_matches_row_loop(table):
    assert table.to_rows() == _rows_of(table)
    for limit in (0, 1, table.n_rows, table.n_rows + 5):
        assert table.to_rows(limit=limit) == _rows_of(table)[:limit]


@given(tables())
@settings(max_examples=60, deadline=None)
def test_slice_matches_take(table):
    n = table.n_rows
    for start, stop in ((0, n), (1, n), (0, n - 1), (n, n), (1, 1)):
        sliced = table.slice(start, stop)
        taken = table.take(np.arange(start, max(start, stop)))
        assert sliced.n_rows == taken.n_rows
        assert _rows_of(sliced) == _rows_of(taken)


@given(tables())
@settings(max_examples=40, deadline=None)
def test_sort_by_matches_object_sort(table):
    for descending in (False, True):
        ordered = table.sort_by("num", descending=descending)
        objects = table.column("num").to_objects()
        present = [v for v in objects if v is not None]
        expected = sorted(present, reverse=descending)
        expected += [None] * (len(objects) - len(present))
        assert ordered.column("num").to_objects() == expected


@given(st.lists(labels, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_categorical_equals_is_vocabulary_independent(values):
    auto = CategoricalColumn("c", values)
    explicit = CategoricalColumn("c", values, ("dd", "c", "b", "a"))
    assert auto.equals(explicit)
    assert explicit.equals(auto)
    if any(v is not None for v in values):
        flipped = ["b" if v == "a" else v for v in values]
        if flipped != values:
            assert not auto.equals(CategoricalColumn("c", flipped))


@given(table=tables())
@settings(max_examples=40, deadline=None)
def test_binary_roundtrip_property(tmp_path_factory, table):
    path = tmp_path_factory.mktemp("rpdt") / "t.rpdt"
    write_binary(table, path)
    assert read_binary(path).equals(table)
    assert read_binary(path, mmap=False, verify=True).equals(table)


@given(
    st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=60),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_fold_codes_match_legacy_fold_lists(class_ids, k, seed):
    y = np.asarray(class_ids, dtype=np.int64)
    codes = stratified_fold_codes(y, k, np.random.default_rng(seed))
    folds = stratified_kfold_indices(y, k, np.random.default_rng(seed))

    # The pre-refactor implementation concatenated per-class chunks of
    # np.array_split over a per-class permutation, in class-value order.
    rng = np.random.default_rng(seed)
    legacy = [[] for _ in range(k)]
    for value in np.unique(y):
        members = rng.permutation(np.flatnonzero(y == value))
        for fold_id, chunk in enumerate(np.array_split(members, k)):
            legacy[fold_id].extend(int(i) for i in chunk)

    assert codes.shape == y.shape and codes.dtype == np.int64
    for fold_id in range(k):
        from_codes = set(np.flatnonzero(codes == fold_id).tolist())
        assert from_codes == set(legacy[fold_id])
        assert from_codes == set(folds[fold_id].tolist())
    # Folds partition the rows exactly.
    assert sorted(i for fold in legacy for i in fold) == list(range(y.size))
