"""CSV round-trip tests."""

import pytest

from repro.datatable import (
    from_csv_string,
    read_csv,
    to_csv_string,
    write_csv,
)
from repro.exceptions import SchemaError


class TestCsvRoundTrip:
    def test_string_roundtrip(self, toy_table):
        rebuilt = from_csv_string(to_csv_string(toy_table))
        assert rebuilt.equals(toy_table)

    def test_file_roundtrip(self, toy_table, tmp_path):
        path = tmp_path / "table.csv"
        write_csv(toy_table, path)
        assert read_csv(path).equals(toy_table)

    def test_missing_values_serialise_empty(self, toy_table):
        text = to_csv_string(toy_table)
        lines = text.strip().splitlines()
        # Row 2 has a missing x, row 3 a missing colour.
        assert lines[3].startswith(",")
        assert lines[4].endswith(",")

    def test_integral_floats_render_without_decimal(self, toy_table):
        text = to_csv_string(toy_table)
        assert "10.0" not in text
        assert ",10," in text or text.splitlines()[1].split(",")[1] == "10"


class TestCsvParsing:
    def test_type_inference(self):
        table = from_csv_string("a,b\n1,x\n2.5,\n")
        assert table.numeric("a").tolist() == [1.0, 2.5]
        assert table.column("b").to_objects() == ["x", None]

    def test_no_header_rejected(self):
        with pytest.raises(SchemaError, match="no header"):
            from_csv_string("")

    def test_duplicate_header_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            from_csv_string("a,a\n1,2\n")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError, match="line 3"):
            from_csv_string("a,b\n1,2\n3\n")

    def test_numeric_column_with_stray_text_becomes_categorical(self):
        table = from_csv_string("a\n1\noops\n")
        assert table.column("a").to_objects() == ["1", "oops"]

    def test_empty_file_with_header_only(self):
        table = from_csv_string("a,b\n")
        assert table.n_rows == 0
        assert table.column_names == ["a", "b"]
