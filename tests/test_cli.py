"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "generate",
            "study",
            "calibrate",
            "train",
            "score",
            "serve",
            "loadtest",
            "wetdry",
        ):
            assert command in text

    def test_loadtest_options_registered(self):
        args = build_parser().parse_args(
            [
                "loadtest",
                "models",
                "--profile",
                "mixed",
                "--duration",
                "5",
                "--seed",
                "7",
            ]
        )
        assert args.command == "loadtest"
        assert args.profile == "mixed"
        assert args.duration == 5.0
        assert args.seed == 7
        assert args.rate == 0.0  # closed loop by default

    def test_serve_options_registered(self):
        args = build_parser().parse_args(
            ["serve", "models", "--port", "0", "--max-batch", "8"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_batch == 8
        assert args.max_wait_ms == 5.0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_writes_csvs(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                str(tmp_path / "out"),
                "--segments",
                "400",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        for name in (
            "segments.csv",
            "crash_instances.csv",
            "no_crash_instances.csv",
        ):
            assert (tmp_path / "out" / name).exists()
        assert "wrote 400 segments" in capsys.readouterr().out

    def test_train_then_score(self, tmp_path, capsys):
        model_path = tmp_path / "scorer.json"
        assert (
            main(
                [
                    "train",
                    str(model_path),
                    "--segments",
                    "1200",
                    "--seed",
                    "5",
                    "--threshold",
                    "8",
                ]
            )
            == 0
        )
        assert model_path.exists()
        out_dir = tmp_path / "data"
        main(
            [
                "generate",
                str(out_dir),
                "--segments",
                "400",
                "--seed",
                "6",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "score",
                str(model_path),
                str(out_dir / "segments.csv"),
                "--top",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top 5 treatment candidates" in out
        assert "expected crash-prone km" in out

    def test_score_json_and_out(self, tmp_path, capsys):
        model_path = tmp_path / "scorer.json"
        assert main(
            ["train", str(model_path), "--segments", "1200", "--seed", "5"]
        ) == 0
        out_dir = tmp_path / "data"
        main(["generate", str(out_dir), "--segments", "400", "--seed", "6"])
        capsys.readouterr()
        scored_csv = tmp_path / "scored.csv"
        code = main(
            [
                "score",
                str(model_path),
                str(out_dir / "segments.csv"),
                "--top", "5",
                "--json",
                "--out", str(scored_csv),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["threshold"] == 8
        assert len(payload["results"]) == 5
        first = payload["results"][0]
        assert set(first) == {
            "rank", "segment_id", "probability", "crash_prone",
        }

        from repro.datatable import read_csv

        scored = read_csv(scored_csv)
        assert scored.n_rows == 400
        assert scored.column_names == [
            "rank", "segment_id", "probability", "crash_prone",
        ]
        probabilities = scored.numeric("probability")
        assert ((probabilities >= 0) & (probabilities <= 1)).all()
        # The CSV is ranked descending and agrees with the JSON head.
        assert float(probabilities[0]) == first["probability"]

    def test_loadtest_self_host_and_slo_gate(self, tmp_path, capsys):
        model_dir = tmp_path / "models"
        model_dir.mkdir()
        assert main(
            [
                "train",
                str(model_dir / "cp8.json"),
                "--segments",
                "1200",
                "--seed",
                "5",
            ]
        ) == 0
        capsys.readouterr()
        slo = tmp_path / "slo.json"
        slo.write_text(
            '{"rules": [{"endpoint": "POST /v1/score",'
            ' "max_error_rate": 0.0, "max_p99_ms": 60000}]}'
        )
        code = main(
            [
                "loadtest",
                str(model_dir),
                "--profile",
                "score",
                "--duration",
                "0.6",
                "--warmup",
                "0.2",
                "--segments",
                "400",
                "--seed",
                "7",
                "--slo",
                str(slo),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Load test: profile score" in out
        assert "parity POST /v1/score" in out
        assert "prometheus scrapes" in out

        # An impossible SLO flips the exit code to 1.
        strict = tmp_path / "strict.json"
        strict.write_text(
            '{"rules": [{"endpoint": "POST /v1/score",'
            ' "max_p99_ms": 0.0001}]}'
        )
        code = main(
            [
                "loadtest",
                str(model_dir),
                "--profile",
                "score",
                "--duration",
                "0.4",
                "--warmup",
                "0",
                "--segments",
                "400",
                "--seed",
                "7",
                "--slo",
                str(strict),
            ]
        )
        assert code == 1
        assert "SLO VIOLATION" in capsys.readouterr().out

    def test_loadtest_json_report(self, tmp_path, capsys):
        model_dir = tmp_path / "models"
        model_dir.mkdir()
        assert main(
            [
                "train",
                str(model_dir / "cp8.json"),
                "--segments",
                "1200",
                "--seed",
                "5",
            ]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "loadtest",
                str(model_dir),
                "--profile",
                "mixed",
                "--duration",
                "0.5",
                "--warmup",
                "0",
                "--segments",
                "400",
                "--seed",
                "7",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"] == "mixed"
        assert payload["parity_ok"] is True
        assert payload["seed"] == 7
        assert payload["total_requests"] > 0

    def test_loadtest_requires_one_target(self, capsys):
        assert main(["loadtest"]) == 2
        assert "exactly one target" in capsys.readouterr().err

    def test_wetdry(self, capsys):
        code = main(["wetdry", "--segments", "1500", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wet crashes" in out
        assert "distributions" in out

    def test_study_small(self, capsys):
        code = main(["study", "--segments", "1500", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase 1 tree models" in out
        assert "Phase 2 tree models" in out
        assert "mcpv peaks at" in out

    def test_study_jobs_and_timings(self, capsys):
        code = main(
            [
                "study",
                "--segments",
                "1500",
                "--seed",
                "2",
                "--jobs",
                "2",
                "--timings",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase 1 tree models" in out
        assert "Stage timings (backend=process, n_jobs=2)" in out
        assert "threshold dataset cache:" in out
        assert "supporting-bayes" in out

    def test_calibrate_small_probe(self, capsys):
        code = main(
            ["calibrate", "--probe", "1500", "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zero share" in out
        assert "P_w(count<=" in out


class TestRoutesCommand:
    def test_routes_parser_registered(self):
        parser = build_parser()
        assert "routes" in parser.format_help()
        args = parser.parse_args(
            [
                "routes", "query", "model.json", "town_000", "town_005",
                "--segments", "900", "--seed", "7", "--alpha", "0.5",
                "--k", "2",
            ]
        )
        assert args.command == "routes"
        assert args.routes_command == "query"
        assert args.alpha == 0.5
        assert args.k == 2

    def test_serve_routes_flags_registered(self):
        args = build_parser().parse_args(
            ["serve", "models", "--routes", "--route-segments", "900"]
        )
        assert args.routes is True
        assert args.route_segments == 900
        assert args.route_seed == 7
        assert args.route_clusters == 8

    def test_routes_end_to_end(self, tmp_path, capsys):
        model_path = tmp_path / "scorer.json"
        assert (
            main(
                [
                    "train", str(model_path),
                    "--segments", "1200", "--seed", "5",
                    "--threshold", "8",
                ]
            )
            == 0
        )
        capsys.readouterr()
        common = [str(model_path), "--segments", "900", "--seed", "7"]
        assert main(["routes", "build", *common]) == 0
        out = capsys.readouterr().out
        assert "towns" in out
        assert main(
            ["routes", "query", *common, "town_000", "town_005", "--json"]
        ) == 0
        body = json.loads(capsys.readouterr().out)
        assert (
            body["safest"]["expected_crashes"]
            <= body["shortest"]["expected_crashes"]
        )
        assert main(
            ["routes", "precompute", *common, "--pairs", "4"]
        ) == 0
        assert "plans" in capsys.readouterr().out
        assert main(["routes", "top-risk", *common, "--top", "3"]) == 0
        assert "E[crashes]" in capsys.readouterr().out
