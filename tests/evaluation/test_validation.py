"""Tests for the validation protocols."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.evaluation import (
    cross_val_scores,
    kfold_indices,
    stratified_kfold_indices,
    train_valid_split,
)
from repro.exceptions import EvaluationError
from repro.mining import NaiveBayesClassifier


class TestKFold:
    def test_partition(self, rng):
        folds = kfold_indices(100, 10, rng)
        assert len(folds) == 10
        joined = np.sort(np.concatenate(folds))
        assert joined.tolist() == list(range(100))

    def test_k_too_large(self, rng):
        with pytest.raises(EvaluationError):
            kfold_indices(3, 5, rng)

    def test_k_too_small(self, rng):
        with pytest.raises(EvaluationError):
            kfold_indices(10, 1, rng)


class TestStratifiedKFold:
    def test_every_fold_sees_minority(self, rng):
        y = np.array([0] * 95 + [1] * 10)
        folds = stratified_kfold_indices(y, 5, rng)
        for fold in folds:
            assert y[fold].sum() == 2

    def test_partition(self, rng):
        y = np.array([0, 1] * 25)
        folds = stratified_kfold_indices(y, 5, rng)
        joined = np.sort(np.concatenate(folds))
        assert joined.tolist() == list(range(50))


class TestTrainValidSplit:
    def test_default_fraction(self, rng):
        table = DataTable([NumericColumn("v", list(range(100)))])
        split = train_valid_split(table, rng)
        assert split.sizes == (60, 40)


class TestCrossValScores:
    def test_pooled_scores_cover_all_rows(self, classification_table, rng):
        table, y = classification_table
        actual, scores = cross_val_scores(
            NaiveBayesClassifier, table, "label", y, 5, rng
        )
        assert actual.shape == scores.shape == (table.n_rows,)
        assert not np.isnan(scores).any()
        # Scores should be informative: mean score of positives higher.
        assert scores[actual == 1].mean() > scores[actual == 0].mean()

    def test_y_length_mismatch(self, classification_table, rng):
        table, y = classification_table
        with pytest.raises(EvaluationError):
            cross_val_scores(
                NaiveBayesClassifier, table, "label", y[:-1], 5, rng
            )

    def test_deterministic_given_rng_seed(self, classification_table):
        table, y = classification_table
        a = cross_val_scores(
            NaiveBayesClassifier,
            table,
            "label",
            y,
            5,
            np.random.default_rng(1),
        )
        b = cross_val_scores(
            NaiveBayesClassifier,
            table,
            "label",
            y,
            5,
            np.random.default_rng(1),
        )
        assert np.array_equal(a[1], b[1])
