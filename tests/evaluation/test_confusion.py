"""Unit tests for the binary confusion matrix."""

import numpy as np
import pytest

from repro.evaluation import BinaryConfusion
from repro.exceptions import EvaluationError


class TestConstruction:
    def test_from_predictions(self):
        actual = np.array([1, 1, 0, 0, 1])
        predicted = np.array([1, 0, 0, 1, 1])
        cm = BinaryConfusion.from_predictions(actual, predicted)
        assert (cm.tp, cm.fn, cm.tn, cm.fp) == (2, 1, 1, 1)

    def test_from_scores_threshold(self):
        actual = np.array([1, 0, 1])
        scores = np.array([0.9, 0.4, 0.5])
        cm = BinaryConfusion.from_scores(actual, scores, threshold=0.5)
        assert cm.tp == 2 and cm.tn == 1

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            BinaryConfusion.from_predictions(
                np.array([1, 0]), np.array([1])
            )

    def test_non_binary_rejected(self):
        with pytest.raises(EvaluationError):
            BinaryConfusion.from_predictions(
                np.array([1, 2]), np.array([1, 0])
            )

    def test_negative_cell_rejected(self):
        with pytest.raises(EvaluationError):
            BinaryConfusion(tp=-1, fp=0, tn=1, fn=0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            BinaryConfusion(tp=0, fp=0, tn=0, fn=0)


class TestMarginals:
    def test_marginals(self):
        cm = BinaryConfusion(tp=5, fp=3, tn=10, fn=2)
        assert cm.total == 20
        assert cm.actual_positives == 7
        assert cm.actual_negatives == 13
        assert cm.predicted_positives == 8
        assert cm.predicted_negatives == 12

    def test_imbalance_ratio(self):
        cm = BinaryConfusion(tp=1, fp=0, tn=99, fn=0)
        assert cm.imbalance_ratio == pytest.approx(99.0)

    def test_imbalance_ratio_one_class(self):
        cm = BinaryConfusion(tp=0, fp=0, tn=10, fn=0)
        assert cm.imbalance_ratio == float("inf")

    def test_as_table(self):
        cm = BinaryConfusion(tp=1, fp=2, tn=3, fn=4)
        assert cm.as_table().tolist() == [[1, 4], [2, 3]]
