"""Tests for one-way ANOVA, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats

from repro.evaluation import one_way_anova
from repro.exceptions import EvaluationError


class TestAnova:
    def test_matches_scipy(self, rng):
        groups = [
            rng.normal(0.0, 1.0, 40),
            rng.normal(0.5, 1.0, 35),
            rng.normal(1.0, 1.2, 50),
        ]
        result = one_way_anova(groups)
        expected = stats.f_oneway(*groups)
        assert result.f_statistic == pytest.approx(expected.statistic)
        assert result.p_value == pytest.approx(expected.pvalue)

    def test_identical_means_high_p(self, rng):
        groups = [rng.normal(0, 1, 200) for _ in range(4)]
        result = one_way_anova(groups)
        assert result.p_value > 0.001
        assert not result.rejects_equal_means(alpha=0.0005)

    def test_separated_means_reject(self, rng):
        groups = [
            rng.normal(0, 0.1, 50),
            rng.normal(5, 0.1, 50),
            rng.normal(10, 0.1, 50),
        ]
        result = one_way_anova(groups)
        assert result.p_value < 1e-10
        assert result.rejects_equal_means()
        assert result.eta_squared > 0.99

    def test_degrees_of_freedom(self, rng):
        groups = [rng.normal(size=10), rng.normal(size=20)]
        result = one_way_anova(groups)
        assert result.df_between == 1
        assert result.df_within == 28

    def test_nan_values_dropped(self):
        groups = [
            np.array([1.0, np.nan, 2.0]),
            np.array([5.0, 6.0]),
        ]
        result = one_way_anova(groups)
        assert result.df_within == 2

    def test_constant_groups_different_means(self):
        result = one_way_anova([np.ones(5), np.full(5, 2.0)])
        assert result.f_statistic == float("inf")
        assert result.p_value == 0.0

    def test_all_constant_same_mean(self):
        result = one_way_anova([np.ones(5), np.ones(5)])
        assert result.f_statistic == 0.0
        assert result.p_value == 1.0

    def test_single_group_rejected(self):
        with pytest.raises(EvaluationError):
            one_way_anova([np.ones(5)])

    def test_empty_groups_dropped(self):
        with pytest.raises(EvaluationError):
            one_way_anova([np.array([]), np.ones(5)])

    def test_insufficient_observations(self):
        with pytest.raises(EvaluationError):
            one_way_anova([np.array([1.0]), np.array([2.0])])
