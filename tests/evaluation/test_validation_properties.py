"""Property tests of the stratified k-fold partition.

The supporting sweeps (Table 5) depend on three invariants of
``stratified_kfold_indices``: the folds partition the row index set,
no fold is empty, and each fold preserves the 0/1 class mix.  The
study guards ``min(class counts) >= k`` before cross-validating, so
the properties are stated under that precondition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import stratified_kfold_indices


@st.composite
def stratified_problems(draw):
    """(y, k) with at least k members of each class."""
    k = draw(st.integers(min_value=2, max_value=8))
    n_neg = draw(st.integers(min_value=k, max_value=60))
    n_pos = draw(st.integers(min_value=k, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    y = np.concatenate(
        [np.zeros(n_neg, dtype=np.int64), np.ones(n_pos, dtype=np.int64)]
    )
    # Shuffle so class blocks don't align with index order.
    np.random.default_rng(seed).shuffle(y)
    return y, k, seed


class TestStratifiedKFoldProperties:
    @given(problem=stratified_problems())
    @settings(max_examples=100, deadline=None)
    def test_folds_partition_the_index_set(self, problem):
        y, k, seed = problem
        folds = stratified_kfold_indices(
            y, k, np.random.default_rng(seed)
        )
        assert len(folds) == k
        combined = np.concatenate(folds)
        assert len(combined) == len(y)  # no index twice
        assert np.array_equal(np.sort(combined), np.arange(len(y)))

    @given(problem=stratified_problems())
    @settings(max_examples=100, deadline=None)
    def test_every_fold_non_empty(self, problem):
        y, k, seed = problem
        folds = stratified_kfold_indices(
            y, k, np.random.default_rng(seed)
        )
        for fold in folds:
            assert len(fold) > 0

    @given(problem=stratified_problems())
    @settings(max_examples=100, deadline=None)
    def test_class_mix_preserved_per_fold(self, problem):
        """Each fold's count of a class is within 1 of the even share
        n_class / k — the tightest guarantee array_split allows."""
        y, k, seed = problem
        folds = stratified_kfold_indices(
            y, k, np.random.default_rng(seed)
        )
        for value in (0, 1):
            n_class = int((y == value).sum())
            for fold in folds:
                in_fold = int((y[fold] == value).sum())
                assert (
                    np.floor(n_class / k)
                    <= in_fold
                    <= np.ceil(n_class / k)
                )

    @given(problem=stratified_problems())
    @settings(max_examples=50, deadline=None)
    def test_deterministic_in_the_rng(self, problem):
        """Same seed, same folds — the property the parallel engine's
        per-task seed derivation relies on."""
        y, k, seed = problem
        first = stratified_kfold_indices(
            y, k, np.random.default_rng(seed)
        )
        second = stratified_kfold_indices(
            y, k, np.random.default_rng(seed)
        )
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
