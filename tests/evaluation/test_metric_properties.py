"""Property-based tests for metric identities and ranges."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    BinaryConfusion,
    accuracy,
    kappa,
    mcpv,
    misclassification_rate,
    negative_predictive_value,
    positive_predictive_value,
    roc_auc,
    sensitivity,
    specificity,
)
from repro.evaluation.roc import roc_curve

cells = st.integers(min_value=0, max_value=5000)


@st.composite
def confusions(draw):
    tp, fp, tn, fn = (draw(cells) for _ in range(4))
    assume(tp + fp + tn + fn > 0)
    return BinaryConfusion(tp=tp, fp=fp, tn=tn, fn=fn)


@given(confusions())
@settings(max_examples=200, deadline=None)
def test_rate_metrics_in_unit_interval(cm):
    for metric in (
        accuracy,
        misclassification_rate,
        sensitivity,
        specificity,
        positive_predictive_value,
        negative_predictive_value,
        mcpv,
    ):
        value = metric(cm)
        assert math.isnan(value) or 0.0 <= value <= 1.0


@given(confusions())
@settings(max_examples=200, deadline=None)
def test_kappa_bounded(cm):
    value = kappa(cm)
    assert -1.0 - 1e-12 <= value <= 1.0 + 1e-12


@given(confusions())
@settings(max_examples=200, deadline=None)
def test_mcpv_is_min_of_predictive_values(cm):
    ppv = positive_predictive_value(cm)
    npv = negative_predictive_value(cm)
    value = mcpv(cm)
    if math.isnan(ppv) or math.isnan(npv):
        assert math.isnan(value)
    else:
        assert value == min(ppv, npv)


@given(confusions())
@settings(max_examples=200, deadline=None)
def test_accuracy_misclassification_identity(cm):
    assert accuracy(cm) + misclassification_rate(cm) == 1.0


@st.composite
def scored_samples(draw):
    n = draw(st.integers(min_value=4, max_value=120))
    actual = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=1),
                min_size=n,
                max_size=n,
            )
        )
    )
    assume(actual.sum() > 0 and actual.sum() < n)
    # Quantised scores: keeps monotone transforms injective in floating
    # point (denormals collapse under e.g. sigmoid, which is a float
    # artefact, not an AUC property).
    scores = (
        np.array(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=1000),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        / 1000.0
    )
    return actual, scores


@given(scored_samples())
@settings(max_examples=100, deadline=None)
def test_auc_invariant_to_monotone_transform(sample):
    actual, scores = sample
    raw = roc_auc(actual, scores)
    squeezed = roc_auc(actual, 1 / (1 + np.exp(-5 * scores)))
    assert raw == squeezed


@given(scored_samples())
@settings(max_examples=100, deadline=None)
def test_auc_complement_under_label_flip(sample):
    actual, scores = sample
    assert roc_auc(actual, scores) + roc_auc(1 - actual, scores) == (
        roc_auc(actual, scores) + (1 - roc_auc(actual, scores))
    )


@given(scored_samples())
@settings(max_examples=100, deadline=None)
def test_rank_auc_matches_curve_area(sample):
    actual, scores = sample
    rank_auc = roc_auc(actual, scores)
    curve = roc_curve(actual, scores)
    assert abs(curve.auc() - rank_auc) < 1e-9


@given(scored_samples())
@settings(max_examples=60, deadline=None)
def test_roc_curve_monotone(sample):
    actual, scores = sample
    curve = roc_curve(actual, scores)
    assert (np.diff(curve.fpr) >= -1e-12).all()
    assert (np.diff(curve.tpr) >= -1e-12).all()
    assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
    assert curve.fpr[-1] == 1.0 and curve.tpr[-1] == 1.0
