"""Unit tests for the Table 2 measures, verified against hand-worked
values and (for Kappa) the exact formulation printed in the paper."""

import math

import numpy as np
import pytest

from repro.evaluation import (
    BinaryConfusion,
    accuracy,
    kappa,
    mcpv,
    misclassification_rate,
    negative_predictive_value,
    positive_predictive_value,
    r_squared,
    roc_auc,
    sensitivity,
    specificity,
    weighted_precision,
    weighted_recall,
)
from repro.exceptions import EvaluationError


@pytest.fixture()
def cm() -> BinaryConfusion:
    # tp=40 fp=10 tn=35 fn=15
    return BinaryConfusion(tp=40, fp=10, tn=35, fn=15)


class TestTable2Measures:
    def test_accuracy(self, cm):
        assert accuracy(cm) == pytest.approx(75 / 100)

    def test_misclassification_complements_accuracy(self, cm):
        assert accuracy(cm) + misclassification_rate(cm) == pytest.approx(1.0)

    def test_sensitivity(self, cm):
        assert sensitivity(cm) == pytest.approx(40 / 55)

    def test_specificity(self, cm):
        assert specificity(cm) == pytest.approx(35 / 45)

    def test_ppv(self, cm):
        assert positive_predictive_value(cm) == pytest.approx(40 / 50)

    def test_npv(self, cm):
        assert negative_predictive_value(cm) == pytest.approx(35 / 50)

    def test_mcpv_is_min(self, cm):
        assert mcpv(cm) == pytest.approx(min(40 / 50, 35 / 50))

    def test_mcpv_nan_when_class_never_predicted(self):
        cm = BinaryConfusion(tp=0, fp=0, tn=90, fn=10)
        assert math.isnan(mcpv(cm))
        assert math.isnan(positive_predictive_value(cm))

    def test_kappa_matches_paper_formula(self, cm):
        n = cm.total
        io = (cm.tp + cm.tn) / n
        ie = (
            (cm.tn + cm.fn) * (cm.tn + cm.fp)
            + (cm.tp + cm.fp) * (cm.tp + cm.fn)
        ) / n**2
        assert kappa(cm) == pytest.approx((io - ie) / (1 - ie))

    def test_kappa_perfect_agreement(self):
        assert kappa(BinaryConfusion(tp=50, fp=0, tn=50, fn=0)) == 1.0

    def test_kappa_chance_agreement_is_zero(self):
        # Independent prediction: every cell proportional to marginals.
        cm = BinaryConfusion(tp=25, fp=25, tn=25, fn=25)
        assert kappa(cm) == pytest.approx(0.0)

    def test_kappa_degenerate_single_class(self):
        cm = BinaryConfusion(tp=0, fp=0, tn=100, fn=0)
        assert kappa(cm) == 0.0

    def test_weighted_recall_equals_accuracy_binary(self, cm):
        assert weighted_recall(cm) == pytest.approx(accuracy(cm))

    def test_weighted_precision_bounds(self, cm):
        assert 0.0 <= weighted_precision(cm) <= 1.0


class TestImbalanceStory:
    """The paper's argument: accuracy/misclassification look excellent
    under extreme imbalance while MCPV exposes the failing class."""

    def test_extreme_imbalance_misleads_accuracy(self):
        # CP-64-like: 16,576 negatives, 174 positives, model predicts
        # everything negative.
        cm = BinaryConfusion(tp=0, fp=0, tn=16576, fn=174)
        assert accuracy(cm) > 0.98
        assert misclassification_rate(cm) < 0.02
        assert math.isnan(mcpv(cm))
        assert kappa(cm) == pytest.approx(0.0)

    def test_mcpv_rewards_minority_competence(self):
        competent = BinaryConfusion(tp=150, fp=30, tn=16546, fn=24)
        assert mcpv(competent) > 0.8
        assert kappa(competent) > 0.8


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y[::-1].copy()) < 0

    def test_constant_actual_nan(self):
        assert math.isnan(r_squared(np.ones(5), np.zeros(5)))

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            r_squared(np.ones(3), np.ones(4))

    def test_empty(self):
        with pytest.raises(EvaluationError):
            r_squared(np.array([]), np.array([]))


class TestRocAuc:
    def test_perfect_ranking(self):
        actual = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(actual, scores) == pytest.approx(1.0)

    def test_reverse_ranking(self):
        actual = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(actual, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        gen = np.random.default_rng(3)
        actual = gen.integers(0, 2, 4000)
        scores = gen.random(4000)
        assert roc_auc(actual, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_half_credit(self):
        actual = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert roc_auc(actual, scores) == pytest.approx(0.5)

    def test_single_class_nan(self):
        assert math.isnan(roc_auc(np.ones(4), np.arange(4.0)))

    def test_matches_scipy_mannwhitney(self):
        from scipy import stats

        gen = np.random.default_rng(9)
        actual = gen.integers(0, 2, 300)
        scores = gen.normal(size=300) + actual
        u = stats.mannwhitneyu(
            scores[actual == 1], scores[actual == 0]
        ).statistic
        expected = u / ((actual == 1).sum() * (actual == 0).sum())
        assert roc_auc(actual, scores) == pytest.approx(expected)
