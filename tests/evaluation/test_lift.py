"""Tests for cumulative gains / lift."""

import numpy as np
import pytest

from repro.evaluation import lift_table
from repro.exceptions import EvaluationError


class TestLiftTable:
    def test_perfect_model_front_loads(self):
        actual = np.array([1] * 10 + [0] * 90)
        scores = np.linspace(1, 0, 100)
        table = lift_table(actual, scores, n_bins=10)
        assert table.gains[0] == pytest.approx(1.0)
        assert table.top_decile_lift() == pytest.approx(10.0)
        assert table.gains[-1] == pytest.approx(1.0)

    def test_random_model_diagonal(self):
        gen = np.random.default_rng(5)
        actual = gen.integers(0, 2, 5000)
        scores = gen.random(5000)
        table = lift_table(actual, scores, n_bins=10)
        assert np.allclose(table.gains, table.depth, atol=0.05)
        assert np.allclose(table.lift, 1.0, atol=0.15)

    def test_gains_monotone_and_complete(self):
        gen = np.random.default_rng(6)
        actual = gen.integers(0, 2, 300)
        scores = gen.random(300) + actual * 0.3
        table = lift_table(actual, scores, n_bins=10)
        assert (np.diff(table.gains) >= -1e-12).all()
        assert table.gains[-1] == pytest.approx(1.0)
        assert table.positives_per_bin.sum() == table.n_positives

    def test_gains_at_interpolation(self):
        actual = np.array([1] * 10 + [0] * 90)
        scores = np.linspace(1, 0, 100)
        table = lift_table(actual, scores, n_bins=10)
        assert table.gains_at(0.05) == pytest.approx(0.5)
        assert table.gains_at(0.0) == 0.0
        assert table.gains_at(1.0) == pytest.approx(1.0)

    def test_rows_export(self):
        actual = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.1, 0.8, 0.2])
        rows = lift_table(actual, scores, n_bins=2).rows()
        assert len(rows) == 2
        assert rows[0]["positives"] == 2

    def test_no_positives_rejected(self):
        with pytest.raises(EvaluationError):
            lift_table(np.zeros(10), np.ones(10))

    def test_bad_bins_rejected(self):
        actual = np.array([1, 0])
        with pytest.raises(EvaluationError):
            lift_table(actual, np.ones(2), n_bins=5)

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            lift_table(np.ones(3), np.ones(4))
