"""Tests for under/over-sampling."""

import numpy as np
import pytest

from repro.datatable import DataTable, NumericColumn
from repro.evaluation import (
    class_distribution,
    class_indices,
    oversample_minority,
    undersample_majority,
)
from repro.exceptions import EvaluationError


def make_imbalanced(n_majority=90, n_minority=10):
    y = np.array([0] * n_majority + [1] * n_minority)
    table = DataTable(
        [NumericColumn.from_array("v", np.arange(len(y), dtype=float))]
    )
    return table, y


class TestClassIndices:
    def test_orders_majority_first(self):
        _table, y = make_imbalanced()
        majority, minority = class_indices(y)
        assert majority.size == 90
        assert minority.size == 10

    def test_single_class_rejected(self):
        with pytest.raises(EvaluationError):
            class_indices(np.zeros(5))


class TestUndersample:
    def test_equal_distribution(self, rng):
        table, y = make_imbalanced()
        resampled, ry = undersample_majority(table, y, rng, ratio=1.0)
        assert class_distribution(ry) == {0: 10, 1: 10}
        assert resampled.n_rows == 20

    def test_nominated_ratio(self, rng):
        table, y = make_imbalanced()
        _resampled, ry = undersample_majority(table, y, rng, ratio=3.0)
        assert class_distribution(ry) == {0: 30, 1: 10}

    def test_rows_follow_labels(self, rng):
        table, y = make_imbalanced()
        resampled, ry = undersample_majority(table, y, rng)
        values = resampled.numeric("v")
        # Minority rows are ids 90..99 in the fixture.
        assert set(values[ry == 1].astype(int)) <= set(range(90, 100))

    def test_ratio_below_one_rejected(self, rng):
        table, y = make_imbalanced()
        with pytest.raises(EvaluationError):
            undersample_majority(table, y, rng, ratio=0.5)


class TestOversample:
    def test_equal_distribution(self, rng):
        table, y = make_imbalanced()
        _resampled, ry = oversample_minority(table, y, rng, ratio=1.0)
        assert class_distribution(ry) == {0: 90, 1: 90}

    def test_oversampled_rows_are_copies(self, rng):
        table, y = make_imbalanced()
        resampled, ry = oversample_minority(table, y, rng)
        values = resampled.numeric("v")
        assert set(values[ry == 1].astype(int)) <= set(range(90, 100))

    def test_no_op_when_already_balanced(self, rng):
        table, y = make_imbalanced(10, 10)
        resampled, _ry = oversample_minority(table, y, rng)
        assert resampled.n_rows == 20
