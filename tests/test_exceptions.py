"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    CalibrationError,
    ColumnTypeError,
    EmptyTableError,
    EvaluationError,
    FitError,
    MissingColumnError,
    NotFittedError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SchemaError,
            ColumnTypeError,
            MissingColumnError,
            EmptyTableError,
            NotFittedError,
            FitError,
            EvaluationError,
            CalibrationError,
        ):
            assert issubclass(exc, ReproError), exc

    def test_missing_column_is_key_error(self):
        """dict-style access sites can catch KeyError."""
        assert issubclass(MissingColumnError, KeyError)

    def test_single_except_catches_library_failures(self):
        from repro.datatable import DataTable, NumericColumn

        table = DataTable([NumericColumn("x", [1.0])])
        with pytest.raises(ReproError):
            table.column("nope")


class TestMessages:
    def test_missing_column_lists_alternatives(self):
        err = MissingColumnError("skid", ("a", "b"))
        assert "skid" in str(err)
        assert "a, b" in str(err)

    def test_missing_column_without_alternatives(self):
        assert "not found" in str(MissingColumnError("skid"))

    def test_not_fitted_names_model(self):
        assert "MyModel" in str(NotFittedError("MyModel"))
        assert "fit()" in str(NotFittedError())
