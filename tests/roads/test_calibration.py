"""Tests for the calibration tooling (not a full re-calibration —
that is an offline activity; these verify the machinery)."""

import numpy as np
import pytest

from repro.exceptions import CalibrationError
from repro.roads import (
    PAPER_TABLE1_TARGETS,
    CrashProcessParams,
    calibrate_crash_process,
    weighted_count_cdf,
)


class TestWeightedCdf:
    def test_hand_worked(self):
        counts = np.array([0, 0, 1, 2, 5])
        # weights: total crashes 8; <=2 mass = 3.
        cdf = weighted_count_cdf(counts, (2, 5))
        assert cdf[2] == pytest.approx(3 / 8)
        assert cdf[5] == pytest.approx(1.0)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(2.0, 500)
        thresholds = (1, 2, 4, 8, 16)
        cdf = weighted_count_cdf(counts, thresholds)
        values = [cdf[t] for t in thresholds]
        assert values == sorted(values)

    def test_no_crashes_rejected(self):
        with pytest.raises(CalibrationError):
            weighted_count_cdf(np.zeros(10, dtype=int), (2,))


class TestTargets:
    def test_paper_targets_normalised(self):
        targets = PAPER_TABLE1_TARGETS
        values = [targets.weighted_cdf[k] for k in sorted(targets.weighted_cdf)]
        assert values == sorted(values)
        assert values[-1] <= 1.0
        assert targets.weighted_cdf[2] == pytest.approx(3548 / 16750)


class TestCalibrationMachinery:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_crash_process(
                n_probe=500, free_parameters=("warp_drive",)
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_crash_process(n_probe=500, free_parameters=())

    def test_short_run_improves_objective(self):
        """A tiny probe run from a deliberately bad start should move
        toward the targets (sanity of the optimiser wiring)."""
        bad_start = CrashProcessParams().with_overrides(
            background_rate=1.5
        )
        report = calibrate_crash_process(
            base_params=bad_start,
            n_probe=2000,
            max_iterations=40,
            free_parameters=("background_rate",),
        )
        assert report.params.background_rate < 1.5
        assert report.n_evaluations > 5
        assert report.objective < report.history[0]

    def test_default_params_near_targets(self):
        """The shipped defaults should sit close to the paper targets
        (this is the bake-in regression test)."""
        report_params = CrashProcessParams()
        from repro.roads.calibration import _probe_segments
        from repro.roads.crashes import CrashProcess

        segments = _probe_segments(20000, seed=7)
        counts = CrashProcess(report_params).simulate(
            segments, np.random.default_rng(8)
        ).total_counts
        cdf = weighted_count_cdf(counts, (2, 4, 8, 16, 32, 64))
        for threshold, expected in PAPER_TABLE1_TARGETS.weighted_cdf.items():
            assert cdf[threshold] == pytest.approx(expected, abs=0.07)
        zero_share = (counts == 0).mean()
        assert zero_share == pytest.approx(
            PAPER_TABLE1_TARGETS.zero_share, abs=0.05
        )

    def test_report_summary_lines(self):
        report = calibrate_crash_process(
            n_probe=1500,
            max_iterations=5,
            free_parameters=("background_rate",),
        )
        text = "\n".join(report.summary_lines())
        assert "zero share" in text
        assert "P_w(count<=" in text
