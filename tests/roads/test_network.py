"""Tests for the synthetic road network builder."""

import numpy as np
import pytest

from repro.roads import ROAD_CLASSES, RoadNetwork


@pytest.fixture(scope="module")
def network() -> RoadNetwork:
    return RoadNetwork.generate(np.random.default_rng(3), n_towns=20)


class TestNetworkGeneration:
    def test_connected(self, network):
        assert network.is_connected()

    def test_town_count(self, network):
        assert len(network.towns) == 20

    def test_routes_at_least_spanning(self, network):
        assert len(network.routes) >= 19

    def test_segment_ids_unique_and_dense(self, network):
        ids = [s.segment_id for s in network.skeletons]
        assert ids == list(range(len(ids)))

    def test_road_classes_valid(self, network):
        assert {s.road_class for s in network.skeletons} <= set(ROAD_CLASSES)

    def test_urban_block_present(self, network):
        classes = [s.road_class for s in network.skeletons]
        assert classes.count("urban") > 0

    def test_urbanisation_bounded(self, network):
        assert all(0.0 <= s.urbanisation <= 1.0 for s in network.skeletons)

    def test_route_lengths_positive(self, network):
        assert all(r.length_km >= 2.0 for r in network.routes)
        assert network.total_length_km() > 0

    def test_route_lookup(self, network):
        on_route = [s for s in network.skeletons if s.route_id >= 0]
        route = network.route_of(on_route[0])
        assert route is not None
        start, end = network.route_endpoints(route)
        assert start.town_id == route.start
        assert end.town_id == route.end

    def test_urban_segments_have_no_route(self, network):
        urban_free = [s for s in network.skeletons if s.route_id == -1]
        assert all(network.route_of(s) is None for s in urban_free)

    def test_deterministic_given_rng(self):
        a = RoadNetwork.generate(np.random.default_rng(11), n_towns=10)
        b = RoadNetwork.generate(np.random.default_rng(11), n_towns=10)
        assert a.n_segments == b.n_segments
        assert [r.road_class for r in a.routes] == [
            r.road_class for r in b.routes
        ]

    def test_minimum_towns(self):
        with pytest.raises(ValueError):
            RoadNetwork.generate(np.random.default_rng(0), n_towns=1)

    def test_repr_mentions_segments(self, network):
        assert "segments" in repr(network)


class TestLookupIndexes:
    """The built-once id/name indexes behind route_of & friends."""

    def test_town_named_accepts_name_id_and_digit_string(self, network):
        town = network.towns[3]
        assert network.town_named(town.name) is town
        assert network.town_named(town.town_id) is town
        assert network.town_named(str(town.town_id)) is town

    def test_town_named_rejects_unknowns(self, network):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown town"):
            network.town_named("atlantis")
        with pytest.raises(ConfigurationError, match="unknown town"):
            network.town_named(10**6)
        with pytest.raises(ConfigurationError, match="not a town"):
            network.town_named(True)

    def test_skeleton_of_round_trips_every_segment(self, network):
        for skeleton in network.skeletons[:50]:
            assert network.skeleton_of(skeleton.segment_id) is skeleton
        assert network.skeleton_of(10**9) is None

    def test_route_of_agrees_with_linear_scan(self, network):
        by_id = {r.route_id: r for r in network.routes}
        for skeleton in network.skeletons[:100]:
            expected = (
                by_id[skeleton.route_id] if skeleton.route_id >= 0 else None
            )
            assert network.route_of(skeleton) is expected
