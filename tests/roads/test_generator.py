"""Tests for the end-to-end dataset generator and zero-altered set."""

import numpy as np
import pytest

from repro.roads import (
    QDTMRSyntheticGenerator,
    build_zero_altered_set,
    paper_scale_config,
    small_config,
    weighted_count_cdf,
)
from repro.roads.attributes import attribute_names


class TestGenerator:
    def test_sizes(self, small_dataset):
        assert small_dataset.segment_table.n_rows == 2500
        assert small_dataset.n_crash_instances > 0
        assert small_dataset.n_no_crash_instances > 0

    def test_crash_instances_expand_counts(self, small_dataset):
        # Each crash instance carries its segment's full 4-year count;
        # summing 1/count per instance recovers the segment count.
        counts = small_dataset.crash_instances.numeric(
            "segment_crash_count"
        )
        assert counts.min() >= 1

    def test_f60_required_on_crash_instances(self, small_dataset):
        missing = small_dataset.crash_instances.column(
            "skid_resistance_f60"
        ).missing_mask()
        assert not missing.any()

    def test_f60_filter_can_be_disabled(self):
        config = small_config(n_segments=800, require_f60=False)
        dataset = QDTMRSyntheticGenerator(config).generate(seed=3)
        missing = dataset.crash_instances.column(
            "skid_resistance_f60"
        ).missing_mask()
        assert missing.any()

    def test_crash_level_attributes_present(self, small_dataset):
        for name in ("crash_year", "surface_condition", "severity"):
            assert name in small_dataset.crash_instances

    def test_no_crash_instances_have_zero_count(self, small_dataset):
        counts = small_dataset.no_crash_instances.numeric(
            "segment_crash_count"
        )
        assert (counts == 0).all()

    def test_combined_instances_share_columns(self, small_dataset):
        combined = small_dataset.combined_instances()
        expected = (
            ["segment_id"] + attribute_names() + ["segment_crash_count"]
        )
        assert combined.column_names == expected
        assert combined.n_rows == (
            small_dataset.n_crash_instances
            + small_dataset.n_no_crash_instances
        )

    def test_annual_distribution_covers_years(self, small_dataset):
        annual = small_dataset.annual_count_distribution()
        assert sorted(annual) == [2004, 2005, 2006, 2007]
        for histogram in annual.values():
            assert 0 not in histogram  # zero counts excluded

    def test_deterministic(self):
        config = small_config(n_segments=600)
        a = QDTMRSyntheticGenerator(config).generate(seed=5)
        b = QDTMRSyntheticGenerator(config).generate(seed=5)
        assert a.crash_instances.equals(b.crash_instances)

    def test_different_seeds_differ(self):
        config = small_config(n_segments=600)
        a = QDTMRSyntheticGenerator(config).generate(seed=5)
        b = QDTMRSyntheticGenerator(config).generate(seed=6)
        assert not a.segment_table.equals(b.segment_table)

    def test_max_no_crash_cap(self):
        config = small_config(n_segments=800, max_no_crash_instances=100)
        dataset = QDTMRSyntheticGenerator(config).generate(seed=1)
        assert dataset.n_no_crash_instances == 100


class TestZeroAlteredSet:
    def test_only_crash_free_segments(self, small_dataset):
        no_crash_ids = set(
            small_dataset.no_crash_instances.numeric("segment_id")
        )
        crash_ids = set(
            small_dataset.crash_instances.numeric("segment_id")
        )
        assert not (no_crash_ids & crash_ids)

    def test_subsampling(self, small_dataset):
        rng = np.random.default_rng(0)
        capped = build_zero_altered_set(
            small_dataset.segments,
            small_dataset.outcome,
            rng,
            max_instances=10,
        )
        assert capped.n_rows == 10


class TestPaperScaleShape:
    """The headline calibration facts at full scale (slow-ish, 1 run)."""

    @pytest.fixture(scope="class")
    def paper_dataset(self):
        return QDTMRSyntheticGenerator(paper_scale_config()).generate(
            seed=42
        )

    def test_instance_counts_near_paper(self, paper_dataset):
        assert 13000 < paper_dataset.n_crash_instances < 19000
        assert 13000 < paper_dataset.n_no_crash_instances < 16155 + 1

    def test_weighted_cdf_matches_table1(self, paper_dataset):
        cdf = weighted_count_cdf(
            paper_dataset.outcome.total_counts, (2, 4, 8, 16, 32, 64)
        )
        paper = {
            2: 0.212,
            4: 0.352,
            8: 0.518,
            16: 0.737,
            32: 0.924,
            64: 0.990,
        }
        for threshold, expected in paper.items():
            assert cdf[threshold] == pytest.approx(expected, abs=0.06)

    def test_exponential_decay_of_counts(self, paper_dataset):
        histogram = paper_dataset.outcome.count_histogram()
        assert histogram[1] > 4 * histogram.get(8, 1)
