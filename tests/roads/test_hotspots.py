"""Tests for the Anderson-style KDE / spatial k-means hotspot baseline."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError
from repro.roads.hotspots import (
    crash_coordinates,
    crash_kde,
    spatial_kmeans_hotspots,
)


class TestCrashCoordinates:
    def test_one_row_per_crash(self, small_dataset):
        points = crash_coordinates(small_dataset)
        assert points.shape == (small_dataset.n_crash_instances, 2)
        assert np.isfinite(points).all()

    def test_same_segment_same_point(self, small_dataset):
        points = crash_coordinates(small_dataset)
        ids = small_dataset.crash_instances.numeric("segment_id").astype(int)
        first = {}
        for row, segment_id in enumerate(ids):
            if segment_id in first:
                assert np.array_equal(points[row], points[first[segment_id]])
            else:
                first[segment_id] = row


class TestCrashKde:
    def test_density_surface_properties(self, small_dataset):
        surface = crash_kde(small_dataset, bandwidth_km=30, grid_size=40)
        assert surface.density.shape == (40, 40)
        assert (surface.density >= 0).all()
        assert surface.n_points == small_dataset.n_crash_instances

    def test_density_concentrates_on_crashes(self, small_dataset):
        surface = crash_kde(small_dataset, bandwidth_km=30, grid_size=50)
        points = crash_coordinates(small_dataset)
        centre = points.mean(axis=0)
        at_mass = surface.density_at(float(centre[0]), float(centre[1]))
        at_corner = surface.density[0, 0]
        assert at_mass > at_corner

    def test_hotspot_cells_ordered(self, small_dataset):
        surface = crash_kde(small_dataset, bandwidth_km=30, grid_size=40)
        cells = surface.hotspot_cells(quantile=0.9)
        assert cells
        densities = [d for _x, _y, d in cells]
        assert densities == sorted(densities, reverse=True)

    def test_hotspot_quantile_validation(self, small_dataset):
        surface = crash_kde(small_dataset, bandwidth_km=30, grid_size=20)
        with pytest.raises(EvaluationError):
            surface.hotspot_cells(quantile=1.5)

    def test_parameter_validation(self, small_dataset):
        with pytest.raises(EvaluationError):
            crash_kde(small_dataset, bandwidth_km=0)
        with pytest.raises(EvaluationError):
            crash_kde(small_dataset, grid_size=1)

    def test_kde_integrates_to_roughly_one(self, small_dataset):
        surface = crash_kde(small_dataset, bandwidth_km=40, grid_size=80)
        cell_area = (surface.xs[1] - surface.xs[0]) * (
            surface.ys[1] - surface.ys[0]
        )
        integral = float(surface.density.sum() * cell_area)
        assert integral == pytest.approx(1.0, rel=0.15)


class TestSpatialKmeans:
    def test_hotspots_cover_all_crashes(self, small_dataset):
        clusters = spatial_kmeans_hotspots(
            small_dataset, n_clusters=8, seed=1
        )
        assert sum(c.n_crashes for c in clusters) == (
            small_dataset.n_crash_instances
        )

    def test_sorted_by_intensity(self, small_dataset):
        clusters = spatial_kmeans_hotspots(
            small_dataset, n_clusters=8, seed=1
        )
        intensities = [c.intensity for c in clusters]
        assert intensities == sorted(intensities, reverse=True)

    def test_radii_positive(self, small_dataset):
        clusters = spatial_kmeans_hotspots(
            small_dataset, n_clusters=6, seed=2
        )
        assert all(c.radius_km >= 0 for c in clusters)

    def test_too_many_clusters_rejected(self, small_dataset):
        with pytest.raises(EvaluationError):
            spatial_kmeans_hotspots(
                small_dataset,
                n_clusters=small_dataset.n_crash_instances + 1,
            )
