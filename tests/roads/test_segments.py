"""Tests for segment attribute sampling."""

import numpy as np
import pytest

from repro.roads import (
    ROAD_ATTRIBUTES,
    RoadNetwork,
    SegmentAttributeSampler,
    attribute_names,
)
from repro.roads.attributes import get_attribute


@pytest.fixture(scope="module")
def generated():
    rng = np.random.default_rng(5)
    network = RoadNetwork.generate(rng, n_towns=16)
    sampler = SegmentAttributeSampler()
    return sampler.sample(network.skeletons, rng)


class TestAttributeSampling:
    def test_table_has_all_attributes(self, generated):
        for name in attribute_names():
            assert name in generated.table

    def test_row_count_matches(self, generated):
        assert generated.table.n_rows == generated.deficiency.shape[0]
        assert generated.table.n_rows == generated.exposure.shape[0]

    def test_declared_missing_rates_realised(self, generated):
        n = generated.table.n_rows
        for attr in ROAD_ATTRIBUTES:
            observed = generated.table.column(attr.name).n_missing() / n
            if attr.missing_rate == 0:
                assert observed == 0.0
            else:
                assert observed == pytest.approx(attr.missing_rate, abs=0.03)

    def test_f60_sparsest_numeric(self, generated):
        f60_missing = generated.table.column(
            "skid_resistance_f60"
        ).n_missing()
        for attr in ROAD_ATTRIBUTES:
            if attr.name == "skid_resistance_f60":
                continue
            assert (
                generated.table.column(attr.name).n_missing()
                <= f60_missing
            )

    def test_true_values_complete(self, generated):
        for name, values in generated.true_values.items():
            assert not np.isnan(values).any(), name

    def test_physical_ranges(self, generated):
        for name, values in generated.true_values.items():
            attr = get_attribute(name)
            if attr.low is not None:
                assert values.min() >= attr.low - 1e-9, name
            if attr.high is not None:
                assert values.max() <= attr.high + 1e-9, name

    def test_deficiency_drives_friction_down(self, generated):
        deficiency = generated.deficiency
        f60 = generated.true_values["skid_resistance_f60"]
        correlation = np.corrcoef(deficiency, f60)[0, 1]
        assert correlation < -0.6

    def test_deficiency_drives_distress_up(self, generated):
        deficiency = generated.deficiency
        for name in ("roughness_iri", "rut_depth", "seal_age"):
            correlation = np.corrcoef(
                deficiency, generated.true_values[name]
            )[0, 1]
            assert correlation > 0.6, name

    def test_deficiency_shift_ages_network(self):
        rng_a = np.random.default_rng(9)
        network = RoadNetwork.generate(rng_a, n_towns=10)
        base = SegmentAttributeSampler().sample(
            network.skeletons, np.random.default_rng(1)
        )
        aged = SegmentAttributeSampler(deficiency_shift=0.3).sample(
            network.skeletons, np.random.default_rng(1)
        )
        assert aged.deficiency.mean() > base.deficiency.mean() + 0.2

    def test_missing_values_can_be_disabled(self):
        rng = np.random.default_rng(2)
        network = RoadNetwork.generate(rng, n_towns=8)
        clean = SegmentAttributeSampler(missing_values=False).sample(
            network.skeletons, rng
        )
        for attr in ROAD_ATTRIBUTES:
            assert clean.table.column(attr.name).n_missing() == 0

    def test_empty_skeletons_rejected(self):
        with pytest.raises(ValueError):
            SegmentAttributeSampler().sample([], np.random.default_rng(0))

    def test_motorways_carry_more_traffic_than_rural(self, generated):
        table = generated.table
        classes = table.categorical("road_class")
        aadt = generated.true_values["aadt"]
        motorway = aadt[np.array(classes.to_objects()) == "highway"]
        rural = aadt[np.array(classes.to_objects()) == "rural"]
        if motorway.size and rural.size:
            assert np.median(motorway) > np.median(rural)
