"""Tests for the road attribute registry."""

import pytest

from repro.datatable import MeasurementLevel, Role
from repro.roads import (
    ROAD_ATTRIBUTES,
    AttributeGroup,
    attribute_names,
    modelling_schema,
    segment_schema,
)
from repro.roads.attributes import get_attribute


class TestRegistry:
    def test_unique_names(self):
        names = attribute_names()
        assert len(names) == len(set(names))

    def test_paper_attribute_families_present(self):
        groups = {a.group for a in ROAD_ATTRIBUTES}
        assert AttributeGroup.FUNCTIONAL_DESIGN in groups
        assert AttributeGroup.SURFACE_PROPERTIES in groups
        assert AttributeGroup.SURFACE_DISTRESS in groups
        assert AttributeGroup.SURFACE_WEAR in groups
        assert AttributeGroup.ROADWAY_FEATURES in groups
        assert AttributeGroup.TRAFFIC in groups

    def test_key_paper_attributes_exist(self):
        assert get_attribute("skid_resistance_f60").units == "F60"
        assert get_attribute("texture_depth").group is (
            AttributeGroup.SURFACE_PROPERTIES
        )
        assert get_attribute("aadt").group is AttributeGroup.TRAFFIC

    def test_f60_is_sparse(self):
        f60 = get_attribute("skid_resistance_f60")
        assert f60.missing_rate > 0
        assert f60.missing_rate == max(
            a.missing_rate for a in ROAD_ATTRIBUTES
        )

    def test_group_filter(self):
        traffic = attribute_names(AttributeGroup.TRAFFIC)
        assert "aadt" in traffic
        assert "skid_resistance_f60" not in traffic


class TestSchemas:
    def test_segment_schema_has_id(self):
        schema = segment_schema()
        assert schema["segment_id"].role is Role.ID
        assert len(schema) == len(ROAD_ATTRIBUTES) + 1

    def test_modelling_schema_target(self):
        schema = modelling_schema("crash_prone")
        assert schema.target is not None
        assert schema.target.name == "crash_prone"
        assert schema.target.level is MeasurementLevel.BINARY
        assert set(schema.input_names()) == set(attribute_names())

    def test_spec_round_trip(self):
        spec = get_attribute("aadt").spec()
        assert spec.name == "aadt"
        assert spec.level is MeasurementLevel.INTERVAL

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            get_attribute("flux_capacitance")
