"""Tests for the zero-altered crash process."""

import numpy as np
import pytest

from repro.roads import (
    STUDY_YEARS,
    CrashProcess,
    CrashProcessParams,
    RoadNetwork,
    SegmentAttributeSampler,
)


@pytest.fixture(scope="module")
def segments():
    rng = np.random.default_rng(8)
    network = RoadNetwork.generate(rng, n_towns=16)
    return SegmentAttributeSampler(missing_values=False).sample(
        network.skeletons, rng
    )


@pytest.fixture(scope="module")
def outcome(segments):
    return CrashProcess().simulate(segments, np.random.default_rng(4))


class TestCrashProcess:
    def test_counts_are_non_negative_ints(self, outcome):
        assert outcome.total_counts.dtype == np.int64
        assert (outcome.total_counts >= 0).all()

    def test_components_sum(self, outcome):
        assert np.array_equal(
            outcome.total_counts,
            outcome.structural_counts + outcome.background_counts,
        )

    def test_year_counts_sum_to_total(self, outcome):
        assert np.array_equal(
            outcome.year_counts.sum(axis=1), outcome.total_counts
        )
        assert outcome.year_counts.shape[1] == len(STUDY_YEARS)

    def test_years_roughly_uniform(self, outcome):
        yearly = outcome.year_counts.sum(axis=0)
        assert yearly.min() > 0.8 * yearly.mean()
        assert yearly.max() < 1.2 * yearly.mean()

    def test_majority_of_segments_crash_free(self, outcome):
        zero_share = (outcome.total_counts == 0).mean()
        assert 0.6 < zero_share < 0.95

    def test_count_decay_is_monotone_ish(self, outcome):
        """Figure 1: counts drop steeply as the count value rises."""
        histogram = outcome.count_histogram()
        assert histogram.get(1, 0) > histogram.get(8, 0) > histogram.get(
            40, 0
        )

    def test_structural_minimum_offset(self, outcome):
        structural = outcome.structural_counts
        active = structural[structural > 0]
        assert active.min() >= CrashProcessParams().count_offset

    def test_propensity_correlates_with_structural_regime(
        self, segments, outcome
    ):
        z = outcome.propensity
        active = outcome.structural_counts > 0
        assert z[active].mean() > z[~active].mean() + 0.5

    def test_background_nearly_independent_of_deficiency(
        self, segments, outcome
    ):
        correlation = np.corrcoef(
            segments.deficiency, outcome.background_counts
        )[0, 1]
        assert abs(correlation) < 0.12

    def test_deterministic_given_rng(self, segments):
        a = CrashProcess().simulate(segments, np.random.default_rng(6))
        b = CrashProcess().simulate(segments, np.random.default_rng(6))
        assert np.array_equal(a.total_counts, b.total_counts)

    def test_year_weights_validation(self, segments):
        params = CrashProcessParams().with_overrides(
            year_weights=(1.0, 1.0)
        )
        with pytest.raises(ValueError):
            CrashProcess(params).simulate(
                segments, np.random.default_rng(0)
            )

    def test_crash_attributes_align_with_counts(self, segments, outcome):
        attrs = CrashProcess().crash_attributes(
            segments, outcome, np.random.default_rng(2)
        )
        n = outcome.n_crashes
        assert len(attrs["crash_year"]) == n
        assert len(attrs["surface_condition"]) == n
        assert len(attrs["severity"]) == n
        assert set(attrs["surface_condition"]) <= {"wet", "dry"}

    def test_wet_crashes_concentrate_on_low_friction(self, segments, outcome):
        attrs = CrashProcess().crash_attributes(
            segments, outcome, np.random.default_rng(2)
        )
        seg_idx = np.repeat(
            np.arange(outcome.n_segments), outcome.total_counts
        )
        f60 = segments.true_values["skid_resistance_f60"][seg_idx]
        wet = np.array(attrs["surface_condition"]) == "wet"
        if wet.any() and (~wet).any():
            assert f60[wet].mean() < f60[~wet].mean()

    def test_zero_noise_propensity_deterministic(self, segments):
        params = CrashProcessParams().with_overrides(z_noise_sd=0.0)
        process = CrashProcess(params)
        a = process.propensity(segments, np.random.default_rng(1))
        b = process.propensity(segments, np.random.default_rng(99))
        assert np.array_equal(a, b)
