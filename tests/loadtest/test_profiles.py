"""Workload profiles and schedule lowering."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import (
    PROFILES,
    Operation,
    WorkloadProfile,
    build_schedule,
    get_profile,
)


class TestProfiles:
    def test_builtins_present(self):
        assert {"mixed", "score", "batch", "browse"} <= set(PROFILES)

    def test_weights_normalise(self):
        weights = get_profile("mixed").weights()
        assert abs(float(weights.sum()) - 1.0) < 1e-12

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_profile("nope")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            WorkloadProfile(
                "dup", (Operation("score", 1.0), Operation("score", 2.0))
            )

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="weight > 0"):
            WorkloadProfile("w", (Operation("score", 0.0),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown operation"):
            WorkloadProfile("k", (Operation("delete", 1.0),))


class TestBuildSchedule:
    def test_same_seed_identical_schedule(self, request_rows):
        profile = get_profile("mixed")
        a = build_schedule(profile, request_rows, 200, seed=7)
        b = build_schedule(profile, request_rows, 200, seed=7)
        assert a == b

    def test_different_seed_differs(self, request_rows):
        profile = get_profile("mixed")
        a = build_schedule(profile, request_rows, 200, seed=7)
        b = build_schedule(profile, request_rows, 200, seed=8)
        assert a != b

    def test_mix_roughly_matches_weights(self, request_rows):
        schedule = build_schedule(
            get_profile("mixed"), request_rows, 2000, seed=3
        )
        counts = {"score": 0, "batch": 0, "models": 0}
        for planned in schedule:
            counts[planned.kind] += 1
        assert 0.7 < counts["score"] / 2000 < 0.9
        assert 0.05 < counts["batch"] / 2000 < 0.25
        assert 0.0 < counts["models"] / 2000 < 0.15

    def test_bodies_are_valid_requests(self, request_rows):
        schedule = build_schedule(
            get_profile("mixed"),
            request_rows,
            100,
            seed=5,
            model="cp8",
            batch_size=4,
        )
        for planned in schedule:
            if planned.kind == "models":
                assert planned.body is None
                assert planned.method == "GET"
                continue
            payload = json.loads(planned.body)
            assert payload["model"] == "cp8"
            if planned.kind == "score":
                assert payload["row"] == request_rows[planned.row_indices[0]]
            else:
                assert len(payload["rows"]) == 4
                assert payload["rows"] == [
                    request_rows[i] for i in planned.row_indices
                ]

    def test_batch_window_wraps(self, request_rows):
        schedule = build_schedule(
            get_profile("batch"),
            request_rows,
            50,
            seed=2,
            batch_size=len(request_rows) + 3,
        )
        planned = schedule[0]
        assert planned.n_rows == len(request_rows) + 3
        assert max(planned.row_indices) < len(request_rows)

    def test_open_loop_offsets_attached(self, request_rows):
        schedule = build_schedule(
            get_profile("score"),
            request_rows,
            50,
            seed=4,
            arrival="poisson",
            rate=100.0,
        )
        assert schedule[0].offset == 0.0
        offsets = [planned.offset for planned in schedule]
        assert offsets == sorted(offsets)

    def test_arrival_stream_independent_of_op_stream(self, request_rows):
        """Growing the schedule keeps the operation prefix stable."""
        profile = get_profile("mixed")
        short = build_schedule(
            profile, request_rows, 50, seed=9, arrival="fixed", rate=10.0
        )
        long = build_schedule(
            profile, request_rows, 80, seed=9, arrival="fixed", rate=10.0
        )
        assert [p.kind for p in long[:50]] == [p.kind for p in short]

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="row pool is empty"):
            build_schedule(get_profile("score"), [], 10, seed=0)


class TestRouteProfile:
    """The ``routes`` profile and its town-pair pool plumbing."""

    PAIRS = [("town_000", "town_005"), ("town_001", "town_002")]

    def test_routes_profile_registered(self):
        profile = get_profile("routes")
        assert profile.needs_pairs()
        kinds = {op.kind for op in profile.operations}
        assert {"route_score", "route_safest", "score"} <= kinds

    def test_classic_profiles_need_no_pairs(self):
        for name in ("mixed", "score", "batch", "browse"):
            assert not get_profile(name).needs_pairs()

    def test_pairs_required(self, request_rows):
        with pytest.raises(ConfigurationError, match="town-pair pool"):
            build_schedule(get_profile("routes"), request_rows, 10, seed=0)

    def test_route_bodies_are_valid_requests(self, request_rows):
        schedule = build_schedule(
            get_profile("routes"),
            request_rows,
            200,
            seed=5,
            model="cp8",
            pairs=self.PAIRS,
        )
        kinds = {planned.kind for planned in schedule}
        assert {"route_score", "route_safest", "score"} <= kinds
        for planned in schedule:
            payload = json.loads(planned.body)
            assert payload["model"] == "cp8"
            if planned.kind == "route_score":
                assert planned.path == "/v1/route/score"
                assert (payload["from"], payload["to"]) in self.PAIRS
            elif planned.kind == "route_safest":
                assert planned.path == "/v1/route/safest"
                assert payload["k"] == 3
                assert (payload["from"], payload["to"]) in self.PAIRS

    def test_adding_pairs_keeps_schedule_deterministic(self, request_rows):
        a = build_schedule(
            get_profile("routes"), request_rows, 100, seed=7,
            pairs=self.PAIRS,
        )
        b = build_schedule(
            get_profile("routes"), request_rows, 100, seed=7,
            pairs=self.PAIRS,
        )
        assert a == b

    def test_classic_schedules_unchanged_by_pairs_argument(
        self, request_rows
    ):
        """Passing a pair pool to a non-route profile is a no-op."""
        profile = get_profile("mixed")
        without = build_schedule(profile, request_rows, 100, seed=3)
        with_pairs = build_schedule(
            profile, request_rows, 100, seed=3, pairs=self.PAIRS
        )
        assert without == with_pairs
