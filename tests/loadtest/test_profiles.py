"""Workload profiles and schedule lowering."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import (
    PROFILES,
    Operation,
    WorkloadProfile,
    build_schedule,
    get_profile,
)


class TestProfiles:
    def test_builtins_present(self):
        assert {"mixed", "score", "batch", "browse"} <= set(PROFILES)

    def test_weights_normalise(self):
        weights = get_profile("mixed").weights()
        assert abs(float(weights.sum()) - 1.0) < 1e-12

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_profile("nope")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            WorkloadProfile(
                "dup", (Operation("score", 1.0), Operation("score", 2.0))
            )

    def test_bad_weight_rejected(self):
        with pytest.raises(ConfigurationError, match="weight > 0"):
            WorkloadProfile("w", (Operation("score", 0.0),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown operation"):
            WorkloadProfile("k", (Operation("delete", 1.0),))


class TestBuildSchedule:
    def test_same_seed_identical_schedule(self, request_rows):
        profile = get_profile("mixed")
        a = build_schedule(profile, request_rows, 200, seed=7)
        b = build_schedule(profile, request_rows, 200, seed=7)
        assert a == b

    def test_different_seed_differs(self, request_rows):
        profile = get_profile("mixed")
        a = build_schedule(profile, request_rows, 200, seed=7)
        b = build_schedule(profile, request_rows, 200, seed=8)
        assert a != b

    def test_mix_roughly_matches_weights(self, request_rows):
        schedule = build_schedule(
            get_profile("mixed"), request_rows, 2000, seed=3
        )
        counts = {"score": 0, "batch": 0, "models": 0}
        for planned in schedule:
            counts[planned.kind] += 1
        assert 0.7 < counts["score"] / 2000 < 0.9
        assert 0.05 < counts["batch"] / 2000 < 0.25
        assert 0.0 < counts["models"] / 2000 < 0.15

    def test_bodies_are_valid_requests(self, request_rows):
        schedule = build_schedule(
            get_profile("mixed"),
            request_rows,
            100,
            seed=5,
            model="cp8",
            batch_size=4,
        )
        for planned in schedule:
            if planned.kind == "models":
                assert planned.body is None
                assert planned.method == "GET"
                continue
            payload = json.loads(planned.body)
            assert payload["model"] == "cp8"
            if planned.kind == "score":
                assert payload["row"] == request_rows[planned.row_indices[0]]
            else:
                assert len(payload["rows"]) == 4
                assert payload["rows"] == [
                    request_rows[i] for i in planned.row_indices
                ]

    def test_batch_window_wraps(self, request_rows):
        schedule = build_schedule(
            get_profile("batch"),
            request_rows,
            50,
            seed=2,
            batch_size=len(request_rows) + 3,
        )
        planned = schedule[0]
        assert planned.n_rows == len(request_rows) + 3
        assert max(planned.row_indices) < len(request_rows)

    def test_open_loop_offsets_attached(self, request_rows):
        schedule = build_schedule(
            get_profile("score"),
            request_rows,
            50,
            seed=4,
            arrival="poisson",
            rate=100.0,
        )
        assert schedule[0].offset == 0.0
        offsets = [planned.offset for planned in schedule]
        assert offsets == sorted(offsets)

    def test_arrival_stream_independent_of_op_stream(self, request_rows):
        """Growing the schedule keeps the operation prefix stable."""
        profile = get_profile("mixed")
        short = build_schedule(
            profile, request_rows, 50, seed=9, arrival="fixed", rate=10.0
        )
        long = build_schedule(
            profile, request_rows, 80, seed=9, arrival="fixed", rate=10.0
        )
        assert [p.kind for p in long[:50]] == [p.kind for p in short]

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="row pool is empty"):
            build_schedule(get_profile("score"), [], 10, seed=0)
