"""End-to-end runner tests against an in-process scoring service.

Short measured windows (~1 s) keep this inside the tier-1 budget; the
sustained 64-thread version lives in the slow-marked stress test.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import LoadTest
from repro.obs import Tracer
from repro.serving import ScoringService


@pytest.fixture()
def service(loadtest_model_dir):
    service = ScoringService(
        loadtest_model_dir, port=0, tracer=Tracer(max_spans=None)
    ).start()
    yield service
    service.close()


class TestClosedLoop:
    def test_full_report_with_parity_and_scrapes(self, service, request_rows):
        report = LoadTest(
            service.url,
            request_rows,
            service=service,
            profile="mixed",
            clients=3,
            duration=1.0,
            warmup=0.3,
            seed=7,
            scrape_interval=0.2,
        ).run()
        assert report.arrival == "closed"
        assert report.total_requests > 0
        assert report.total_errors == 0
        assert report.warmup_requests > 0
        # Count parity: the server's own counters moved by exactly the
        # requests this client observed.
        assert report.parity_ok
        assert {c.endpoint for c in report.parity} == {
            "POST /v1/score",
            "POST /v1/score/batch",
            "GET /models",
        }
        # Every scrape validated; the final one always runs.
        assert report.n_scrapes >= 1
        assert report.scrape_samples > 0

    def test_slowest_have_trace_ids_and_waterfall(
        self, service, request_rows
    ):
        report = LoadTest(
            service.url,
            request_rows,
            service=service,
            profile="score",
            clients=2,
            duration=0.8,
            warmup=0.2,
            seed=7,
            slowest_k=3,
        ).run()
        assert 1 <= len(report.slowest) <= 3
        assert all(r.trace_id for r in report.slowest)
        assert report.waterfall is not None
        assert "http.request" in report.waterfall

    def test_render_and_to_dict(self, service, request_rows):
        report = LoadTest(
            service.url,
            request_rows,
            service=service,
            profile="score",
            clients=2,
            duration=0.6,
            warmup=0.0,
            seed=7,
        ).run()
        text = report.render()
        assert "Load test: profile score" in text
        assert "parity POST /v1/score" in text
        assert "prometheus scrapes" in text
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["parity_ok"] is True
        assert payload["endpoints"]["POST /v1/score"]["requests"] > 0


class TestOpenLoop:
    def test_fixed_rate_sends_the_scheduled_count(
        self, service, request_rows
    ):
        report = LoadTest(
            service.url,
            request_rows,
            service=service,
            profile="score",
            clients=4,
            duration=1.0,
            rate=40.0,
            arrival="fixed",
            warmup=0.2,
            seed=7,
        ).run()
        assert report.arrival == "fixed"
        # rate * duration requests, all of them sent and answered.
        assert report.total_requests == 40
        assert report.parity_ok
        assert report.lateness_p95_ms >= 0.0
        assert "schedule lateness" in report.render()

    def test_no_url_service_means_no_waterfall(
        self, service, request_rows
    ):
        report = LoadTest(
            service.url,
            request_rows,
            profile="score",
            clients=2,
            duration=0.5,
            warmup=0.0,
            seed=7,
        ).run()
        assert report.waterfall is None
        assert report.parity_ok


class TestValidation:
    def test_bad_clients(self, request_rows):
        with pytest.raises(ConfigurationError, match="clients"):
            LoadTest("http://127.0.0.1:1", request_rows, clients=0)

    def test_bad_duration(self, request_rows):
        with pytest.raises(ConfigurationError, match="duration"):
            LoadTest("http://127.0.0.1:1", request_rows, duration=0)

    def test_unknown_profile(self, request_rows):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            LoadTest("http://127.0.0.1:1", request_rows, profile="nope")
