"""Load-test fixtures: one trained scorer, its deploy dir and rows.

Mirrors the serving fixtures (training is deterministic and cheap) so
the load-test suite does not depend on another test package's
conftest.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import CrashPronenessScorer


@pytest.fixture(scope="session")
def loadtest_scorer(small_dataset) -> CrashPronenessScorer:
    return CrashPronenessScorer.train(
        small_dataset.crash_instances,
        threshold=8,
        seed=11,
        metadata={"note": "loadtest-tests"},
    )


@pytest.fixture(scope="session")
def loadtest_model_dir(tmp_path_factory, loadtest_scorer):
    path = tmp_path_factory.mktemp("loadtest-models")
    loadtest_scorer.save(path / "cp8.json")
    return path


@pytest.fixture(scope="session")
def request_rows(small_dataset, loadtest_scorer) -> list[dict]:
    """Request-shaped rows: segment attributes only, in schema order."""
    expected = list(loadtest_scorer.input_schema())
    table = small_dataset.segment_table
    return [
        {name: row[name] for name in expected}
        for row in (table.row(i) for i in range(80))
    ]
