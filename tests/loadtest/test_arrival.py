"""Arrival processes: determinism, distribution shape, validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import interarrival_times, start_offsets


class TestFixedRate:
    def test_uniform_gaps(self):
        gaps = interarrival_times("fixed", rate=50.0, n=200, seed=1)
        assert gaps.shape == (200,)
        assert np.allclose(gaps, 1.0 / 50.0)

    def test_offsets_start_at_zero_and_accumulate(self):
        offsets = start_offsets("fixed", rate=10.0, n=5, seed=1)
        assert np.allclose(offsets, [0.0, 0.1, 0.2, 0.3, 0.4])


class TestPoisson:
    def test_same_seed_same_schedule(self):
        a = start_offsets("poisson", rate=100.0, n=500, seed=7)
        b = start_offsets("poisson", rate=100.0, n=500, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = start_offsets("poisson", rate=100.0, n=500, seed=7)
        b = start_offsets("poisson", rate=100.0, n=500, seed=8)
        assert not np.array_equal(a, b)

    def test_mean_gap_matches_rate(self):
        gaps = interarrival_times("poisson", rate=200.0, n=20_000, seed=3)
        assert np.all(gaps >= 0)
        # Exponential(1/rate): the sample mean of 20k draws sits within
        # a few percent of 1/rate.
        assert abs(float(gaps.mean()) - 1.0 / 200.0) < 0.001

    def test_offsets_monotone_from_zero(self):
        offsets = start_offsets("poisson", rate=50.0, n=100, seed=5)
        assert offsets[0] == 0.0
        assert np.all(np.diff(offsets) >= 0)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown arrival"):
            interarrival_times("burst", rate=10.0, n=5, seed=0)

    def test_closed_has_no_schedule(self):
        with pytest.raises(ConfigurationError, match="closed-loop"):
            interarrival_times("closed", rate=10.0, n=5, seed=0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="rate > 0"):
            interarrival_times("poisson", rate=0.0, n=5, seed=0)

    def test_length_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            start_offsets("fixed", rate=10.0, n=0, seed=0)
