"""SLO spec parsing and evaluation."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.loadtest import LoadTestReport, SLOSpec
from repro.loadtest.results import EndpointSummary


def _report(**overrides):
    summary = EndpointSummary(
        endpoint="POST /v1/score",
        requests=100,
        errors=0,
        transport_errors=0,
        throughput_rps=50.0,
        mean_ms=4.0,
        p50_ms=3.0,
        p95_ms=8.0,
        p99_ms=12.0,
        max_ms=20.0,
    )
    for key, value in overrides.items():
        setattr(summary, key, value)
    return LoadTestReport(
        profile="score",
        arrival="closed",
        seed=7,
        clients=2,
        wall_seconds=2.0,
        endpoints={summary.endpoint: summary},
        parity=[],
        n_scrapes=1,
        scrape_samples=10,
        slowest=[],
    )


class TestParsing:
    def test_load_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            '{"name": "s", "rules": [{"endpoint": "*", "max_p99_ms": 10}]}'
        )
        spec = SLOSpec.load(path)
        assert spec.name == "s"
        assert spec.rules[0].limits == (("max_p99_ms", 10.0),)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "prod.json"
        path.write_text('{"rules": [{"endpoint": "*", "max_p99_ms": 1}]}')
        assert SLOSpec.load(path).name == "prod"

    def test_repo_smoke_spec_parses(self):
        from pathlib import Path

        spec = SLOSpec.load(
            Path(__file__).parents[2] / "benchmarks" / "slo" / "smoke.json"
        )
        assert spec.name == "smoke"
        assert len(spec.rules) == 3

    def test_load_yaml_when_available(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            "name: y\nrules:\n  - endpoint: '*'\n    max_p99_ms: 5\n"
        )
        spec = SLOSpec.load(path)
        assert spec.name == "y"

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            SLOSpec.from_dict(
                {"rules": [{"endpoint": "*", "max_p42_ms": 1}]}
            )

    def test_rule_needs_a_threshold(self):
        with pytest.raises(ConfigurationError, match="no thresholds"):
            SLOSpec.from_dict({"rules": [{"endpoint": "*"}]})

    def test_threshold_must_be_numeric(self):
        with pytest.raises(ConfigurationError, match="must be a number"):
            SLOSpec.from_dict(
                {"rules": [{"endpoint": "*", "max_p99_ms": "fast"}]}
            )

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            SLOSpec.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            SLOSpec.load(tmp_path / "absent.json")


class TestEvaluation:
    def test_all_green(self):
        spec = SLOSpec.from_dict(
            {
                "rules": [
                    {
                        "endpoint": "POST /v1/score",
                        "max_p99_ms": 100,
                        "max_error_rate": 0.0,
                        "min_throughput_rps": 10,
                    }
                ]
            }
        )
        assert spec.evaluate(_report()) == []

    def test_max_violated(self):
        spec = SLOSpec.from_dict(
            {"rules": [{"endpoint": "*", "max_p99_ms": 5}]}
        )
        violations = spec.evaluate(_report(p99_ms=12.0))
        assert len(violations) == 1
        assert violations[0].key == "max_p99_ms"
        assert "required <= 5" in violations[0].describe()

    def test_min_violated(self):
        spec = SLOSpec.from_dict(
            {"rules": [{"endpoint": "*", "min_throughput_rps": 999}]}
        )
        violations = spec.evaluate(_report())
        assert [v.key for v in violations] == ["min_throughput_rps"]

    def test_unmatched_pattern_is_a_violation(self):
        spec = SLOSpec.from_dict(
            {"rules": [{"endpoint": "GET /missing", "max_p99_ms": 10}]}
        )
        violations = spec.evaluate(_report())
        assert [v.key for v in violations] == ["unmatched"]
        assert "matched no endpoint" in violations[0].describe()

    def test_nan_metric_always_fails(self):
        spec = SLOSpec.from_dict(
            {"rules": [{"endpoint": "*", "max_p99_ms": 1e9}]}
        )
        violations = spec.evaluate(_report(p99_ms=float("nan")))
        assert len(violations) == 1
        assert math.isnan(violations[0].observed)

    def test_glob_matches_multiple_endpoints(self):
        report = _report()
        extra = EndpointSummary(
            endpoint="POST /v1/score/batch",
            requests=10,
            errors=5,
            transport_errors=0,
            throughput_rps=5.0,
            mean_ms=4.0,
            p50_ms=3.0,
            p95_ms=8.0,
            p99_ms=12.0,
            max_ms=20.0,
        )
        report.endpoints[extra.endpoint] = extra
        spec = SLOSpec.from_dict(
            {"rules": [{"endpoint": "POST /v1/*", "max_error_rate": 0.0}]}
        )
        violations = spec.evaluate(report)
        assert [v.endpoint for v in violations] == ["POST /v1/score/batch"]
