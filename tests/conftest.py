"""Shared fixtures.

The generated dataset fixtures are session-scoped: generation is a pure
function of the seed, so sharing them across tests is safe and keeps
the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.roads import QDTMRSyntheticGenerator, small_config


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def toy_table() -> DataTable:
    """A small mixed-type table with missing values."""
    return DataTable(
        [
            NumericColumn("x", [1.0, 2.0, None, 4.0, 5.0, 6.0]),
            NumericColumn("y", [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
            CategoricalColumn(
                "colour",
                ["red", "blue", "red", None, "green", "blue"],
                ("red", "blue", "green"),
            ),
        ]
    )


def make_classification_table(
    n: int, seed: int = 0, noise: float = 0.5
) -> tuple[DataTable, np.ndarray]:
    """A synthetic binary-classification table with mixed features.

    The target depends on ``a`` (numeric), ``group`` (categorical) and
    nothing else; ``b`` is a distractor.  Returns (table, y).
    """
    gen = np.random.default_rng(seed)
    a = gen.normal(0, 1, n)
    b = gen.normal(0, 1, n)
    group = gen.choice(["p", "q", "r"], size=n, p=[0.5, 0.3, 0.2])
    logit = 1.8 * a + (group == "r") * 2.0 - 0.5
    probs = 1 / (1 + np.exp(-(logit + gen.normal(0, noise, n))))
    y = (gen.random(n) < probs).astype(int)
    table = DataTable(
        [
            NumericColumn.from_array("a", a),
            NumericColumn.from_array("b", b),
            CategoricalColumn("group", list(group), ("p", "q", "r")),
            CategoricalColumn(
                "label",
                ["pos" if v else "neg" for v in y],
                ("neg", "pos"),
            ),
        ]
    )
    return table, y


@pytest.fixture()
def classification_table() -> tuple[DataTable, np.ndarray]:
    return make_classification_table(600, seed=7)


@pytest.fixture(scope="session")
def small_dataset():
    """A small generated road-crash dataset shared across the session."""
    return QDTMRSyntheticGenerator(
        small_config(n_segments=2500, n_towns=12)
    ).generate(seed=42)


@pytest.fixture(scope="session")
def mid_dataset():
    """A mid-size dataset for integration tests of the study phases."""
    return QDTMRSyntheticGenerator(
        small_config(n_segments=6000, n_towns=18)
    ).generate(seed=7)
