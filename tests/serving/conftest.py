"""Serving-layer fixtures.

One scorer is trained per session (training is deterministic and
~0.2 s) and saved into a session model directory that registry /
service tests treat as the deploy root.  Tests that mutate artefacts
copy into their own ``tmp_path`` instead of touching this one.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import CrashPronenessScorer


@pytest.fixture(scope="session")
def serving_scorer(small_dataset) -> CrashPronenessScorer:
    return CrashPronenessScorer.train(
        small_dataset.crash_instances,
        threshold=8,
        seed=11,
        metadata={"note": "serving-tests"},
    )


@pytest.fixture(scope="session")
def model_dir(tmp_path_factory, serving_scorer):
    path = tmp_path_factory.mktemp("models")
    serving_scorer.save(path / "cp8.json")
    return path


@pytest.fixture(scope="session")
def segment_rows(small_dataset, serving_scorer) -> list[dict]:
    """Request-shaped rows: segment attributes only, in schema order."""
    expected = list(serving_scorer.input_schema())
    table = small_dataset.segment_table
    return [
        {name: row[name] for name in expected}
        for row in (table.row(i) for i in range(60))
    ]
