"""Tier-2 concurrency stress: 64 client threads against one service.

Marked ``slow`` (excluded from tier 1; run with ``-m slow``).  The
invariants under sustained mixed load:

* zero dropped responses — every request gets an HTTP answer;
* exact client/server count parity per endpoint;
* for a sample of traced requests, each trace id resolves to ONE
  connected span tree rooted at ``http.request``;
* the runtime lock-order sanitizer observes zero cycles, and every
  observed acquisition order exists in the static lock model
  (:mod:`repro.analysis.locks`) — a gap fails the test instead of
  rotting silently.
"""

import http.client
import json
import threading
from pathlib import Path

import pytest

from repro.analysis import build_project, model_gaps, sanitize_locks
from repro.obs import Tracer
from repro.serving import ScoringService

pytestmark = pytest.mark.slow

N_THREADS = 64
REQUESTS_PER_THREAD = 30

SRC = Path(__file__).resolve().parents[2] / "src"


class TestStress:
    def test_64_threads_mixed_load(self, model_dir, segment_rows):
        with sanitize_locks(strict=True) as monitor:
            self._run_mixed_load(model_dir, segment_rows)
        assert monitor.violations == []
        assert monitor.n_acquisitions > 0, "sanitizer instrumented nothing"
        # Cross-validate the observed acquisition-order graph against
        # the static lock model built from the same sources.
        _contexts, _graph, lock_model = build_project([str(SRC)])
        assert model_gaps(monitor, lock_model) == []

    def _run_mixed_load(self, model_dir, segment_rows):
        tracer = Tracer(max_spans=None)
        service = ScoringService(
            model_dir, port=0, tracer=tracer
        ).start()
        results: list[list[tuple[str, int, str | None]]] = [
            [] for _ in range(N_THREADS)
        ]
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            mine = results[worker_id]
            connection = http.client.HTTPConnection(
                "127.0.0.1", service.port, timeout=60
            )
            try:
                for i in range(REQUESTS_PER_THREAD):
                    pick = (worker_id + i) % 10
                    if pick < 7:
                        path, endpoint = "/v1/score", "POST /v1/score"
                        body = json.dumps(
                            {"row": segment_rows[(worker_id + i) % len(segment_rows)]}
                        )
                    elif pick < 9:
                        path = "/v1/score/batch"
                        endpoint = "POST /v1/score/batch"
                        body = json.dumps({"rows": segment_rows[:5]})
                    else:
                        path, endpoint, body = "/models", "GET /models", None
                    if body is None:
                        connection.request("GET", path)
                    else:
                        connection.request(
                            "POST",
                            path,
                            body=body,
                            headers={"Content-Type": "application/json"},
                        )
                    response = connection.getresponse()
                    response.read()
                    mine.append(
                        (
                            endpoint,
                            response.status,
                            response.getheader("X-Repro-Trace-Id"),
                        )
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                connection.close()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"stress-{i}")
            for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        try:
            assert errors == []
            flat = [r for chunk in results for r in chunk]
            # Zero dropped responses: every request came back, all 200.
            assert len(flat) == N_THREADS * REQUESTS_PER_THREAD
            assert all(status == 200 for _, status, _ in flat)

            # Exact count parity against the server's own counters.
            summary = service.metrics.summary()
            for endpoint in (
                "POST /v1/score",
                "POST /v1/score/batch",
                "GET /models",
            ):
                client_count = sum(
                    1 for e, _, _ in flat if e == endpoint
                )
                assert summary[endpoint]["count"] == client_count
                assert summary[endpoint]["errors"] == 0

            # Sampled trace trees are each ONE connected tree.
            spans = tracer.finished()
            by_trace: dict[str, list] = {}
            for span in spans:
                by_trace.setdefault(span.trace_id, []).append(span)
            sampled = [
                trace_id
                for _, _, trace_id in flat[:: len(flat) // 50]
                if trace_id is not None
            ]
            assert sampled, "no trace ids came back"
            for trace_id in sampled:
                tree = by_trace[trace_id]
                ids = {s.span_id for s in tree}
                roots = [s for s in tree if s.parent_id is None]
                assert [r.name for r in roots] == ["http.request"]
                assert all(
                    s.parent_id in ids
                    for s in tree
                    if s.parent_id is not None
                )
        finally:
            service.close()
