"""End-to-end observability of the scoring service.

The acceptance test of the tracing tentpole lives here: one bulk
``POST /v1/score/batch`` must come back as a SINGLE connected span
tree — handler thread → engine → executor → pool workers — with every
parent/child link intact.  Alongside it: the Prometheus exposition
endpoint, fixed-cardinality 404 labels, the structured access log, and
the post-``timed()`` error accounting.
"""

import http.client
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import Tracer, validate_exposition
from repro.obs.prometheus import CONTENT_TYPE
from repro.serving import ScoringService


def _get(service, path):
    with urllib.request.urlopen(service.url + path, timeout=10) as response:
        return (
            response.status,
            dict(response.headers),
            response.read().decode("utf-8"),
        )


def _post(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _wait_for_spans(tracer, names, timeout=5.0):
    """Spans finishing on worker threads can trail the HTTP response."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = tracer.finished()
        if names <= {s.name for s in spans}:
            return spans
    raise AssertionError(
        f"expected spans {names}, got "
        f"{sorted({s.name for s in tracer.finished()})}"
    )


class TestBulkRequestTrace:
    def test_one_batch_post_yields_one_connected_trace(
        self, model_dir, segment_rows
    ):
        tracer = Tracer(max_spans=None)
        with ScoringService(
            model_dir,
            port=0,
            bulk_jobs=2,
            bulk_threshold=10,
            tracer=tracer,
        ).start() as service:
            out = _post(
                service, "/v1/score/batch", {"rows": segment_rows}
            )
        assert out["count"] == len(segment_rows)

        spans = tracer.finished()
        names = {s.name for s in spans}
        assert {
            "http.request",
            "engine.score_batch",
            "executor.run",
            "bulk.score_shard",
        } <= names

        # SINGLE connected trace: one trace id, one root, no orphans.
        assert len({s.trace_id for s in spans}) == 1
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["http.request"]
        assert all(
            s.parent_id in by_id for s in spans if s.parent_id is not None
        )

        def parent_of(span):
            return by_id[span.parent_id]

        # The queue-wait → fan-out → per-worker chain, link by link.
        batch_span = next(s for s in spans if s.name == "engine.score_batch")
        assert parent_of(batch_span).name == "http.request"
        run_span = next(s for s in spans if s.name == "executor.run")
        assert parent_of(run_span).name == "engine.score_batch"
        task_spans = [
            s for s in spans if s.name.startswith("task.bulk-score/shard-")
        ]
        assert len(task_spans) == 2  # bulk_jobs=2 → two shards
        assert all(s.parent_id == run_span.span_id for s in task_spans)
        shard_spans = [s for s in spans if s.name == "bulk.score_shard"]
        assert len(shard_spans) == 2
        assert {parent_of(s).span_id for s in shard_spans} == {
            s.span_id for s in task_spans
        }
        assert sum(s.attrs["rows"] for s in shard_spans) == len(segment_rows)
        # Worker-side kernel evaluation rides inside the shard spans.
        evaluate_spans = [s for s in spans if s.name == "plan.evaluate"]
        assert evaluate_spans
        shard_ids = {s.span_id for s in shard_spans}
        assert all(s.parent_id in shard_ids for s in evaluate_spans)


class TestMicroBatchTrace:
    def test_single_score_connects_through_the_batch_worker(
        self, model_dir, segment_rows
    ):
        tracer = Tracer(max_spans=None)
        with ScoringService(
            model_dir, port=0, max_wait_ms=5.0, tracer=tracer
        ).start() as service:
            out = _post(service, "/v1/score", {"row": segment_rows[0]})
            assert 0.0 <= out["probability"] <= 1.0
            spans = _wait_for_spans(
                tracer, {"http.request", "engine.batch", "engine.score_rows"}
            )

        assert len({s.trace_id for s in spans}) == 1
        by_id = {s.span_id: s for s in spans}
        batch_span = next(s for s in spans if s.name == "engine.batch")
        # The batch worker thread has no request context: the link is
        # the shipped _Pending.trace_context.
        assert by_id[batch_span.parent_id].name == "http.request"
        assert batch_span.attrs["batch_size"] >= 1
        assert batch_span.attrs["queue_wait_ms"] >= 0.0
        score_span = next(s for s in spans if s.name == "engine.score_rows")
        assert by_id[score_span.parent_id].name == "engine.batch"


class TestPrometheusEndpoint:
    def test_exposition_parses_and_carries_traffic(
        self, model_dir, segment_rows
    ):
        with ScoringService(model_dir, port=0).start() as service:
            _post(service, "/v1/score", {"row": segment_rows[0]})
            _get(service, "/healthz")
            status, headers, text = _get(
                service, "/metrics?format=prometheus"
            )
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert validate_exposition(text) > 0
        assert (
            'repro_requests_total{endpoint="POST /v1/score"} 1'
            in text.splitlines()
        )
        assert "repro_engine_rows_scored_total" in text
        assert "repro_uptime_seconds" in text

    def test_json_metrics_remain_the_default(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            status, headers, body = _get(service, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert set(payload) == {
            "endpoints", "engines", "registry", "windows", "build",
        }
        assert payload["build"]["version"]
        assert set(payload["build"]) == {
            "version", "python", "numpy", "native_kernel",
        }

    def test_build_info_in_prometheus_exposition(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            _, _, text = _get(service, "/metrics?format=prometheus")
        assert validate_exposition(text) > 0
        (line,) = [
            l for l in text.splitlines()
            if l.startswith("repro_build_info{")
        ]
        assert line.endswith(" 1")
        for label in ("version=", "python=", "numpy=", "native_kernel="):
            assert label in line

    def test_unknown_format_is_a_request_error(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(service, "/metrics?format=xml")
            assert excinfo.value.code == 400


class TestUnknownPathLabels:
    def test_probe_scans_share_one_metric_series(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            for i in range(3):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(service, f"/probe/{i}")
                assert excinfo.value.code == 404
            summary = service.metrics.summary()
        assert summary["GET [unknown]"]["count"] == 3
        assert summary["GET [unknown]"]["error_types"] == {"NotFound": 3}
        assert not any("/probe/" in endpoint for endpoint in summary)


class TestAccessLog:
    def test_one_json_line_per_request_with_trace_join(
        self, model_dir, segment_rows, tmp_path
    ):
        log_path = tmp_path / "access.jsonl"
        tracer = Tracer(max_spans=None)
        with ScoringService(
            model_dir, port=0, tracer=tracer, access_log=log_path
        ).start() as service:
            _get(service, "/healthz")
            _post(service, "/v1/score", {"row": segment_rows[0]})
            with pytest.raises(urllib.error.HTTPError):
                _get(service, "/nope")

        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert [(l["method"], l["path"], l["status"]) for l in lines] == [
            ("GET", "/healthz", 200),
            ("POST", "/v1/score", 200),
            ("GET", "/nope", 404),
        ]
        # The line schema is pinned: downstream log pipelines key on
        # these exact field names.
        expected_fields = {
            "ts", "method", "path", "status", "response_bytes",
            "duration_ms", "queue_wait_ms", "trace_id", "error_type",
        }
        for line in lines:
            assert set(line) == expected_fields
            assert line["response_bytes"] > 0
            assert line["duration_ms"] >= 0.0
            assert line["ts"].startswith("20")
        assert lines[0]["error_type"] is None
        assert lines[2]["error_type"] == "NotFound"
        # Only the scoring request passed through the micro-batch
        # queue; plain GETs never queue, so their wait is null.
        assert lines[0]["queue_wait_ms"] is None
        assert lines[1]["queue_wait_ms"] >= 0.0
        assert lines[2]["queue_wait_ms"] is None
        # Each line's trace id joins to that request's span tree.
        request_spans = {
            s.attrs["path"]: s.trace_id
            for s in tracer.finished()
            if s.name == "http.request"
        }
        for line in lines:
            assert line["trace_id"] == request_spans[line["path"]]

    def test_untraced_service_logs_null_trace_ids(self, model_dir, tmp_path):
        log_path = tmp_path / "access.jsonl"
        with ScoringService(
            model_dir, port=0, access_log=log_path
        ).start() as service:
            _get(service, "/healthz")
        (line,) = [
            json.loads(l) for l in log_path.read_text().splitlines()
        ]
        assert line["trace_id"] is None


class TestRespondFailureAccounting:
    def test_serialisation_failure_still_counts_as_an_error(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            # A payload json.dumps cannot serialise: the failure happens
            # in _respond, after metrics.timed-equivalent observation.
            service.handle_get = lambda path, query=None: (
                200,
                {"oops": object()},
            )
            with pytest.raises(
                (
                    urllib.error.URLError,
                    http.client.HTTPException,
                    ConnectionError,
                )
            ):
                _get(service, "/healthz")
            summary = service.metrics.summary()["GET /healthz"]
        # Observed once as a (200) request, then the write failure is
        # recorded on top — visible, not double-counted.
        assert summary["count"] == 1
        assert summary["errors"] == 1
        assert summary["error_types"] == {"TypeError": 1}
