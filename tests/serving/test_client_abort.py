"""Regression: a client disconnecting mid-response must not crash the
handler — it is counted as a typed ``client_abort`` in ``/metrics``.

The failure mode this pins down: ``/v1/score/batch`` responses are
written into a buffered ``wfile``; when the client is gone the write
error used to surface at ``handle_one_request``'s implicit flush,
*outside* the dispatch accounting, so the abort was invisible.  The
response is now flushed inside ``_respond`` and
``BrokenPipeError``/``ConnectionResetError`` are caught explicitly.

The deterministic client death: close the socket with ``SO_LINGER``
(timeout 0), which sends an immediate RST instead of a graceful FIN —
the server's next write/flush on that connection fails.
"""

import json
import socket
import struct
import time
import urllib.request

from repro.serving import ScoringService


def _rst_close(sock: socket.socket) -> None:
    """Close with SO_LINGER(on, 0): RST now, no FIN handshake."""
    sock.setsockopt(
        socket.SOL_SOCKET,
        socket.SO_LINGER,
        struct.pack("ii", 1, 0),
    )
    sock.close()


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestClientAbortMidResponse:
    def test_batch_disconnect_counts_client_abort(
        self, model_dir, segment_rows
    ):
        # A long micro-batch wait stalls the lone request server-side,
        # giving the client a deterministic window to die in.
        with ScoringService(
            model_dir, port=0, max_wait_ms=400.0, cache_size=0
        ).start() as service:
            body = json.dumps({"rows": segment_rows[:8]}).encode()
            with socket.create_connection(
                ("127.0.0.1", service.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/score/batch HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                # Let the request reach the engine, then die with RST
                # before the response is written.
                time.sleep(0.1)
                _rst_close(sock)

            # The handler hits the dead socket at flush time and must
            # record a typed client_abort — not crash, not lose the
            # request.
            endpoint = "POST /v1/score/batch"
            assert _wait_for(
                lambda: service.metrics.summary()
                .get(endpoint, {})
                .get("error_types", {})
                .get("client_abort", 0)
                == 1
            ), service.metrics.summary()
            summary = service.metrics.summary()[endpoint]
            # The request itself was observed (scored successfully);
            # the abort rides in record_error, so errors == 1 while
            # the observation stayed a success.
            assert summary["count"] == 1
            assert summary["errors"] == 1

            # The service keeps serving normally afterwards.
            request = urllib.request.Request(
                service.url + "/v1/score",
                data=json.dumps({"row": segment_rows[0]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                out = json.loads(response.read())
            assert 0.0 <= out["probability"] <= 1.0

    def test_abort_mid_upload_counts_client_abort(self, model_dir):
        with ScoringService(model_dir, port=0).start() as service:
            with socket.create_connection(
                ("127.0.0.1", service.port), timeout=10
            ) as sock:
                # Promise a large body, send half, die with RST: the
                # handler's rfile.read hits the reset mid-upload.
                sock.sendall(
                    b"POST /v1/score/batch HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 100000\r\n\r\n"
                    + b'{"rows": [' + b"x" * 1000
                )
                time.sleep(0.05)
                _rst_close(sock)

            endpoint = "POST /v1/score/batch"
            assert _wait_for(
                lambda: service.metrics.summary()
                .get(endpoint, {})
                .get("error_types", {})
                .get("client_abort", 0)
                == 1
            ), service.metrics.summary()
