"""Process-sharded bulk scoring: shard math, worker cache, parity.

The contract under test: sharding a scoring pass across the process
pool is *invisible* — ``score_rows_sharded`` / ``score_table_sharded``
/ ``ScoringEngine.score_batch`` return element-for-element exactly
what the unsharded pass returns, in request order, for every shard
count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServingError
from repro.parallel import SweepExecutor
from repro.serving import ScoringEngine, score_table_sharded, shard_bounds
from repro.serving.bulk import (
    _WORKER_CACHE_LIMIT,
    _worker_scorer,
    _worker_scorers,
    build_request_table,
    score_rows_sharded,
)


class TestShardBounds:
    @given(
        n_rows=st.integers(min_value=0, max_value=5000),
        n_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_partition_the_rows(self, n_rows, n_shards):
        bounds = shard_bounds(n_rows, n_shards)
        # Contiguous cover, no empty shards, balanced within one row.
        assert len(bounds) <= n_shards
        position = 0
        sizes = []
        for start, stop in bounds:
            assert start == position and stop > start
            sizes.append(stop - start)
            position = stop
        assert position == n_rows
        if sizes:
            assert max(sizes) - min(sizes) <= 1

    def test_zero_rows_means_zero_shards(self):
        assert shard_bounds(0, 4) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ServingError, match="n_rows"):
            shard_bounds(-1, 2)
        with pytest.raises(ServingError, match="n_shards"):
            shard_bounds(10, 0)


class TestRequestTable:
    def test_schema_typed_columns(self, serving_scorer, segment_rows):
        schema = serving_scorer.input_schema()
        table = build_request_table(segment_rows[:5], schema)
        assert table.n_rows == 5
        for name, spec in schema.items():
            assert table.column(name).is_numeric == (
                spec["kind"] == "numeric"
            )

    def test_all_missing_numeric_column_stays_numeric(self, serving_scorer):
        schema = serving_scorer.input_schema()
        rows = [{name: None for name in schema} for _ in range(3)]
        table = build_request_table(rows, schema)
        for name, spec in schema.items():
            if spec["kind"] == "numeric":
                assert table.column(name).is_numeric


class TestWorkerCache:
    def setup_method(self):
        _worker_scorers.clear()

    def test_same_payload_rebuilds_once(self, serving_scorer):
        payload = serving_scorer.to_dict()
        first = _worker_scorer(payload)
        assert _worker_scorer(payload) is first
        assert len(_worker_scorers) == 1

    def test_cache_is_bounded(self, serving_scorer):
        base = serving_scorer.to_dict()
        from repro.core.deployment import payload_checksum

        for revision in range(_WORKER_CACHE_LIMIT + 3):
            payload = dict(base, metadata=dict(base["metadata"], r=revision))
            del payload["checksum"]
            payload["checksum"] = payload_checksum(payload)
            _worker_scorer(payload)
        assert len(_worker_scorers) == _WORKER_CACHE_LIMIT


class TestShardedParity:
    def test_score_rows_sharded_matches_unsharded(
        self, serving_scorer, segment_rows
    ):
        payload = serving_scorer.to_dict()
        table = build_request_table(
            segment_rows, serving_scorer.input_schema()
        )
        expected = [float(p) for p in serving_scorer.score(table)]
        with SweepExecutor(n_jobs=3) as executor:
            got = score_rows_sharded(payload, list(segment_rows), executor)
        assert got == expected  # element-for-element, request order

    def test_score_rows_sharded_empty(self, serving_scorer):
        with SweepExecutor(n_jobs=2) as executor:
            assert score_rows_sharded(
                serving_scorer.to_dict(), [], executor
            ) == []

    @pytest.mark.parametrize("n_jobs", [1, 2, 5])
    def test_score_table_sharded_matches_score(
        self, serving_scorer, small_dataset, n_jobs
    ):
        table = small_dataset.segment_table.head(97)
        expected = serving_scorer.score(table)
        got = score_table_sharded(serving_scorer, table, n_jobs=n_jobs)
        assert np.array_equal(got, expected)

    def test_more_shards_than_rows(self, serving_scorer, small_dataset):
        table = small_dataset.segment_table.head(3)
        got = score_table_sharded(serving_scorer, table, n_jobs=8)
        assert np.array_equal(got, serving_scorer.score(table))


class TestEngineBulkPath:
    @pytest.fixture()
    def bulk_engine(self, serving_scorer):
        engine = ScoringEngine(
            serving_scorer,
            name="bulk",
            cache_size=0,
            bulk_jobs=2,
            bulk_threshold=20,
        )
        yield engine
        engine.close()

    def test_score_batch_sharded_equals_unsharded(
        self, serving_scorer, segment_rows, bulk_engine
    ):
        serial = ScoringEngine(serving_scorer, name="serial", cache_size=0)
        try:
            expected = serial.score_rows(list(segment_rows))
        finally:
            serial.close()
        got = bulk_engine.score_batch(list(segment_rows))
        assert got == expected
        assert bulk_engine.bulk_batches == 1
        assert bulk_engine.bulk_rows == len(segment_rows)

    def test_small_batches_stay_on_the_micro_batcher(
        self, segment_rows, bulk_engine
    ):
        rows = segment_rows[:5]  # below bulk_threshold
        got = bulk_engine.score_batch(list(rows))
        assert len(got) == 5
        assert bulk_engine.bulk_batches == 0

    def test_sharded_batch_validates_rows(self, bulk_engine, segment_rows):
        rows = [dict(r) for r in segment_rows[:30]]
        rows[17] = {"x": 1}
        with pytest.raises(ServingError, match="row 17"):
            bulk_engine.score_batch(rows)

    def test_stats_expose_bulk_counters(self, bulk_engine, segment_rows):
        bulk_engine.score_batch(list(segment_rows[:25]))
        stats = bulk_engine.stats()
        assert stats["bulk_jobs"] == 2
        assert stats["bulk_threshold"] == 20
        assert stats["bulk_batches"] == 1
        assert stats["bulk_rows"] == 25

    def test_closed_engine_rejects_bulk(self, serving_scorer, segment_rows):
        engine = ScoringEngine(
            serving_scorer, name="x", bulk_jobs=2, bulk_threshold=5
        )
        engine.close()
        with pytest.raises(ServingError, match="closed"):
            engine.score_batch(list(segment_rows[:10]))
