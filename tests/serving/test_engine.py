"""Tests for the validating / micro-batching / caching scoring engine."""

import threading

import pytest

from repro.exceptions import ServingError
from repro.serving import LRUResultCache, ScoringEngine


@pytest.fixture()
def engine(serving_scorer):
    eng = ScoringEngine(
        serving_scorer, name="cp8", max_batch=16, max_wait_ms=25.0
    )
    yield eng
    eng.close()


class TestValidation:
    def test_missing_column_rejected(self, engine, segment_rows):
        row = dict(segment_rows[0])
        del row["skid_resistance_f60"]
        with pytest.raises(ServingError, match="skid_resistance_f60"):
            engine.validate_row(row)

    def test_non_dict_row_rejected(self, engine):
        with pytest.raises(ServingError, match="must be an object"):
            engine.validate_row([1, 2, 3])

    def test_label_where_number_expected(self, engine, segment_rows):
        row = dict(segment_rows[0], skid_resistance_f60="slippery")
        with pytest.raises(ServingError, match="expects a number"):
            engine.validate_row(row)

    def test_number_where_label_expected(self, engine, segment_rows):
        row = dict(segment_rows[0], terrain=3)
        with pytest.raises(ServingError, match="expects a label"):
            engine.validate_row(row)

    def test_missing_values_are_legal(self, engine, segment_rows):
        row = dict(segment_rows[0], terrain=None, rut_depth=None)
        assert 0.0 <= engine.score_one(row) <= 1.0

    def test_unseen_label_routes_like_fit_time(self, engine, segment_rows):
        # Unknown levels are allowed; they align to the unseen-label code.
        row = dict(segment_rows[0], region="atlantis")
        assert 0.0 <= engine.score_one(row) <= 1.0

    def test_error_reports_row_index(self, engine, segment_rows):
        rows = [segment_rows[0], {"half": "a row"}]
        with pytest.raises(ServingError, match="row 1 "):
            engine.score_many(rows)


class TestScoring:
    def test_direct_parity_with_scorer(
        self, engine, serving_scorer, small_dataset, segment_rows
    ):
        expected = serving_scorer.score(
            small_dataset.segment_table.head(len(segment_rows))
        )
        assert engine.score_rows(segment_rows) == [float(p) for p in expected]

    def test_batched_parity_with_scorer(
        self, engine, serving_scorer, small_dataset, segment_rows
    ):
        expected = serving_scorer.score(
            small_dataset.segment_table.head(len(segment_rows))
        )
        assert engine.score_many(segment_rows) == [float(p) for p in expected]

    def test_all_missing_numeric_column_stays_numeric(
        self, engine, segment_rows
    ):
        # A batch where one numeric column is entirely None must not be
        # re-inferred as categorical (the CSV reader would guess; the
        # engine builds from the schema).
        rows = [dict(r, rut_depth=None) for r in segment_rows[:4]]
        probabilities = engine.score_rows(rows)
        assert len(probabilities) == 4

    def test_scores_within_unit_interval(self, engine, segment_rows):
        assert all(0.0 <= p <= 1.0 for p in engine.score_rows(segment_rows))


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self, serving_scorer, segment_rows):
        engine = ScoringEngine(
            serving_scorer, name="cp8", max_batch=16, max_wait_ms=100.0
        )
        try:
            results: dict[int, float] = {}

            def call(i: int) -> None:
                results[i] = engine.score_one(segment_rows[i])

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(24)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 24
            assert max(engine.batch_sizes) > 1
            assert sum(engine.batch_sizes) == 24
        finally:
            engine.close()

    def test_batch_cap_respected(self, serving_scorer, segment_rows):
        engine = ScoringEngine(
            serving_scorer, name="cp8", max_batch=4, max_wait_ms=100.0
        )
        try:
            engine.score_many(segment_rows[:12])
            assert max(engine.batch_sizes) <= 4
        finally:
            engine.close()

    def test_closed_engine_rejects_submissions(self, serving_scorer, segment_rows):
        engine = ScoringEngine(serving_scorer, name="cp8")
        engine.close()
        with pytest.raises(ServingError, match="closed"):
            engine.score_one(segment_rows[0])

    def test_invalid_config_rejected(self, serving_scorer):
        with pytest.raises(ServingError, match="max_batch"):
            ScoringEngine(serving_scorer, max_batch=0)
        with pytest.raises(ServingError, match="max_wait_ms"):
            ScoringEngine(serving_scorer, max_wait_ms=-1)


class TestResultCache:
    def test_repeat_rows_hit_cache(self, engine, segment_rows):
        engine.score_rows(segment_rows[:5])
        assert engine.cache.misses == 5
        engine.score_rows(segment_rows[:5])
        assert engine.cache.hits == 5
        assert engine.n_scored == 10

    def test_duplicate_rows_in_one_batch_scored_once(
        self, engine, segment_rows
    ):
        row = segment_rows[0]
        probabilities = engine.score_rows([row, dict(row), dict(row)])
        assert len(set(probabilities)) == 1
        assert engine.cache.misses == 3  # three lookups, one key
        assert len(engine.cache) == 1

    def test_cached_results_equal_fresh(self, engine, segment_rows):
        first = engine.score_rows(segment_rows)
        again = engine.score_rows(segment_rows)
        assert first == again

    def test_int_and_float_rows_share_keys(self, engine, segment_rows):
        row = {
            k: (int(v) if isinstance(v, float) and v.is_integer() else v)
            for k, v in segment_rows[0].items()
        }
        assert engine.canonical_key(row) == engine.canonical_key(
            segment_rows[0]
        )

    def test_nan_valued_rows_hit_the_cache(self, engine, segment_rows):
        """NaN inputs canonicalise to a sentinel: as a raw key part a
        NaN can never hit (NaN != NaN), so missing-value rows used to
        re-score every time and pile up duplicate cache entries."""
        numeric = next(
            name
            for name, spec in engine.schema.items()
            if spec["kind"] == "numeric"
        )
        row = dict(segment_rows[0], **{numeric: float("nan")})
        assert engine.canonical_key(row) == engine.canonical_key(dict(row))
        engine.score_rows([row])
        engine.score_rows([dict(row)])
        assert engine.cache.hits == 1
        assert len(engine.cache) == 1

    def test_lru_eviction(self):
        cache = LRUResultCache(max_size=2)
        cache.put(("a",), 0.1)
        cache.put(("b",), 0.2)
        assert cache.get(("a",)) == 0.1  # refreshes "a"
        cache.put(("c",), 0.3)  # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 0.1
        assert cache.get(("c",)) == 0.3
        assert len(cache) == 2

    def test_zero_capacity_disables_cache(self, serving_scorer, segment_rows):
        engine = ScoringEngine(serving_scorer, cache_size=0)
        try:
            engine.score_rows(segment_rows[:3])
            engine.score_rows(segment_rows[:3])
            assert engine.cache.hits == 0
            assert len(engine.cache) == 0
        finally:
            engine.close()


class TestIntegrity:
    def test_short_scorer_output_is_loud(self, engine, segment_rows):
        """A scoring pass that loses rows must raise, not silently
        drop slots and shift later probabilities onto wrong rows."""
        original = engine.scorer.score
        engine.scorer.score = lambda table: original(table)[:-1]
        try:
            with pytest.raises(ServingError, match="probabilities"):
                engine.score_rows(segment_rows[:4])
        finally:
            engine.scorer.score = original

    def test_score_rows_returns_one_result_per_row(
        self, engine, segment_rows
    ):
        results = engine.score_rows(segment_rows[:7])
        assert len(results) == 7
        assert all(isinstance(p, float) for p in results)


class TestStats:
    def test_stats_counters(self, engine, segment_rows):
        engine.score_many(segment_rows[:6])
        stats = engine.stats()
        assert stats["rows_scored"] == 6
        assert stats["batches"] >= 1
        assert stats["cache_misses"] == 6
        assert stats["max_batch_observed"] >= 1
