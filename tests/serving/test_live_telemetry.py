"""The full telemetry loop against one live server.

The tentpole's acceptance path, end to end: real traffic through a
served model → the windowed p95 appears in ``/metrics`` → an SLO with
an impossible latency bound starts burning budget → and the window's
slowest trace id joins back to that request's span waterfall.  One
server, no mocks, every layer (engine, HTTP, windows, burn engine,
profiler, tracer) running together the way ``serve --profile --slo``
wires them.
"""

from __future__ import annotations

import json
import urllib.request

from repro.loadtest import SLOSpec
from repro.loadtest.slo import SLORule
from repro.obs import (
    SamplingProfiler,
    Tracer,
    group_traces,
    render_waterfall,
    validate_exposition,
)
from repro.serving import ScoringService


def _get(service, path):
    with urllib.request.urlopen(service.url + path, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8")


def _post(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def make_burn_engine():
    from repro.obs import SLOBurnEngine

    # max_p99_ms of 0.0001 ms is physically unmeetable: every request
    # is "bad", so the burn gauge must move with the very first one.
    # The generous error-rate rule stays quiet alongside it.
    spec = SLOSpec(
        "live-test",
        [
            SLORule.from_dict(
                {"endpoint": "POST /v1/score", "max_p99_ms": 0.0001}, 0
            ),
            SLORule.from_dict({"endpoint": "*", "max_error_rate": 0.9}, 1),
        ],
    )
    return SLOBurnEngine([spec])


class TestFullTelemetryLoop:
    def test_traffic_to_windows_to_burn_to_waterfall(
        self, model_dir, segment_rows
    ):
        tracer = Tracer(max_spans=None)
        profiler = SamplingProfiler(hz=97, tracer=tracer)
        profiler.start()
        try:
            with ScoringService(
                model_dir,
                port=0,
                tracer=tracer,
                burn_engine=make_burn_engine(),
                profiler=profiler,
            ).start() as service:
                for row in segment_rows[:20]:
                    _post(service, "/v1/score", {"row": row})
                _get(service, "/models")

                status, body = _get(service, "/metrics")
                assert status == 200
                payload = json.loads(body)

                # 1. Traffic shows up in the rolling windows.
                window = payload["windows"]["POST /v1/score"]["1m"]
                assert window["count"] == 20
                assert window["p95"] is not None and window["p95"] > 0
                assert window["p95"] <= window["max"]

                # 2. The unmeetable SLO is burning; the sane one is not.
                rules = {
                    (r["rule"], r["endpoint"]): r
                    for r in payload["slo"]["rules"]
                }
                burning = rules[("max_p99_ms", "POST /v1/score")]
                assert burning["fast"] == {"total": 20, "bad": 20}
                # 100% bad on a 1% budget: burn rate 100x.
                assert burning["fast_burn_rate"] == 100.0
                assert burning["budget_remaining"] == 0.0
                quiet = rules[("max_error_rate", "POST /v1/score")]
                assert quiet["fast_burn_rate"] == 0.0
                assert quiet["budget_remaining"] == 1.0

                # 3. Both formats agree; the exposition validates.
                _, text = _get(service, "/metrics?format=prometheus")
                assert validate_exposition(text) > 0
                (burn_line,) = [
                    l for l in text.splitlines()
                    if l.startswith(
                        'repro_slo_burn_rate{slo="live-test",'
                        'rule="max_p99_ms",endpoint="POST /v1/score",'
                        'window="fast"}'
                    )
                ]
                assert float(burn_line.rsplit(" ", 1)[1]) == 100.0
                assert (
                    'repro_window_requests{endpoint="POST /v1/score"'
                    in text
                )
                assert "repro_profile_samples_total" in text

                # 4. The live profiler served a real profile.
                status, collapsed = _get(service, "/debug/profile")
                assert status == 200

                slowest = window["slowest_trace_id"]
                assert slowest is not None

        finally:
            profiler.stop()

        # 5. The slowest trace id joins its span waterfall: the trace
        # exists, is rooted at http.request for the scored endpoint,
        # and renders.
        spans = tracer.finished()
        trace = [s for s in spans if s.trace_id == slowest]
        assert trace, "slowest_trace_id not found among finished spans"
        roots = [s for s in trace if s.parent_id is None]
        assert [r.name for r in roots] == ["http.request"]
        assert roots[0].attrs["path"] == "/v1/score"
        (grouped,) = [
            g for g in group_traces(spans) if g[0].trace_id == slowest
        ]
        waterfall = render_waterfall(grouped)
        assert "http.request" in waterfall
