"""Tests for the versioned scorer registry."""

import json
import os
import shutil

import pytest

from repro.core.deployment import SCORER_FORMAT_VERSION
from repro.exceptions import ServingError
from repro.serving import ScorerRegistry


def _copy_artefact(model_dir, tmp_path, name="cp8.json"):
    target = tmp_path / "models"
    target.mkdir()
    shutil.copy(model_dir / name, target / name)
    return target


def _bump_mtime(path):
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestDiscovery:
    def test_refresh_discovers_artefacts(self, model_dir):
        registry = ScorerRegistry(model_dir)
        assert registry.refresh() == ["cp8"]
        assert registry.names() == ["cp8"]
        assert "cp8" in registry and len(registry) == 1

    def test_missing_directory_fails_loud(self, tmp_path):
        with pytest.raises(ServingError, match="does not exist"):
            ScorerRegistry(tmp_path / "nowhere")

    def test_refresh_is_idempotent(self, model_dir):
        registry = ScorerRegistry(model_dir)
        registry.refresh()
        assert registry.refresh() == []
        assert registry.n_loads == 1

    def test_entry_provenance(self, model_dir, serving_scorer):
        registry = ScorerRegistry(model_dir)
        registry.refresh()
        entry = registry.get("cp8")
        assert entry.key == f"cp8@v{SCORER_FORMAT_VERSION}"
        assert entry.version == SCORER_FORMAT_VERSION
        assert entry.checksum == serving_scorer.to_dict()["checksum"]
        described = entry.describe()
        assert described["threshold"] == 8
        assert described["inputs"] == list(serving_scorer.input_schema())


class TestLookup:
    def test_get_unknown_name_lists_available(self, model_dir):
        registry = ScorerRegistry(model_dir)
        with pytest.raises(ServingError, match="available: cp8"):
            registry.get("cp99")

    def test_get_loads_lazily(self, model_dir):
        # get() without a prior refresh() still finds the artefact.
        registry = ScorerRegistry(model_dir)
        assert registry.get("cp8").name == "cp8"

    def test_version_pin_mismatch(self, model_dir):
        registry = ScorerRegistry(model_dir)
        assert registry.get("cp8", version=SCORER_FORMAT_VERSION)
        with pytest.raises(ServingError, match="pinned v99"):
            registry.get("cp8", version=99)


class TestHotReload:
    def test_changed_file_is_reloaded(
        self, model_dir, tmp_path, serving_scorer
    ):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        before = registry.get("cp8")

        payload = serving_scorer.to_dict()
        payload["metadata"] = dict(payload["metadata"], revision=2)
        del payload["checksum"]  # re-derived below
        from repro.core.deployment import payload_checksum

        payload["checksum"] = payload_checksum(payload)
        path = target / "cp8.json"
        path.write_text(json.dumps(payload, allow_nan=True))
        _bump_mtime(path)

        after = registry.get("cp8")
        assert after.scorer.metadata["revision"] == 2
        assert after.loaded_at >= before.loaded_at
        assert registry.n_loads == 2

    def test_unchanged_file_is_not_reloaded(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        first = registry.get("cp8")
        assert registry.get("cp8") is first

    def test_deleted_file_drops_entry(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        registry.get("cp8")
        (target / "cp8.json").unlink()
        with pytest.raises(ServingError, match="removed"):
            registry.get("cp8")
        assert "cp8" not in registry


class TestValidation:
    def test_stale_format_version_names_file(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        path = target / "cp8.json"
        data = json.loads(path.read_text())
        data["format_version"] = 0
        path.write_text(json.dumps(data, allow_nan=True))
        with pytest.raises(ServingError, match=r"cp8\.json") as excinfo:
            ScorerRegistry(target).refresh()
        assert "format version 0" in str(excinfo.value)

    def test_checksum_mismatch_rejected(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        path = target / "cp8.json"
        data = json.loads(path.read_text())
        data["threshold"] = 4  # tamper without re-checksumming
        path.write_text(json.dumps(data, allow_nan=True))
        with pytest.raises(ServingError, match="checksum mismatch"):
            ScorerRegistry(target).refresh()

    def test_corrupt_json_rejected(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        (target / "cp8.json").write_text("{not json")
        with pytest.raises(ServingError, match="not valid JSON"):
            ScorerRegistry(target).refresh()
