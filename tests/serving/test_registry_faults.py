"""Fault injection: artefact corruption under a *running* registry.

The satellite scenarios: a deploy goes wrong mid-run — checksum
corruption, a truncated write, a rollback to a stale format version —
and the engine must keep serving the last-good scorer while counting
the failure in a typed ``/metrics`` counter.  Only artefacts that
never had a good version stay loud.
"""

import json
import os
import shutil
import urllib.request

import pytest

from repro.exceptions import ServingError
from repro.obs.prometheus import validate_exposition
from repro.serving import ScorerRegistry, ScoringService


def _copy_artefact(model_dir, tmp_path, name="cp8.json"):
    target = tmp_path / "models"
    target.mkdir()
    shutil.copy(model_dir / name, target / name)
    return target


def _bump_mtime(path):
    stat = path.stat()
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


def _corrupt_checksum(path):
    data = json.loads(path.read_text())
    data["threshold"] = 4  # tamper without re-checksumming
    path.write_text(json.dumps(data, allow_nan=True))
    _bump_mtime(path)


def _truncate(path):
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    _bump_mtime(path)


def _rollback_version(path):
    data = json.loads(path.read_text())
    data["format_version"] = 0
    path.write_text(json.dumps(data, allow_nan=True))
    _bump_mtime(path)


class TestKeepLastGood:
    @pytest.mark.parametrize(
        "corrupt, error_type",
        [
            (_corrupt_checksum, "checksum_mismatch"),
            (_truncate, "invalid_json"),
            (_rollback_version, "format_version"),
        ],
        ids=["checksum", "truncated", "rollback"],
    )
    def test_corruption_mid_run_keeps_serving(
        self, model_dir, tmp_path, corrupt, error_type
    ):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        good = registry.get("cp8")

        corrupt(target / "cp8.json")

        # The lookup survives and serves the last-good entry...
        entry = registry.get("cp8")
        assert entry is good
        assert entry.scorer.threshold == 8
        # ...with the failure typed and counted.
        assert registry.reload_errors == {("cp8", error_type): 1}
        assert registry.stats()["degraded"] == ["cp8"]

    def test_bad_file_parsed_once_not_per_request(
        self, model_dir, tmp_path
    ):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        registry.get("cp8")
        _corrupt_checksum(target / "cp8.json")
        for _ in range(5):
            registry.get("cp8")
        # One failed load attempt, not five: the bad stat is pinned.
        assert registry.reload_errors[("cp8", "checksum_mismatch")] == 1

    def test_recovery_when_good_file_returns(
        self, model_dir, tmp_path
    ):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        registry.get("cp8")
        path = target / "cp8.json"
        good_bytes = path.read_bytes()
        _truncate(path)
        registry.get("cp8")
        assert registry.stats()["degraded"] == ["cp8"]

        path.write_bytes(good_bytes)
        _bump_mtime(path)
        entry = registry.get("cp8")
        assert entry.scorer.threshold == 8
        assert registry.stats()["degraded"] == []
        assert registry.n_loads == 2  # initial + recovery

    def test_refresh_keeps_last_good_too(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        registry = ScorerRegistry(target)
        registry.refresh()
        _rollback_version(target / "cp8.json")
        assert registry.refresh() == []  # nothing newly loaded
        assert registry.get("cp8").scorer.threshold == 8
        assert registry.reload_errors == {("cp8", "format_version"): 1}

    def test_new_artefact_failures_stay_loud(self, model_dir, tmp_path):
        target = _copy_artefact(model_dir, tmp_path)
        (target / "broken.json").write_text("{not json")
        registry = ScorerRegistry(target)
        with pytest.raises(ServingError, match="broken"):
            registry.refresh()


class TestServiceUnderFault:
    def test_engine_serves_and_metrics_count_the_fault(
        self, model_dir, tmp_path, segment_rows
    ):
        target = _copy_artefact(model_dir, tmp_path)
        with ScoringService(target, port=0).start() as service:

            def post_score():
                request = urllib.request.Request(
                    service.url + "/v1/score",
                    data=json.dumps({"row": segment_rows[0]}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=30) as r:
                    return json.loads(r.read())

            before = post_score()
            _corrupt_checksum(target / "cp8.json")
            after = post_score()
            # Same model, same score: the corrupt deploy never reached
            # the engine.
            assert after["threshold"] == before["threshold"] == 8
            assert after["probability"] == before["probability"]

            with urllib.request.urlopen(
                service.url + "/metrics", timeout=10
            ) as r:
                metrics = json.loads(r.read())
            assert metrics["registry"]["reload_errors"] == {
                "cp8/checksum_mismatch": 1
            }
            assert metrics["registry"]["degraded"] == ["cp8"]

            with urllib.request.urlopen(
                service.url + "/metrics?format=prometheus", timeout=10
            ) as r:
                text = r.read().decode()
            assert validate_exposition(text) > 0
            assert (
                'repro_registry_reload_errors_total{model="cp8",'
                'error_type="checksum_mismatch"} 1'
                in text.splitlines()
            )
            assert "repro_registry_degraded_models 1" in text.splitlines()
