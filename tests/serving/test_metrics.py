"""Tests for per-endpoint request metrics."""

import threading

import pytest

from repro.serving import RequestMetrics


class TestObserve:
    def test_counts_per_endpoint(self):
        metrics = RequestMetrics()
        for _ in range(3):
            metrics.observe("POST /v1/score", 0.01)
        metrics.observe("GET /healthz", 0.001)
        assert metrics.request_count("POST /v1/score") == 3
        assert metrics.request_count("GET /healthz") == 1
        assert metrics.request_count() == 4

    def test_error_counter(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.01)
        metrics.observe("POST /v1/score", 0.01, error=True)
        assert metrics.error_count("POST /v1/score") == 1
        assert metrics.error_count() == 1

    def test_timed_context_manager(self):
        metrics = RequestMetrics()
        with metrics.timed("GET /models"):
            pass
        assert metrics.request_count("GET /models") == 1
        assert metrics.error_count("GET /models") == 0

    def test_timed_counts_exceptions_as_errors(self):
        metrics = RequestMetrics()
        with pytest.raises(ValueError):
            with metrics.timed("GET /models"):
                raise ValueError("boom")
        assert metrics.error_count("GET /models") == 1

    def test_thread_safety(self):
        metrics = RequestMetrics()

        def hammer():
            for _ in range(200):
                metrics.observe("POST /v1/score", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.request_count("POST /v1/score") == 1600


class TestSummaries:
    def test_percentiles_ordered(self):
        metrics = RequestMetrics()
        for ms in range(1, 101):
            metrics.observe("POST /v1/score", ms / 1000.0)
        record = metrics.summary()["POST /v1/score"]
        assert record["count"] == 100
        assert record["p50"] == 0.050
        assert record["p95"] == 0.095
        assert record["p99"] == 0.099
        assert record["max"] == 0.100
        assert record["p50"] <= record["p95"] <= record["p99"] <= record["max"]

    def test_to_stage_timings_roundtrip(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.02)
        metrics.observe("POST /v1/score", 0.04)
        timings = metrics.to_stage_timings()
        assert timings.backend == "serving"
        stage = timings.stage("POST /v1/score")
        assert stage.n_tasks == 2
        assert stage.wall_seconds == pytest.approx(0.06)

    def test_render_contains_endpoints(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.02)
        metrics.observe("GET /healthz", 0.001)
        text = metrics.render()
        assert "POST /v1/score" in text
        assert "p95 ms" in text
