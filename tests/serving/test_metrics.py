"""Tests for per-endpoint request metrics."""

import threading

import pytest

from repro.serving import RequestMetrics
from repro.serving.metrics import BUCKET_BOUNDS, RESERVOIR_SIZE


class TestObserve:
    def test_counts_per_endpoint(self):
        metrics = RequestMetrics()
        for _ in range(3):
            metrics.observe("POST /v1/score", 0.01)
        metrics.observe("GET /healthz", 0.001)
        assert metrics.request_count("POST /v1/score") == 3
        assert metrics.request_count("GET /healthz") == 1
        assert metrics.request_count() == 4

    def test_error_counter(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.01)
        metrics.observe("POST /v1/score", 0.01, error=True)
        assert metrics.error_count("POST /v1/score") == 1
        assert metrics.error_count() == 1

    def test_timed_context_manager(self):
        metrics = RequestMetrics()
        with metrics.timed("GET /models"):
            pass
        assert metrics.request_count("GET /models") == 1
        assert metrics.error_count("GET /models") == 0

    def test_timed_counts_exceptions_as_errors(self):
        metrics = RequestMetrics()
        with pytest.raises(ValueError):
            with metrics.timed("GET /models"):
                raise ValueError("boom")
        assert metrics.error_count("GET /models") == 1

    def test_thread_safety(self):
        metrics = RequestMetrics()

        def hammer():
            for _ in range(200):
                metrics.observe("POST /v1/score", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.request_count("POST /v1/score") == 1600


class TestSummaries:
    def test_percentiles_ordered(self):
        metrics = RequestMetrics()
        for ms in range(1, 101):
            metrics.observe("POST /v1/score", ms / 1000.0)
        record = metrics.summary()["POST /v1/score"]
        assert record["count"] == 100
        assert record["p50"] == 0.050
        assert record["p95"] == 0.095
        assert record["p99"] == 0.099
        assert record["max"] == 0.100
        assert record["p50"] <= record["p95"] <= record["p99"] <= record["max"]

    def test_to_stage_timings_roundtrip(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.02)
        metrics.observe("POST /v1/score", 0.04)
        timings = metrics.to_stage_timings()
        assert timings.backend == "serving"
        stage = timings.stage("POST /v1/score")
        assert stage.n_tasks == 2
        assert stage.wall_seconds == pytest.approx(0.06)

    def test_render_contains_endpoints(self):
        metrics = RequestMetrics()
        metrics.observe("POST /v1/score", 0.02)
        metrics.observe("GET /healthz", 0.001)
        text = metrics.render()
        assert "POST /v1/score" in text
        assert "p95 ms" in text


class TestBoundedMemory:
    """The unbounded-memory fix: storage stays capped, counters exact."""

    def test_storage_is_bounded_and_counters_stay_exact(self):
        metrics = RequestMetrics()
        n = 3 * RESERVOIR_SIZE
        for i in range(n):
            metrics.observe("POST /v1/score", (i % 100 + 1) / 1000.0)
        record = metrics._endpoints["POST /v1/score"]
        assert len(record.samples) == RESERVOIR_SIZE
        summary = metrics.summary()["POST /v1/score"]
        assert summary["count"] == n
        assert summary["max"] == 0.100
        # Reservoir percentiles stay inside the observed value range
        # and ordered, even though they are sampled.
        assert 0.001 <= summary["p50"] <= summary["p95"] <= 0.100

    def test_percentiles_exact_below_reservoir_size(self):
        metrics = RequestMetrics()
        for ms in range(1, RESERVOIR_SIZE + 1):
            metrics.observe("e", ms / 1000.0)
        record = metrics._endpoints["e"]
        assert len(record.samples) == RESERVOIR_SIZE
        assert metrics.summary()["e"]["p50"] == RESERVOIR_SIZE / 2 / 1000.0

    def test_reservoir_is_deterministic(self):
        def fill():
            metrics = RequestMetrics()
            for i in range(2000):
                metrics.observe("e", (i % 37) / 1000.0)
            return list(metrics._endpoints["e"].samples)

        assert fill() == fill()


class TestRecordError:
    def test_counts_without_a_latency_observation(self):
        metrics = RequestMetrics()
        metrics.observe("GET /healthz", 0.001)
        metrics.record_error("GET /healthz", "BrokenPipeError")
        summary = metrics.summary()["GET /healthz"]
        assert summary["count"] == 1
        assert summary["errors"] == 1
        assert summary["error_types"] == {"BrokenPipeError": 1}

    def test_errors_may_exceed_count(self):
        metrics = RequestMetrics()
        metrics.record_error("GET /healthz", "TypeError")
        assert metrics.error_count("GET /healthz") == 1
        assert metrics.request_count("GET /healthz") == 0


class TestPrometheusSnapshot:
    def test_buckets_are_cumulative(self):
        metrics = RequestMetrics()
        for seconds in (0.0005, 0.002, 0.002, 0.03, 99.0):
            metrics.observe("e", seconds)
        snapshot = metrics.prometheus_snapshot()["e"]
        assert snapshot["count"] == 5
        assert snapshot["sum_seconds"] == pytest.approx(99.0345)
        bounds = [bound for bound, _ in snapshot["buckets"]]
        assert bounds == list(BUCKET_BOUNDS)
        counts = [n for _, n in snapshot["buckets"]]
        assert counts == sorted(counts)
        # 99.0 s lands beyond every finite bound: only the renderer's
        # +Inf bucket (== count) covers it.
        assert counts[-1] == 4

    def test_error_types_included(self):
        metrics = RequestMetrics()
        metrics.observe("e", 0.01, error=True, error_type="ServingError")
        snapshot = metrics.prometheus_snapshot()["e"]
        assert snapshot["errors"] == 1
        assert snapshot["error_types"] == {"ServingError": 1}
