"""Property-based tests: reservoir percentiles and arrival schedules.

Hypothesis drives :class:`RequestMetrics` with arbitrary latency
streams and checks the invariants the load-test harness leans on:

* below ``RESERVOIR_SIZE`` observations the reservoir holds *every*
  sample, so percentiles are exactly nearest-rank over the full data;
* at any count, percentiles are monotone across quantiles, bounded by
  the observed min/max, and drawn from the observed values;
* the exact counters (count / mean / max) never degrade, whatever the
  reservoir does.

Plus the open-loop arrival properties (interarrival gaps are
non-negative, schedules deterministic in the seed, offsets monotone)
and the windowed-telemetry containment property: whatever the clock
does, a rolling window never reports more than the cumulative
counters.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadtest import interarrival_times, start_offsets
from repro.serving.metrics import RESERVOIR_SIZE, RequestMetrics

latencies = st.floats(
    min_value=0.0,
    max_value=60.0,
    allow_nan=False,
    allow_infinity=False,
)


def _nearest_rank(values, q):
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


class TestReservoirPercentiles:
    @given(
        samples=st.lists(latencies, min_size=1, max_size=RESERVOIR_SIZE),
        q=st.sampled_from([50, 95, 99]),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_below_reservoir_size(self, samples, q):
        metrics = RequestMetrics()
        for seconds in samples:
            metrics.observe("e", seconds)
        summary = metrics.summary()["e"]
        assert summary[f"p{q}"] == _nearest_rank(samples, q)

    @given(
        samples=st.lists(
            latencies, min_size=1, max_size=2 * RESERVOIR_SIZE
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_and_bounded_for_any_count(self, samples):
        metrics = RequestMetrics()
        for seconds in samples:
            metrics.observe("e", seconds)
        summary = metrics.summary()["e"]
        p50, p95, p99 = summary["p50"], summary["p95"], summary["p99"]
        # Quantile monotonicity holds whatever the reservoir sampled.
        assert p50 <= p95 <= p99
        # Every percentile is one of the observed values, inside the
        # observed range.
        assert min(samples) <= p50 and p99 <= max(samples)
        observed = set(samples)
        assert {p50, p95, p99} <= observed

    @given(
        samples=st.lists(
            latencies, min_size=1, max_size=2 * RESERVOIR_SIZE
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_counters_never_degrade(self, samples):
        metrics = RequestMetrics()
        for seconds in samples:
            metrics.observe("e", seconds)
        summary = metrics.summary()["e"]
        assert summary["count"] == len(samples)
        assert summary["max"] == max(samples)
        assert math.isclose(
            summary["mean"],
            sum(samples) / len(samples),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


class TestWindowedContainment:
    @given(
        events=st.lists(
            st.tuples(
                latencies,
                st.booleans(),  # error flag
                st.floats(  # clock advance after the observation
                    min_value=0.0,
                    max_value=7200.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=0,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_window_counts_never_exceed_cumulative(self, events):
        now = [100_000.0]
        metrics = RequestMetrics(clock=lambda: now[0])
        for seconds, error, advance in events:
            metrics.observe("e", seconds, error=error)
            now[0] += advance
        cumulative = metrics.summary().get(
            "e", {"count": 0, "errors": 0, "max": 0.0}
        )
        for window in metrics.windowed_summary().get("e", {}).values():
            # A rolling window can only ever see a subset of history.
            assert window["count"] <= cumulative["count"]
            assert window["errors"] <= cumulative["errors"]
            if window["max"] is not None:
                assert window["max"] <= cumulative["max"]
            if window["count"]:
                assert window["p50"] <= window["p95"] <= window["p99"]
                assert window["p99"] <= window["max"]


class TestArrivalProperties:
    @given(
        kind=st.sampled_from(["fixed", "poisson"]),
        rate=st.floats(min_value=0.5, max_value=5000.0),
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_gaps_nonnegative_and_deterministic(self, kind, rate, n, seed):
        a = interarrival_times(kind, rate, n, seed)
        b = interarrival_times(kind, rate, n, seed)
        assert (a >= 0).all()
        assert (a == b).all()

    @given(
        kind=st.sampled_from(["fixed", "poisson"]),
        rate=st.floats(min_value=0.5, max_value=5000.0),
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_offsets_start_at_zero_and_are_monotone(
        self, kind, rate, n, seed
    ):
        offsets = start_offsets(kind, rate, n, seed)
        assert offsets[0] == 0.0
        assert all(
            offsets[i] <= offsets[i + 1] for i in range(len(offsets) - 1)
        )
