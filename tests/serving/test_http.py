"""In-process tests of the HTTP scoring service.

The acceptance contract of the serving subsystem is exercised here:
``POST /v1/score`` must return exactly the probabilities that the
``repro-study score`` CLI prints for the same segments, and concurrent
load must be observably micro-batched (model passes with batch > 1).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.datatable import write_csv
from repro.exceptions import ServingError
from repro.serving import ScoringService


@pytest.fixture()
def service(model_dir):
    with ScoringService(model_dir, port=0, max_wait_ms=25.0).start() as svc:
        yield svc


def _get(service, path):
    with urllib.request.urlopen(service.url + path, timeout=10) as response:
        return json.loads(response.read())


def _post(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _post_error(service, path, payload) -> tuple[int, dict]:
    try:
        _post(service, path, payload)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


class TestEndpoints:
    def test_healthz(self, service):
        body = _get(service, "/healthz")
        assert body["status"] == "ok"
        assert body["models"] == ["cp8"]
        assert body["uptime_seconds"] >= 0

    def test_models_lists_artefacts(self, service, serving_scorer):
        body = _get(service, "/models")
        (model,) = body["models"]
        assert model["name"] == "cp8"
        assert model["key"] == "cp8@v1"
        assert model["checksum"] == serving_scorer.to_dict()["checksum"]
        assert model["threshold"] == 8
        assert set(model["validation"]) == {"mcpv", "kappa", "roc_area"}

    def test_score_single(self, service, serving_scorer, segment_rows):
        body = _post(service, "/v1/score", {"row": segment_rows[0]})
        assert body["model"] == "cp8"
        assert body["threshold"] == 8
        assert 0.0 <= body["probability"] <= 1.0
        assert body["crash_prone"] == (body["probability"] >= 0.5)

    def test_score_batch(self, service, segment_rows):
        body = _post(
            service, "/v1/score/batch", {"rows": segment_rows[:8]}
        )
        assert body["count"] == 8
        assert len(body["results"]) == 8

    def test_custom_cutoff(self, service, segment_rows):
        strict = _post(
            service, "/v1/score", {"row": segment_rows[0], "cutoff": 1.0}
        )
        lax = _post(
            service, "/v1/score", {"row": segment_rows[0], "cutoff": 0.0}
        )
        assert strict["crash_prone"] is False
        assert lax["crash_prone"] is True

    def test_metrics_record_requests(self, service, segment_rows):
        _post(service, "/v1/score", {"row": segment_rows[0]})
        _get(service, "/healthz")
        body = _get(service, "/metrics")
        assert body["endpoints"]["POST /v1/score"]["count"] == 1
        assert body["endpoints"]["GET /healthz"]["count"] == 1
        record = body["endpoints"]["POST /v1/score"]
        assert record["p50"] <= record["p99"]
        (engine_stats,) = body["engines"].values()
        assert engine_stats["rows_scored"] == 1

    def test_default_model_when_single(self, service, segment_rows):
        # No "model" key: the only registered scorer is implied.
        body = _post(service, "/v1/score", {"row": segment_rows[0]})
        assert body["model"] == "cp8"


class TestErrors:
    def test_unknown_route_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, "/v2/nothing")
        assert excinfo.value.code == 404

    def test_unknown_model_400(self, service, segment_rows):
        code, body = _post_error(
            service, "/v1/score", {"model": "cp99", "row": segment_rows[0]}
        )
        assert code == 400
        assert "cp99" in body["error"] and "cp8" in body["error"]

    def test_invalid_row_400_names_columns(self, service):
        code, body = _post_error(service, "/v1/score", {"row": {"x": 1}})
        assert code == 400
        assert "missing input column" in body["error"]

    def test_missing_row_400(self, service):
        code, body = _post_error(service, "/v1/score", {})
        assert code == 400
        assert "'row'" in body["error"]

    def test_invalid_json_400(self, service):
        request = urllib.request.Request(
            service.url + "/v1/score",
            data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_cutoff_400(self, service, segment_rows):
        code, body = _post_error(
            service,
            "/v1/score",
            {"row": segment_rows[0], "cutoff": 7},
        )
        assert code == 400 and "cutoff" in body["error"]

    def test_oversized_body_413(self, model_dir, segment_rows):
        with ScoringService(
            model_dir, port=0, max_body_bytes=2048
        ).start() as service:
            # Far past the limit: ~60 rows of ~10 columns of JSON.
            code, body = _post_error(
                service, "/v1/score/batch", {"rows": segment_rows}
            )
            assert code == 413
            assert "exceeds" in body["error"] and "2048" in body["error"]
            assert service.metrics.error_count("POST /v1/score/batch") == 1
            # The connection-refusing path must not wedge the service.
            ok = _post(service, "/v1/score", {"row": segment_rows[0]})
            assert 0.0 <= ok["probability"] <= 1.0

    def test_body_limit_zero_disables_the_check(self, model_dir, segment_rows):
        with ScoringService(
            model_dir, port=0, max_body_bytes=0
        ).start() as service:
            body = _post(service, "/v1/score/batch", {"rows": segment_rows})
            assert body["count"] == len(segment_rows)

    def test_negative_body_limit_rejected(self, model_dir):
        with pytest.raises(ServingError, match="max_body_bytes"):
            ScoringService(model_dir, max_body_bytes=-1)

    def test_errors_counted_in_metrics(self, service):
        _post_error(service, "/v1/score", {})
        assert service.metrics.error_count("POST /v1/score") == 1

    def test_double_start_rejected(self, service):
        with pytest.raises(ServingError, match="already running"):
            service.start()


class TestEndToEndParity:
    def test_http_scores_match_cli_scores(
        self, model_dir, small_dataset, serving_scorer, tmp_path, capsys
    ):
        """Acceptance: POST /v1/score == `repro-study score` probabilities."""
        segments_csv = tmp_path / "segments.csv"
        write_csv(small_dataset.segment_table.head(25), segments_csv)
        assert main(
            [
                "score",
                str(model_dir / "cp8.json"),
                str(segments_csv),
                "--top", "25",
                "--json",
            ]
        ) == 0
        cli = json.loads(capsys.readouterr().out)
        by_segment = {
            r["segment_id"]: r["probability"] for r in cli["results"]
        }
        assert len(by_segment) == 25

        expected_inputs = list(serving_scorer.input_schema())
        with ScoringService(model_dir, port=0).start() as service:
            for i in range(25):
                row = small_dataset.segment_table.row(i)
                body = _post(
                    service,
                    "/v1/score",
                    {"row": {k: row[k] for k in expected_inputs}},
                )
                assert body["probability"] == by_segment[row["segment_id"]]

    def test_concurrent_load_is_micro_batched(self, model_dir, segment_rows):
        """Acceptance: recorded batch sizes exceed 1 under concurrency."""
        with ScoringService(
            model_dir, port=0, max_batch=16, max_wait_ms=100.0
        ).start() as service:
            results: list[dict] = []
            errors: list[Exception] = []

            def call(i: int) -> None:
                try:
                    results.append(
                        _post(
                            service,
                            "/v1/score/batch",
                            {"rows": segment_rows[3 * i : 3 * i + 3]},
                        )
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 12
            engine = service.engine("cp8")
            assert max(engine.batch_sizes) > 1
            assert sum(engine.batch_sizes) == 36


class TestShardedBatchThroughService:
    def test_sharded_batch_equals_unsharded_element_for_element(
        self, model_dir, segment_rows
    ):
        """Acceptance: /v1/score/batch answers are byte-identical
        whether or not the request sharded across the process pool."""
        payload = {"rows": segment_rows}
        with ScoringService(model_dir, port=0).start() as service:
            unsharded = _post(service, "/v1/score/batch", payload)
        with ScoringService(
            model_dir, port=0, bulk_jobs=3, bulk_threshold=10
        ).start() as service:
            sharded = _post(service, "/v1/score/batch", payload)
            engine = service.engine("cp8")
            assert engine.bulk_batches == 1
            assert engine.bulk_rows == len(segment_rows)
        assert sharded["count"] == unsharded["count"] == len(segment_rows)
        assert sharded["results"] == unsharded["results"]

    def test_below_threshold_requests_do_not_shard(
        self, model_dir, segment_rows
    ):
        with ScoringService(
            model_dir, port=0, bulk_jobs=2, bulk_threshold=1000
        ).start() as service:
            body = _post(
                service, "/v1/score/batch", {"rows": segment_rows[:6]}
            )
            assert body["count"] == 6
            assert service.engine("cp8").bulk_batches == 0


class TestHotReloadThroughService:
    def test_rewritten_artefact_swaps_engine(
        self, model_dir, serving_scorer, tmp_path, segment_rows
    ):
        import os
        import shutil

        deploy = tmp_path / "deploy"
        deploy.mkdir()
        shutil.copy(model_dir / "cp8.json", deploy / "cp8.json")
        with ScoringService(deploy, port=0, max_wait_ms=5.0).start() as service:
            first = _post(service, "/v1/score", {"row": segment_rows[0]})
            old_engine = service.engine("cp8")

            payload = serving_scorer.to_dict()
            payload["metadata"] = dict(payload["metadata"], revision=2)
            del payload["checksum"]
            from repro.core.deployment import payload_checksum

            payload["checksum"] = payload_checksum(payload)
            path = deploy / "cp8.json"
            path.write_text(json.dumps(payload, allow_nan=True))
            stat = path.stat()
            os.utime(
                path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
            )

            second = _post(service, "/v1/score", {"row": segment_rows[0]})
            new_engine = service.engine("cp8")
            assert new_engine is not old_engine
            assert new_engine.scorer.metadata["revision"] == 2
            # Same model weights → same probability either side of reload.
            assert second["probability"] == first["probability"]
