"""Tests for naive Bayes, logistic regression, neural network and M5."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.evaluation import BinaryConfusion, accuracy, r_squared, roc_auc
from repro.exceptions import FitError, NotFittedError
from repro.mining import (
    LogisticRegressionClassifier,
    M5ModelTree,
    NaiveBayesClassifier,
    NeuralNetworkClassifier,
)
from tests.conftest import make_classification_table


@pytest.fixture()
def data():
    return make_classification_table(900, seed=17)


class TestNaiveBayes:
    def test_learns_signal(self, data):
        table, y = data
        model = NaiveBayesClassifier().fit(table, "label")
        assert roc_auc(y, model.predict_proba(table)) > 0.85

    def test_probabilities_normalised(self, data):
        table, _y = data
        model = NaiveBayesClassifier().fit(table, "label")
        probabilities = model.predict_proba(table)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_single_class_rejected(self):
        table = DataTable(
            [
                NumericColumn("x", [1.0, 2.0, 3.0]),
                CategoricalColumn("label", ["n", "n", "n"], ("n", "p")),
            ]
        )
        with pytest.raises(FitError):
            NaiveBayesClassifier().fit(table, "label")

    def test_missing_values_skipped(self, data):
        table, y = data
        holed = table.with_column(
            NumericColumn(
                "a",
                [
                    None if i % 3 == 0 else v
                    for i, v in enumerate(table.numeric("a"))
                ],
            )
        )
        model = NaiveBayesClassifier().fit(holed, "label")
        assert roc_auc(y, model.predict_proba(holed)) > 0.75

    def test_laplace_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(laplace=0.0)

    def test_gaussian_separation_sanity(self):
        gen = np.random.default_rng(1)
        x = np.concatenate([gen.normal(0, 1, 200), gen.normal(4, 1, 200)])
        labels = ["n"] * 200 + ["p"] * 200
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                CategoricalColumn("label", labels, ("n", "p")),
            ]
        )
        model = NaiveBayesClassifier().fit(table, "label")
        probe = DataTable(
            [
                NumericColumn("x", [0.0, 4.0]),
                CategoricalColumn("label", ["n", "p"], ("n", "p")),
            ]
        )
        p = model.predict_proba(probe)
        assert p[0] < 0.1 and p[1] > 0.9


class TestLogisticRegression:
    def test_learns_signal(self, data):
        table, y = data
        model = LogisticRegressionClassifier().fit(table, "label")
        assert roc_auc(y, model.predict_proba(table)) > 0.85

    def test_coefficients_exposed(self, data):
        table, _y = data
        model = LogisticRegressionClassifier().fit(table, "label")
        coef = model.coefficients
        assert "intercept" in coef
        assert "a" in coef
        # 'a' drives the label upward in the fixture.
        assert coef["a"] > 0

    def test_converges(self, data):
        table, _y = data
        model = LogisticRegressionClassifier().fit(table, "label")
        assert model.n_iterations < model.max_iterations

    def test_separable_data_stabilised_by_ridge(self):
        x = np.linspace(-1, 1, 100)
        labels = ["p" if v > 0 else "n" for v in x]
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                CategoricalColumn("label", labels, ("n", "p")),
            ]
        )
        model = LogisticRegressionClassifier(ridge=1.0).fit(table, "label")
        probabilities = model.predict_proba(table)
        assert np.isfinite(probabilities).all()

    def test_predict_before_fit(self, data):
        table, _y = data
        with pytest.raises(NotFittedError):
            LogisticRegressionClassifier().predict_proba(table)

    def test_single_class_rejected(self):
        table = DataTable(
            [
                NumericColumn("x", [1.0, 2.0]),
                CategoricalColumn("label", ["n", "n"], ("n", "p")),
            ]
        )
        with pytest.raises(FitError):
            LogisticRegressionClassifier().fit(table, "label")


class TestNeuralNetwork:
    def test_learns_signal(self, data):
        table, y = data
        model = NeuralNetworkClassifier(epochs=200, seed=1).fit(
            table, "label"
        )
        assert roc_auc(y, model.predict_proba(table)) > 0.85

    def test_loss_decreases(self, data):
        table, _y = data
        model = NeuralNetworkClassifier(epochs=100, seed=1).fit(
            table, "label"
        )
        assert model.loss_history[-1] < model.loss_history[0]

    def test_deterministic_given_seed(self, data):
        table, _y = data
        a = NeuralNetworkClassifier(epochs=50, seed=3).fit(table, "label")
        b = NeuralNetworkClassifier(epochs=50, seed=3).fit(table, "label")
        assert np.array_equal(a.predict_proba(table), b.predict_proba(table))

    def test_learns_xor_nonlinearity(self):
        gen = np.random.default_rng(5)
        a = gen.choice([-1.0, 1.0], 600)
        b = gen.choice([-1.0, 1.0], 600)
        y = ((a * b) > 0).astype(int)
        table = DataTable(
            [
                NumericColumn.from_array("a", a + gen.normal(0, 0.1, 600)),
                NumericColumn.from_array("b", b + gen.normal(0, 0.1, 600)),
                CategoricalColumn(
                    "label", ["p" if v else "n" for v in y], ("n", "p")
                ),
            ]
        )
        model = NeuralNetworkClassifier(
            hidden_units=8, epochs=500, learning_rate=0.3, seed=2
        ).fit(table, "label")
        cm = BinaryConfusion.from_scores(y, model.predict_proba(table))
        assert accuracy(cm) > 0.9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NeuralNetworkClassifier(hidden_units=0)


class TestM5ModelTree:
    def make_piecewise_linear(self, n=900, seed=4):
        gen = np.random.default_rng(seed)
        x = gen.uniform(-2, 2, n)
        w = gen.uniform(-2, 2, n)
        y = np.where(x > 0, 3 + 2 * w, -3 - 1 * w) + gen.normal(0, 0.2, n)
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                NumericColumn.from_array("w", w),
                NumericColumn.from_array("y", y),
            ]
        )
        return table, y

    def test_beats_constant_leaves_on_piecewise_linear(self):
        table, y = self.make_piecewise_linear()
        from repro.mining import RegressionTree, TreeConfig

        m5 = M5ModelTree(TreeConfig(max_leaves=4, min_leaf=25, min_split=60))
        m5.fit(table, "y")
        stump = RegressionTree(
            TreeConfig(max_leaves=4, min_leaf=25, min_split=60)
        ).fit(table, "y")
        m5_r2 = r_squared(y, m5.predict(table))
        stump_r2 = r_squared(y, stump.predict(table))
        assert m5_r2 > stump_r2
        assert m5_r2 > 0.9

    def test_missing_values_at_predict(self):
        table, _y = self.make_piecewise_linear(300)
        model = M5ModelTree().fit(table, "y")
        holed = table.with_column(NumericColumn("w", [None] * 300))
        predictions = model.predict(holed)
        assert np.isfinite(predictions).all()

    def test_smoothing_zero_allowed(self):
        table, y = self.make_piecewise_linear(400)
        model = M5ModelTree(smoothing=0.0).fit(table, "y")
        assert r_squared(y, model.predict(table)) > 0.8
