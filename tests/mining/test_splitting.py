"""Tests for the chi-square / F-test split search, cross-checked
against scipy reference implementations."""

import numpy as np
import pytest
from scipy import stats

from repro.mining.tree.splitting import (
    best_categorical_split_chi2,
    best_categorical_split_f,
    best_numeric_split_chi2,
    best_numeric_split_f,
    chi_square_2x2,
    chi_square_table,
    f_statistic,
)


class TestChiSquare2x2:
    def test_matches_scipy(self):
        table = np.array([[30, 10], [12, 28]])
        ours = float(chi_square_2x2(30, 10, 12, 28))
        expected = stats.chi2_contingency(table, correction=False).statistic
        assert ours == pytest.approx(expected)

    def test_vectorised(self):
        a = np.array([30, 5])
        b = np.array([10, 35])
        c = np.array([12, 20])
        d = np.array([28, 20])
        values = chi_square_2x2(a, b, c, d)
        assert values.shape == (2,)
        assert values[0] == pytest.approx(
            float(chi_square_2x2(30, 10, 12, 28))
        )

    def test_degenerate_margin_is_zero(self):
        assert float(chi_square_2x2(0, 0, 10, 20)) == 0.0

    def test_rxc_table_matches_scipy(self):
        table = np.array([[12, 30], [40, 8], [22, 22]])
        chi2, p, dof = chi_square_table(table)
        expected = stats.chi2_contingency(table, correction=False)
        assert chi2 == pytest.approx(expected.statistic)
        assert p == pytest.approx(expected.pvalue)
        assert dof == expected.dof


class TestFStatistic:
    def test_matches_scipy_oneway(self, rng):
        a = rng.normal(0, 1, 40)
        b = rng.normal(1, 1, 60)
        y = np.concatenate([a, b])
        f, df1, df2 = f_statistic(
            np.array([a.sum(), b.sum()]),
            np.array([40.0, 60.0]),
            float((y**2).sum()),
            float(y.sum()),
            100,
        )
        expected = stats.f_oneway(a, b).statistic
        assert float(f) == pytest.approx(expected)
        assert (df1, df2) == (1, 98)


class TestNumericChi2Split:
    def test_finds_true_threshold(self, rng):
        x = rng.uniform(0, 1, 800)
        y = (x > 0.6).astype(int)
        split = best_numeric_split_chi2("x", x, y, min_leaf=20)
        assert split is not None
        assert split.threshold == pytest.approx(0.6, abs=0.03)
        assert split.p_value < 1e-10
        assert split.is_numeric

    def test_no_signal_large_p(self, rng):
        x = rng.uniform(0, 1, 300)
        y = rng.integers(0, 2, 300)
        split = best_numeric_split_chi2("x", x, y, min_leaf=20)
        assert split is None or split.p_value > 1e-4

    def test_min_leaf_respected(self, rng):
        x = rng.uniform(0, 1, 30)
        y = (x > 0.5).astype(int)
        assert best_numeric_split_chi2("x", x, y, min_leaf=20) is None

    def test_missing_branch_flag(self, rng):
        x = rng.uniform(0, 1, 200)
        x[:50] = np.nan
        y = (np.nan_to_num(x, nan=1.0) > 0.5).astype(int)
        split = best_numeric_split_chi2("x", x, y, min_leaf=25)
        assert split is not None
        assert split.has_missing_branch

    def test_bonferroni_inflates_p(self, rng):
        x = rng.uniform(0, 1, 400)
        y = (x > 0.5).astype(int)
        adjusted = best_numeric_split_chi2("x", x, y, 20, bonferroni=True)
        raw = best_numeric_split_chi2("x", x, y, 20, bonferroni=False)
        assert adjusted.p_value >= raw.p_value

    def test_constant_feature_none(self):
        x = np.ones(100)
        y = np.array([0, 1] * 50)
        assert best_numeric_split_chi2("x", x, y, min_leaf=10) is None


class TestNumericFSplit:
    def test_finds_true_threshold(self, rng):
        x = rng.uniform(0, 1, 800)
        y = np.where(x > 0.4, 3.0, 0.0) + rng.normal(0, 0.2, 800)
        split = best_numeric_split_f("x", x, y, min_leaf=20)
        assert split is not None
        assert split.threshold == pytest.approx(0.4, abs=0.03)
        assert split.p_value < 1e-10

    def test_candidate_cap(self, rng):
        x = rng.uniform(0, 1, 2000)
        y = x * 2.0
        split = best_numeric_split_f("x", x, y, 20, max_candidates=16)
        assert split is not None
        assert split.n_candidates <= 16


class TestCategoricalChi2Split:
    def test_groups_by_rate(self, rng):
        codes = rng.integers(0, 3, 900)
        probs = np.array([0.1, 0.12, 0.9])[codes]
        y = (rng.random(900) < probs).astype(int)
        split = best_categorical_split_chi2("c", codes, 3, y, min_leaf=30)
        assert split is not None
        assert not split.is_numeric
        # Levels 0 and 1 have near-identical rates and should merge.
        groups = {frozenset(g) for g in split.groups}
        assert frozenset({0, 1}) in groups
        assert frozenset({2}) in groups

    def test_single_level_none(self):
        codes = np.zeros(100, dtype=np.int64)
        y = np.array([0, 1] * 50)
        assert (
            best_categorical_split_chi2("c", codes, 1, y, min_leaf=10)
            is None
        )

    def test_distinct_levels_stay_separate(self, rng):
        codes = rng.integers(0, 3, 900)
        probs = np.array([0.05, 0.5, 0.95])[codes]
        y = (rng.random(900) < probs).astype(int)
        split = best_categorical_split_chi2(
            "c", codes, 3, y, min_leaf=30, merge_alpha=0.05
        )
        assert split is not None
        assert len(split.groups) == 3


class TestCategoricalFSplit:
    def test_detects_mean_differences(self, rng):
        codes = rng.integers(0, 4, 800)
        y = np.array([0.0, 0.0, 2.0, 2.0])[codes] + rng.normal(
            0, 0.5, 800
        )
        split = best_categorical_split_f("c", codes, 4, y, min_leaf=30)
        assert split is not None
        groups = {frozenset(g) for g in split.groups}
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3}) in groups

    def test_missing_codes_excluded(self, rng):
        codes = rng.integers(0, 2, 400)
        codes[:100] = -1
        y = codes.astype(float) + rng.normal(0, 0.05, 400)
        split = best_categorical_split_f("c", codes, 2, y, min_leaf=30)
        assert split is not None
        assert split.has_missing_branch
