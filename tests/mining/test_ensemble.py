"""Tests for bagged tree ensembles."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.evaluation import roc_auc
from repro.exceptions import FitError, NotFittedError
from repro.mining import BaggedTreesClassifier, DecisionTreeClassifier, TreeConfig
from tests.conftest import make_classification_table

CONFIG = TreeConfig(min_leaf=25, min_split=60, max_leaves=16)


@pytest.fixture(scope="module")
def data():
    return make_classification_table(900, seed=23, noise=1.5)


class TestBaggedTrees:
    def test_learns_signal(self, data):
        table, y = data
        model = BaggedTreesClassifier(
            n_estimators=15, config=CONFIG, seed=1
        ).fit(table, "label")
        assert roc_auc(y, model.predict_proba(table)) > 0.8

    def test_oob_scores_populated(self, data):
        table, y = data
        model = BaggedTreesClassifier(
            n_estimators=15, config=CONFIG, seed=1
        ).fit(table, "label")
        oob = model.oob_scores_
        assert oob is not None and oob.shape == (table.n_rows,)
        covered = ~np.isnan(oob)
        assert covered.mean() > 0.95
        assert roc_auc(y[covered], oob[covered]) > 0.7

    def test_oob_less_optimistic_than_resubstitution(self, data):
        table, y = data
        model = BaggedTreesClassifier(
            n_estimators=20, config=CONFIG, seed=2
        ).fit(table, "label")
        resubstitution = roc_auc(y, model.predict_proba(table))
        oob = model.oob_scores_
        covered = ~np.isnan(oob)
        oob_auc = roc_auc(y[covered], oob[covered])
        assert resubstitution >= oob_auc

    def test_averaging_smooths_probabilities(self, data):
        """The bag's score distribution has more distinct values than a
        single tree's leaf probabilities — the 'obscured raw model
        quality' the paper avoided."""
        table, _y = data
        single = DecisionTreeClassifier(CONFIG).fit(table, "label")
        bag = BaggedTreesClassifier(
            n_estimators=15, config=CONFIG, seed=1
        ).fit(table, "label")
        assert len(np.unique(bag.predict_proba(table))) > len(
            np.unique(single.predict_proba(table))
        )

    def test_deterministic_given_seed(self, data):
        table, _y = data
        a = BaggedTreesClassifier(n_estimators=5, config=CONFIG, seed=7)
        b = BaggedTreesClassifier(n_estimators=5, config=CONFIG, seed=7)
        assert np.array_equal(
            a.fit(table, "label").predict_proba(table),
            b.fit(table, "label").predict_proba(table),
        )

    def test_n_estimators_validation(self):
        with pytest.raises(ValueError):
            BaggedTreesClassifier(n_estimators=0)

    def test_single_class_rejected(self):
        table = DataTable(
            [
                NumericColumn("x", [1.0, 2.0, 3.0]),
                CategoricalColumn("label", ["n", "n", "n"], ("n", "p")),
            ]
        )
        with pytest.raises(FitError):
            BaggedTreesClassifier(n_estimators=3).fit(table, "label")

    def test_predict_before_fit(self, data):
        table, _y = data
        with pytest.raises(NotFittedError):
            BaggedTreesClassifier().predict_proba(table)

    def test_mean_leaves(self, data):
        table, _y = data
        model = BaggedTreesClassifier(
            n_estimators=5, config=CONFIG, seed=3
        ).fit(table, "label")
        assert 1 <= model.mean_leaves() <= 16
        assert model.n_fitted_estimators == 5
