"""Tests for FeatureSet input/target resolution."""

import numpy as np
import pytest

from repro.datatable import (
    CategoricalColumn,
    ColumnSpec,
    DataTable,
    MeasurementLevel,
    NumericColumn,
    Role,
    TableSchema,
)
from repro.exceptions import FitError, MissingColumnError, SchemaError
from repro.mining.features import FeatureSet


@pytest.fixture()
def table() -> DataTable:
    return DataTable(
        [
            NumericColumn("segment_id", [1.0, 2.0, 3.0, 4.0]),
            NumericColumn("f60", [0.5, 0.6, None, 0.4]),
            CategoricalColumn("cls", ["a", "b", "a", "b"], ("a", "b")),
            CategoricalColumn(
                "target", ["n", "p", "n", "p"], ("n", "p")
            ),
        ]
    )


class TestInputResolution:
    def test_default_excludes_bookkeeping(self, table):
        features = FeatureSet(table, "target")
        assert features.input_names == ["f60", "cls"]

    def test_explicit_include(self, table):
        features = FeatureSet(table, "target", include=["f60"])
        assert features.input_names == ["f60"]

    def test_include_missing_column(self, table):
        with pytest.raises(MissingColumnError):
            FeatureSet(table, "target", include=["nope"])

    def test_target_in_include_rejected(self, table):
        with pytest.raises(SchemaError):
            FeatureSet(table, "target", include=["target"])

    def test_schema_drives_inputs(self, table):
        schema = TableSchema(
            [
                ColumnSpec("f60", MeasurementLevel.INTERVAL),
                ColumnSpec("cls", MeasurementLevel.NOMINAL, Role.REJECTED),
                ColumnSpec("target", MeasurementLevel.BINARY, Role.TARGET),
            ]
        )
        features = FeatureSet(table.with_schema(schema), "target")
        assert features.input_names == ["f60"]

    def test_empty_table_rejected(self):
        with pytest.raises(FitError):
            FeatureSet(DataTable.empty().with_column(
                NumericColumn("t", [])
            ), "t")

    def test_missing_target(self, table):
        with pytest.raises(MissingColumnError):
            FeatureSet(table, "nope")


class TestTargets:
    def test_binary_target_categorical(self, table):
        features = FeatureSet(table, "target")
        y, labels = features.binary_target()
        assert labels == ("n", "p")
        assert y.tolist() == [0, 1, 0, 1]

    def test_binary_target_numeric_01(self, table):
        augmented = table.with_column(
            NumericColumn("flag", [0.0, 1.0, 1.0, 0.0])
        )
        features = FeatureSet(augmented, "flag")
        y, labels = features.binary_target()
        assert y.tolist() == [0, 1, 1, 0]
        assert labels == ("0", "1")

    def test_binary_target_rejects_multiclass(self, table):
        bad = table.with_column(
            CategoricalColumn("t3", ["a", "b", "c", "a"], ("a", "b", "c"))
        )
        with pytest.raises(FitError, match="3 observed levels"):
            FeatureSet(bad, "t3").binary_target()

    def test_binary_target_rejects_non01_numeric(self, table):
        bad = table.with_column(NumericColumn("v", [0.0, 2.0, 1.0, 0.0]))
        with pytest.raises(FitError):
            FeatureSet(bad, "v").binary_target()

    def test_binary_target_rejects_missing(self, table):
        bad = table.with_column(
            CategoricalColumn("t", ["n", None, "p", "n"], ("n", "p"))
        )
        with pytest.raises(FitError, match="missing"):
            FeatureSet(bad, "t").binary_target()

    def test_interval_target_coerces_binary(self, table):
        features = FeatureSet(table, "target")
        y = features.interval_target()
        assert y.dtype == np.float64
        assert y.tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_interval_target_numeric_passthrough(self, table):
        augmented = table.with_column(
            NumericColumn("count", [3.0, 7.0, 1.0, 9.0])
        )
        features = FeatureSet(augmented, "count")
        assert features.interval_target().tolist() == [3.0, 7.0, 1.0, 9.0]

    def test_subset(self, table):
        features = FeatureSet(table, "target")
        sub = features.subset(np.array([0, 2]))
        assert sub.n_rows == 2
        assert sub.input_names == features.input_names


class TestVocabularyAlignment:
    def test_aligned_to_remaps_codes(self, table):
        features = FeatureSet(table, "target")
        aligned = features.aligned_to({"cls": ("b", "a")})
        (cls,) = [f for f in aligned.features if f.name == "cls"]
        assert cls.labels == ("b", "a")
        assert cls.values.tolist() == [1, 0, 1, 0]

    def test_aligned_to_all_missing_column(self):
        # An all-missing categorical has an empty local vocabulary;
        # alignment must adopt the target labels without indexing into
        # an empty remap table.
        table = DataTable(
            [
                NumericColumn("f60", [0.5, 0.6]),
                CategoricalColumn("cls", [None, None]),
                CategoricalColumn("target", ["n", "p"], ("n", "p")),
            ]
        )
        features = FeatureSet(table, "target")
        aligned = features.aligned_to({"cls": ("a", "b")})
        (cls,) = [f for f in aligned.features if f.name == "cls"]
        assert cls.labels == ("a", "b")
        assert cls.values.tolist() == [-1, -1]
