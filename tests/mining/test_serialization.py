"""Round-trip tests for tree model serialisation."""

import json

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import NotFittedError, ReproError
from repro.mining import DecisionTreeClassifier, RegressionTree, TreeConfig
from tests.conftest import make_classification_table


@pytest.fixture()
def fitted_classifier():
    table, y = make_classification_table(700, seed=31)
    model = DecisionTreeClassifier(
        TreeConfig(min_leaf=25, min_split=60, max_leaves=20)
    ).fit(table, "label")
    return model, table, y


class TestDecisionTreeSerialisation:
    def test_roundtrip_predictions_identical(self, fitted_classifier):
        model, table, _y = fitted_classifier
        clone = DecisionTreeClassifier.from_dict(model.to_dict())
        assert np.array_equal(
            clone.predict_proba(table), model.predict_proba(table)
        )

    def test_roundtrip_through_json(self, fitted_classifier, tmp_path):
        model, table, _y = fitted_classifier
        path = tmp_path / "tree.json"
        path.write_text(json.dumps(model.to_dict()))
        clone = DecisionTreeClassifier.from_dict(
            json.loads(path.read_text())
        )
        assert np.array_equal(
            clone.predict_proba(table), model.predict_proba(table)
        )

    def test_structure_preserved(self, fitted_classifier):
        model, _table, _y = fitted_classifier
        clone = DecisionTreeClassifier.from_dict(model.to_dict())
        assert clone.n_leaves == model.n_leaves
        assert clone.n_nodes == model.n_nodes
        assert clone.depth == model.depth
        assert clone.class_labels == model.class_labels
        assert clone.input_names == model.input_names

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().to_dict()

    def test_wrong_model_kind_rejected(self, fitted_classifier):
        model, _table, _y = fitted_classifier
        data = model.to_dict()
        data["model"] = "SomethingElse"
        with pytest.raises(ReproError):
            DecisionTreeClassifier.from_dict(data)

    def test_wrong_format_version_rejected(self, fitted_classifier):
        model, _table, _y = fitted_classifier
        data = model.to_dict()
        data["tree"]["format_version"] = 999
        with pytest.raises(ReproError, match="version"):
            DecisionTreeClassifier.from_dict(data)


class TestRegressionTreeSerialisation:
    def test_roundtrip(self):
        gen = np.random.default_rng(4)
        x = gen.uniform(0, 1, 500)
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                NumericColumn.from_array(
                    "y", 3 * (x > 0.5) + gen.normal(0, 0.2, 500)
                ),
            ]
        )
        model = RegressionTree().fit(table, "y")
        clone = RegressionTree.from_dict(
            json.loads(json.dumps(model.to_dict()))
        )
        assert np.array_equal(clone.predict(table), model.predict(table))

    def test_wrong_model_kind_rejected(self):
        with pytest.raises(ReproError):
            RegressionTree.from_dict({"model": "DecisionTreeClassifier"})


class TestVocabularyAlignment:
    def test_predict_on_reordered_vocabulary(self):
        """A table with the same labels in a different code order must
        predict identically after (de)serialisation."""
        gen = np.random.default_rng(9)
        groups = list(gen.choice(["p", "q", "r"], size=600))
        y = [
            "pos" if (g == "r" or gen.random() < 0.15) else "neg"
            for g in groups
        ]
        table = DataTable(
            [
                CategoricalColumn("group", groups, ("p", "q", "r")),
                CategoricalColumn("label", y, ("neg", "pos")),
            ]
        )
        model = DecisionTreeClassifier(
            TreeConfig(min_leaf=25, min_split=60)
        ).fit(table, "label")
        # Same data, reordered vocabulary (different codes!).
        reordered = DataTable(
            [
                CategoricalColumn("group", groups, ("r", "q", "p")),
                CategoricalColumn("label", y, ("neg", "pos")),
            ]
        )
        assert np.array_equal(
            model.predict_proba(reordered), model.predict_proba(table)
        )

    def test_unseen_label_falls_back(self):
        gen = np.random.default_rng(10)
        groups = list(gen.choice(["p", "q"], size=400))
        y = ["pos" if g == "q" else "neg" for g in groups]
        table = DataTable(
            [
                CategoricalColumn("group", groups, ("p", "q")),
                CategoricalColumn("label", y, ("neg", "pos")),
            ]
        )
        model = DecisionTreeClassifier(
            TreeConfig(min_leaf=25, min_split=60)
        ).fit(table, "label")
        novel = DataTable(
            [
                CategoricalColumn("group", ["z", "p"], ("z", "p")),
                CategoricalColumn("label", ["neg", "neg"], ("neg", "pos")),
            ]
        )
        probabilities = model.predict_proba(novel)
        assert np.isfinite(probabilities).all()
