"""Tests for simple k-means."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import FitError, NotFittedError
from repro.mining import KMeans


def blob_table(n_per=120, seed=0):
    gen = np.random.default_rng(seed)
    centres = [(-5.0, -5.0), (0.0, 5.0), (6.0, -2.0)]
    xs, ys, true = [], [], []
    for label, (cx, cy) in enumerate(centres):
        xs.extend(gen.normal(cx, 0.4, n_per))
        ys.extend(gen.normal(cy, 0.4, n_per))
        true.extend([label] * n_per)
    return (
        DataTable(
            [
                NumericColumn("x", xs),
                NumericColumn("y", ys),
            ]
        ),
        np.array(true),
    )


class TestKMeans:
    def test_recovers_blobs(self):
        table, true = blob_table()
        model = KMeans(n_clusters=3, seed=1)
        assignment = model.fit_predict(table)
        # Each true blob maps to exactly one cluster.
        for label in range(3):
            members = assignment[true == label]
            assert len(set(members.tolist())) == 1
        assert len(set(assignment.tolist())) == 3

    def test_assignment_minimises_distance(self):
        table, _true = blob_table(seed=3)
        model = KMeans(n_clusters=3, seed=2).fit(table)
        from repro.mining.kmeans import _pairwise_sq
        from repro.mining.preprocessing import MatrixEncoder

        features = model._feature_set(table, model._input_names)
        x = model._encoder.transform(features)
        distances = _pairwise_sq(x, model.centroids)
        assignment = model.predict(table)
        assert np.array_equal(assignment, distances.argmin(axis=1))

    def test_inertia_decreases_with_k(self):
        table, _true = blob_table(seed=5)
        inertias = []
        for k in (2, 3, 6):
            model = KMeans(n_clusters=k, seed=1, n_init=2).fit(table)
            inertias.append(model.inertia)
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic_given_seed(self):
        table, _true = blob_table(seed=7)
        a = KMeans(n_clusters=3, seed=4).fit_predict(table)
        b = KMeans(n_clusters=3, seed=4).fit_predict(table)
        assert np.array_equal(a, b)

    def test_too_few_rows_rejected(self):
        table = DataTable([NumericColumn("x", [1.0, 2.0])])
        with pytest.raises(FitError):
            KMeans(n_clusters=5).fit(table)

    def test_predict_before_fit(self):
        table, _true = blob_table()
        with pytest.raises(NotFittedError):
            KMeans().predict(table)

    def test_categorical_features_encoded(self):
        labels = ["a"] * 100 + ["b"] * 100
        table = DataTable([CategoricalColumn("g", labels, ("a", "b"))])
        assignment = KMeans(n_clusters=2, seed=0).fit_predict(table)
        # The categorical column alone separates the two groups exactly.
        assert len(set(assignment[:100].tolist())) == 1
        assert len(set(assignment[100:].tolist())) == 1
        assert assignment[0] != assignment[150]

    def test_cluster_sizes(self):
        table, _true = blob_table()
        model = KMeans(n_clusters=3, seed=1)
        assignment = model.fit_predict(table)
        sizes = model.cluster_sizes(assignment)
        assert sizes.sum() == table.n_rows
        assert (sizes > 0).all()

    def test_include_restricts_features(self):
        table, _true = blob_table()
        noisy = table.with_column(
            NumericColumn("noise", list(np.random.default_rng(0).normal(0, 100, table.n_rows)))
        )
        model = KMeans(n_clusters=3, seed=1).fit(noisy, include=["x", "y"])
        assert model._input_names == ["x", "y"]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)
        with pytest.raises(ValueError):
            KMeans(n_init=0)

    def test_empty_cluster_reseeded(self):
        # k close to n forces empty-cluster handling during Lloyd steps.
        table, _true = blob_table(n_per=4, seed=11)
        model = KMeans(n_clusters=10, seed=3, n_init=1).fit(table)
        assignment = model.predict(table)
        assert assignment.shape == (12,)
