"""Property-based tests on model behaviour."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.mining import (
    DecisionTreeClassifier,
    NaiveBayesClassifier,
    RegressionTree,
    TreeConfig,
)
from repro.mining.tree import iter_leaves


@st.composite
def labelled_tables(draw):
    n = draw(st.integers(min_value=30, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    gen = np.random.default_rng(seed)
    x = gen.normal(0, 1, n)
    missing = gen.random(n) < draw(
        st.sampled_from([0.0, 0.1, 0.3])
    )
    x_objects = [None if m else float(v) for v, m in zip(x, missing)]
    group = gen.choice(["g1", "g2", "g3"], size=n)
    y = (x + (group == "g3") + gen.normal(0, 1, n)) > 0
    # Guarantee both classes.
    y[0], y[1] = True, False
    table = DataTable(
        [
            NumericColumn("x", x_objects),
            CategoricalColumn("group", list(group), ("g1", "g2", "g3")),
            CategoricalColumn(
                "label", ["p" if v else "n" for v in y], ("n", "p")
            ),
        ]
    )
    return table, y.astype(int)


TREE_CONFIG = TreeConfig(min_leaf=5, min_split=10, max_depth=6, max_leaves=16)


@given(labelled_tables())
@settings(max_examples=40, deadline=None)
def test_decision_tree_total_prediction_function(sample):
    """Every row — missing values included — gets a valid probability."""
    table, _y = sample
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    probabilities = model.predict_proba(table)
    assert probabilities.shape == (table.n_rows,)
    assert np.isfinite(probabilities).all()
    assert ((0.0 <= probabilities) & (probabilities <= 1.0)).all()


@given(labelled_tables())
@settings(max_examples=40, deadline=None)
def test_decision_tree_leaf_sizes_partition_training_data(sample):
    table, _y = sample
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    assert (
        sum(leaf.n_samples for leaf in iter_leaves(model.root))
        == table.n_rows
    )


@given(labelled_tables())
@settings(max_examples=40, deadline=None)
def test_decision_tree_train_apply_consistency(sample):
    """apply() on the training table routes each row to a leaf whose
    stored prediction equals the row's predicted probability."""
    table, _y = sample
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    probabilities = model.predict_proba(table)
    leaf_of = {
        leaf.node_id: leaf.prediction for leaf in iter_leaves(model.root)
    }
    leaves = model.apply(table)
    assert all(
        probabilities[i] == leaf_of[leaf_id]
        for i, leaf_id in enumerate(leaves)
    )


@given(labelled_tables())
@settings(max_examples=30, deadline=None)
def test_regression_tree_predictions_within_target_range(sample):
    table, _y = sample
    model = RegressionTree(TREE_CONFIG).fit(table, "label")
    predictions = model.predict(table)
    assert predictions.min() >= 0.0 - 1e-12
    assert predictions.max() <= 1.0 + 1e-12


@given(labelled_tables())
@settings(max_examples=30, deadline=None)
def test_naive_bayes_probabilities_valid(sample):
    table, _y = sample
    model = NaiveBayesClassifier().fit(table, "label")
    probabilities = model.predict_proba(table)
    assert np.isfinite(probabilities).all()
    assert ((0.0 <= probabilities) & (probabilities <= 1.0)).all()


@given(labelled_tables(), st.integers(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_row_order_equivariance(sample, seed):
    """Predicting a permuted table permutes the predictions."""
    table, _y = sample
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(table.n_rows)
    base = model.predict_proba(table)
    permuted = model.predict_proba(table.take(perm))
    assert np.array_equal(permuted, base[perm])
