"""Tests for decision trees, regression trees and rule extraction."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.evaluation import BinaryConfusion, accuracy, r_squared
from repro.exceptions import NotFittedError
from repro.mining import (
    DecisionTreeClassifier,
    RegressionTree,
    TreeConfig,
    extract_rules,
    format_rules,
)
from repro.mining.features import FeatureSet
from repro.mining.tree import iter_leaves
from tests.conftest import make_classification_table


class TestTreeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeConfig(alpha=0.0)
        with pytest.raises(ValueError):
            TreeConfig(min_leaf=10, min_split=15)
        with pytest.raises(ValueError):
            TreeConfig(max_leaves=1)


class TestDecisionTree:
    def test_learns_signal(self):
        table, y = make_classification_table(1200, seed=3)
        model = DecisionTreeClassifier(
            TreeConfig(min_leaf=30, min_split=60)
        ).fit(table, "label")
        cm = BinaryConfusion.from_scores(y, model.predict_proba(table))
        assert accuracy(cm) > 0.75

    def test_predict_before_fit(self):
        table, _y = make_classification_table(50)
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_proba(table)

    def test_class_labels_captured(self):
        table, _y = make_classification_table(300)
        model = DecisionTreeClassifier().fit(table, "label")
        assert model.class_labels == ("neg", "pos")
        labels = model.predict_labels(table)
        assert set(labels) <= {"neg", "pos"}

    def test_max_leaves_respected(self):
        table, _y = make_classification_table(2000, seed=5)
        model = DecisionTreeClassifier(
            TreeConfig(max_leaves=6, min_leaf=25, min_split=60)
        ).fit(table, "label")
        assert 2 <= model.n_leaves <= 6

    def test_min_leaf_respected(self):
        table, _y = make_classification_table(800, seed=5)
        model = DecisionTreeClassifier(
            TreeConfig(min_leaf=50, min_split=120)
        ).fit(table, "label")
        for leaf in iter_leaves(model.root):
            assert leaf.n_samples >= 50

    def test_pure_target_single_leaf(self):
        table = DataTable(
            [
                NumericColumn("x", list(np.linspace(0, 1, 200))),
                CategoricalColumn("label", ["n"] * 200, ("n", "p")),
            ]
        )
        # Force both labels into the vocabulary but only one observed.
        with pytest.raises(Exception):
            # single observed class cannot form a binary target
            DecisionTreeClassifier().fit(table, "label")

    def test_probabilities_in_unit_interval(self):
        table, _y = make_classification_table(500, seed=2)
        model = DecisionTreeClassifier().fit(table, "label")
        probabilities = model.predict_proba(table)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_missing_values_handled_at_predict(self):
        table, _y = make_classification_table(600, seed=9)
        model = DecisionTreeClassifier().fit(table, "label")
        broken = table.with_column(
            NumericColumn("a", [None] * table.n_rows)
        )
        probabilities = model.predict_proba(broken)
        assert probabilities.shape == (table.n_rows,)
        assert not np.isnan(probabilities).any()

    def test_apply_returns_leaf_ids(self):
        table, _y = make_classification_table(400, seed=4)
        model = DecisionTreeClassifier().fit(table, "label")
        leaves = model.apply(table)
        leaf_ids = {leaf.node_id for leaf in iter_leaves(model.root)}
        assert set(leaves.tolist()) <= leaf_ids

    def test_leaf_summary_sizes_sum_to_n(self):
        table, _y = make_classification_table(500, seed=6)
        model = DecisionTreeClassifier().fit(table, "label")
        total = sum(entry["n_samples"] for entry in model.leaf_summary())
        assert total == table.n_rows

    def test_deterministic(self):
        table, _y = make_classification_table(400, seed=8)
        a = DecisionTreeClassifier().fit(table, "label")
        b = DecisionTreeClassifier().fit(table, "label")
        assert np.array_equal(a.predict_proba(table), b.predict_proba(table))

    def test_alpha_gates_growth(self):
        table, _y = make_classification_table(500, seed=10, noise=20.0)
        strict = DecisionTreeClassifier(
            TreeConfig(alpha=1e-12)
        ).fit(table, "label")
        lax = DecisionTreeClassifier(TreeConfig(alpha=0.9999)).fit(
            table, "label"
        )
        assert strict.n_leaves <= lax.n_leaves


class TestRegressionTree:
    def make_regression_table(self, n=800, seed=0):
        gen = np.random.default_rng(seed)
        x = gen.uniform(0, 1, n)
        group = gen.choice(["u", "v"], size=n)
        y = 3.0 * (x > 0.5) + 2.0 * (group == "v") + gen.normal(0, 0.3, n)
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                CategoricalColumn("group", list(group), ("u", "v")),
                NumericColumn.from_array("y", y),
            ]
        )
        return table, y

    def test_explains_variance(self):
        table, y = self.make_regression_table()
        model = RegressionTree().fit(table, "y")
        assert r_squared(y, model.predict(table)) > 0.8

    def test_score_r_squared_helper(self):
        table, _y = self.make_regression_table()
        model = RegressionTree().fit(table, "y")
        assert model.score_r_squared(table) > 0.8

    def test_binary_target_as_interval(self):
        table, y = make_classification_table(800, seed=13)
        model = RegressionTree().fit(table, "label")
        predictions = model.predict(table)
        assert predictions.min() >= 0.0 and predictions.max() <= 1.0
        assert r_squared(y.astype(float), predictions) > 0.3

    def test_leaf_count_reported(self):
        table, _y = self.make_regression_table()
        model = RegressionTree(TreeConfig(max_leaves=8)).fit(table, "y")
        assert 2 <= model.n_leaves <= 8

    def test_predict_before_fit(self):
        table, _y = self.make_regression_table(50)
        with pytest.raises(NotFittedError):
            RegressionTree().predict(table)


class TestRules:
    def test_rules_cover_all_leaves(self):
        table, _y = make_classification_table(600, seed=21)
        model = DecisionTreeClassifier().fit(table, "label")
        features = FeatureSet(table, "label")
        rules = extract_rules(model.root, features)
        assert len(rules) == model.n_leaves
        assert sum(rule.n_samples for rule in rules) == table.n_rows

    def test_rule_rendering(self):
        table, _y = make_classification_table(600, seed=22)
        model = DecisionTreeClassifier().fit(table, "label")
        features = FeatureSet(table, "label")
        rules = extract_rules(model.root, features)
        text = format_rules(rules, limit=3)
        assert "IF " in text
        assert "prediction=" in text
        if len(rules) > 3:
            assert "more rules" in text

    def test_single_leaf_tree_rule(self):
        gen = np.random.default_rng(0)
        table = DataTable(
            [
                NumericColumn.from_array("x", gen.random(100)),
                CategoricalColumn(
                    "label",
                    list(gen.choice(["n", "p"], size=100)),
                    ("n", "p"),
                ),
            ]
        )
        model = DecisionTreeClassifier(
            TreeConfig(alpha=1e-9, min_leaf=25, min_split=60)
        ).fit(table, "label")
        features = FeatureSet(table, "label")
        rules = extract_rules(model.root, features)
        if model.n_leaves == 1:
            assert rules[0].conditions == ()
            assert str(rules[0]).startswith("IF TRUE")
