"""Tests for the matrix encoder and discretiser."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import FitError, NotFittedError
from repro.mining.features import FeatureSet
from repro.mining.preprocessing import (
    EqualFrequencyDiscretiser,
    MatrixEncoder,
    standardise_matrix,
)


def make_features():
    table = DataTable(
        [
            NumericColumn("a", [1.0, 2.0, None, 4.0]),
            NumericColumn("b", [10.0, 10.0, 10.0, 10.0]),
            CategoricalColumn("c", ["x", "y", None, "x"], ("x", "y")),
            NumericColumn("t", [0.0, 1.0, 0.0, 1.0]),
        ]
    )
    return FeatureSet(table, "t")


class TestMatrixEncoder:
    def test_column_layout(self):
        encoder = MatrixEncoder().fit(make_features())
        assert encoder.column_names == [
            "a",
            "a__missing",
            "b",
            "c=x",
            "c=y",
        ]

    def test_transform_shape_and_imputation(self):
        features = make_features()
        matrix = MatrixEncoder().fit_transform(features)
        assert matrix.shape == (4, 5)
        assert not np.isnan(matrix).any()
        # Missing 'a' row: imputed to mean → standardised 0, indicator 1.
        assert matrix[2, 0] == pytest.approx(0.0)
        assert matrix[2, 1] == 1.0

    def test_constant_column_scale_guard(self):
        matrix = MatrixEncoder().fit_transform(make_features())
        assert np.all(matrix[:, 2] == 0.0)  # constant b standardises to 0

    def test_missing_categorical_all_zero(self):
        matrix = MatrixEncoder().fit_transform(make_features())
        assert matrix[2, 3] == 0.0 and matrix[2, 4] == 0.0

    def test_no_standardise(self):
        features = make_features()
        matrix = MatrixEncoder(standardise=False).fit_transform(features)
        assert matrix[0, 0] == pytest.approx(1.0)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            MatrixEncoder().transform(make_features())

    def test_transform_missing_column_rejected(self):
        encoder = MatrixEncoder().fit(make_features())
        other = DataTable(
            [
                NumericColumn("a", [1.0]),
                NumericColumn("t", [0.0]),
            ]
        )
        with pytest.raises(FitError, match="'b'"):
            encoder.transform(FeatureSet(other, "t", include=["a"]))

    def test_all_missing_numeric_column(self):
        table = DataTable(
            [
                NumericColumn("a", [None, None]),
                NumericColumn("t", [0.0, 1.0]),
            ]
        )
        matrix = MatrixEncoder().fit_transform(FeatureSet(table, "t"))
        assert matrix.shape == (2, 2)
        assert np.all(matrix[:, 1] == 1.0)


class TestDiscretiser:
    def test_equal_frequency_bins(self):
        values = np.arange(100, dtype=float)
        bins = EqualFrequencyDiscretiser(4).fit_transform(values)
        counts = np.bincount(bins)
        assert len(counts) == 4
        assert counts.min() >= 24

    def test_missing_maps_to_minus_one(self):
        values = np.array([1.0, np.nan, 3.0, 4.0])
        bins = EqualFrequencyDiscretiser(2).fit_transform(values)
        assert bins[1] == -1

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            EqualFrequencyDiscretiser().transform(np.ones(3))

    def test_all_missing_rejected(self):
        with pytest.raises(FitError):
            EqualFrequencyDiscretiser().fit(np.array([np.nan]))

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretiser(1)


class TestStandardiseMatrix:
    def test_zero_mean_unit_variance(self, rng):
        matrix = rng.normal(5.0, 3.0, size=(200, 3))
        scaled, means, scales = standardise_matrix(matrix)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(scaled.std(axis=0), 1.0)
        assert np.allclose(means, matrix.mean(axis=0))

    def test_constant_column(self):
        matrix = np.ones((5, 2))
        scaled, _means, scales = standardise_matrix(matrix)
        assert np.all(scaled == 0.0)
        assert np.all(scales == 1.0)
