"""Edge-case tests for best-first tree growth."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.mining.features import FeatureSet
from repro.mining.tree import TreeConfig, grow_tree, iter_leaves, iter_nodes


def make_features(n=400, seed=0, noise=0.0):
    gen = np.random.default_rng(seed)
    x = gen.uniform(0, 1, n)
    w = gen.uniform(0, 1, n)
    y = ((x > 0.5) ^ (w > 0.5)).astype(np.int64)
    if noise:
        flips = gen.random(n) < noise
        y = np.where(flips, 1 - y, y)
    table = DataTable(
        [
            NumericColumn.from_array("x", x),
            NumericColumn.from_array("w", w),
            NumericColumn.from_array("t", y.astype(float)),
        ]
    )
    return FeatureSet(table, "t"), y


SMALL = dict(min_leaf=10, min_split=20)


class TestGrowthEdges:
    def test_invalid_mode_rejected(self):
        features, y = make_features(50)
        with pytest.raises(ValueError, match="mode"):
            grow_tree(features, y, TreeConfig(**SMALL), mode="gini")

    def test_tiny_data_single_leaf(self):
        features, y = make_features(10)
        grown = grow_tree(
            features, y, TreeConfig(min_leaf=10, min_split=20), "chi2"
        )
        assert grown.n_leaves == 1
        assert grown.root.is_leaf
        assert grown.root.prediction == pytest.approx(float(y.mean()))

    def test_pure_target_single_leaf(self):
        features, _y = make_features(200)
        pure = np.zeros(200, dtype=np.int64)
        grown = grow_tree(features, pure, TreeConfig(**SMALL), "chi2")
        assert grown.n_leaves == 1

    def test_max_depth_respected(self):
        features, y = make_features(2000, seed=3)
        grown = grow_tree(
            features,
            y,
            TreeConfig(max_depth=2, **SMALL),
            "chi2",
        )
        assert grown.depth <= 2
        for node in iter_nodes(grown.root):
            assert node.depth <= 2

    def test_xor_needs_depth_two(self):
        """Neither marginal split is significant alone at depth 1 in a
        perfect XOR — but the grower still finds structure because the
        best-first scan evaluates real counts, and depth 2 resolves it."""
        features, y = make_features(2000, seed=5)
        grown = grow_tree(
            features, y, TreeConfig(max_depth=4, **SMALL), "chi2"
        )
        if grown.n_leaves >= 4:
            leaf_predictions = [
                leaf.prediction for leaf in iter_leaves(grown.root)
            ]
            assert min(leaf_predictions) < 0.2
            assert max(leaf_predictions) > 0.8

    def test_leaf_budget_is_hard_cap(self):
        features, y = make_features(3000, seed=7, noise=0.1)
        for budget in (2, 3, 5):
            grown = grow_tree(
                features,
                y,
                TreeConfig(max_leaves=budget, **SMALL),
                "chi2",
            )
            assert grown.n_leaves <= budget

    def test_node_counts_consistent(self):
        features, y = make_features(1500, seed=9, noise=0.05)
        grown = grow_tree(features, y, TreeConfig(**SMALL), "chi2")
        nodes = list(iter_nodes(grown.root))
        leaves = list(iter_leaves(grown.root))
        assert len(nodes) == grown.n_nodes
        assert len(leaves) == grown.n_leaves
        assert sum(leaf.n_samples for leaf in leaves) == features.n_rows

    def test_f_mode_on_continuous_target(self):
        gen = np.random.default_rng(11)
        x = gen.uniform(0, 1, 800)
        target = np.where(x > 0.3, 5.0, 1.0) + gen.normal(0, 0.1, 800)
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                NumericColumn.from_array("t", target),
            ]
        )
        features = FeatureSet(table, "t")
        grown = grow_tree(features, target, TreeConfig(**SMALL), "f")
        assert grown.n_leaves >= 2
        predictions = [leaf.prediction for leaf in iter_leaves(grown.root)]
        assert max(predictions) > 4.0
        assert min(predictions) < 2.0

    def test_all_missing_feature_ignored(self):
        gen = np.random.default_rng(13)
        x = gen.uniform(0, 1, 300)
        y = (x > 0.5).astype(np.int64)
        table = DataTable(
            [
                NumericColumn.from_array("x", x),
                NumericColumn("dead", [None] * 300),
                NumericColumn.from_array("t", y.astype(float)),
            ]
        )
        features = FeatureSet(table, "t")
        grown = grow_tree(features, y, TreeConfig(**SMALL), "chi2")
        assert grown.n_leaves >= 2
        for node in iter_nodes(grown.root):
            if node.split is not None:
                assert node.split.feature != "dead"

    def test_categorical_multiway_growth(self):
        gen = np.random.default_rng(17)
        levels = gen.choice(["a", "b", "c"], size=900, p=[0.4, 0.4, 0.2])
        probs = {"a": 0.05, "b": 0.5, "c": 0.95}
        y = (gen.random(900) < np.vectorize(probs.get)(levels)).astype(
            np.int64
        )
        table = DataTable(
            [
                CategoricalColumn("g", list(levels), ("a", "b", "c")),
                NumericColumn.from_array("t", y.astype(float)),
            ]
        )
        features = FeatureSet(table, "t")
        grown = grow_tree(
            features,
            y,
            TreeConfig(merge_alpha=0.05, **SMALL),
            "chi2",
        )
        # Three well-separated rates: the root split keeps 3 arms.
        assert grown.root.split is not None
        assert len(grown.root.branches) == 3
