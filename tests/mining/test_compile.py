"""Compiled scoring plans: parity with ``route_rows`` and artefact safety.

The acceptance contract of the compiled-kernel subsystem (ISSUE:
compiled scoring kernels) is that lowering a fitted tree to flat
arrays is a pure transformation — every backend produces predictions
and leaf assignments **bit-identical** to the interpreted
:func:`~repro.mining.tree.structure.route_rows` walk, on any input the
interpreter accepts: missing values, labels never seen at fit time,
single-leaf trees.  The hypothesis tests here enforce that, and the
rest of the module covers the persistence surface (``from_dict``
validation rejects every payload that could aim the C kernel outside
its buffers) and the interpreted fallback.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import TreeCompileError
from repro.mining import DecisionTreeClassifier, RegressionTree, TreeConfig
from repro.mining.tree import (
    PlanInput,
    TreePlan,
    compile_tree,
    route_rows,
)
from repro.mining.tree.compile import plan_inputs

TREE_CONFIG = TreeConfig(min_leaf=5, min_split=10, max_depth=6, max_leaves=16)


def _make_table(seed: int, n: int, missing_rate: float, unseen: bool):
    """A mixed-type labelled table; ``unseen=True`` adds a categorical
    label outside the fit vocabulary (legal at scoring time)."""
    gen = np.random.default_rng(seed)
    x = gen.normal(0, 1, n)
    x_missing = gen.random(n) < missing_rate
    x_objects = [None if m else float(v) for v, m in zip(x, x_missing)]
    levels = ["g1", "g2", "g3", "zz"] if unseen else ["g1", "g2", "g3"]
    group = [
        None if gen.random() < missing_rate else str(gen.choice(levels))
        for _ in range(n)
    ]
    y = (x + np.array([g == "g3" for g in group]) + gen.normal(0, 1, n)) > 0
    y[0], y[1] = True, False
    return DataTable(
        [
            NumericColumn("x", x_objects),
            NumericColumn("w", list(gen.normal(0, 2, n))),
            CategoricalColumn("group", group, tuple(levels)),
            CategoricalColumn(
                "label", ["p" if v else "n" for v in y], ("n", "p")
            ),
        ]
    )


def _assert_plan_parity(model, score_table):
    """plan.evaluate == route_rows, bitwise, on every backend."""
    features = model._features_for(score_table)
    expected_pred, expected_leaf = route_rows(model.root, features)
    plan = model.scoring_plan()
    assert plan is not None
    for backend in (None, "numpy"):
        got_pred, got_leaf = plan.evaluate(features, backend=backend)
        assert np.array_equal(got_pred, expected_pred, equal_nan=True)
        assert np.array_equal(got_leaf, expected_leaf)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=30, max_value=120),
    missing_rate=st.sampled_from([0.0, 0.1, 0.3]),
    unseen=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_classifier_plan_matches_route_rows(seed, n, missing_rate, unseen):
    """Core parity property: compiled output is bit-identical to the
    interpreted walk, including missing values and unseen labels."""
    fit_table = _make_table(seed, n, missing_rate, unseen=False)
    model = DecisionTreeClassifier(TREE_CONFIG).fit(fit_table, "label")
    score_table = _make_table(seed + 1, n, missing_rate, unseen=unseen)
    _assert_plan_parity(model, score_table)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    missing_rate=st.sampled_from([0.0, 0.2]),
)
@settings(max_examples=15, deadline=None)
def test_regression_plan_matches_route_rows(seed, missing_rate):
    fit_table = _make_table(seed, 90, missing_rate, unseen=False)
    # "w" has no missing values (a regression target must be complete);
    # "x" and "group" still exercise missing-value routing as inputs.
    model = RegressionTree(TREE_CONFIG).fit(fit_table, "w")
    score_table = _make_table(seed + 1, 70, missing_rate, unseen=True)
    _assert_plan_parity(model, score_table)


def test_single_leaf_tree_compiles_and_matches():
    """A tree that never splits lowers to a one-node plan."""
    table = _make_table(3, 40, 0.1, unseen=False)
    no_split = TreeConfig(min_leaf=100, min_split=200)
    model = DecisionTreeClassifier(no_split).fit(table, "label")
    assert model.n_leaves == 1
    plan = model.scoring_plan()
    assert plan is not None and plan.n_nodes == 1
    _assert_plan_parity(model, _make_table(4, 25, 0.3, unseen=True))


def test_predict_proba_uses_the_plan(monkeypatch):
    """The public prediction path routes through the compiled plan."""
    table = _make_table(5, 80, 0.1, unseen=False)
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    expected = model.predict_proba(table)
    plan = model.scoring_plan()
    assert plan is not None
    calls = []
    original = plan.evaluate

    def spy(features, backend=None):
        calls.append(features.n_rows)
        return original(features, backend)

    monkeypatch.setattr(plan, "evaluate", spy)
    assert np.array_equal(model.predict_proba(table), expected)
    assert calls == [table.n_rows]


class TestInterpretedFallback:
    def test_non_canonical_tree_refuses_to_compile(self):
        table = _make_table(7, 80, 0.0, unseen=False)
        model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
        # Sabotage one numeric split: the le/gt thresholds disagree,
        # which the flat layout cannot represent faithfully.
        from repro.mining.tree import iter_nodes

        split_node = next(
            node
            for node in iter_nodes(model.root)
            if not node.is_leaf
            and any(b.kind == "le" for b in node.branches)
        )
        for branch in split_node.branches:
            if branch.kind == "le":
                branch.threshold = (branch.threshold or 0.0) + 1.0
        with pytest.raises(TreeCompileError, match="non-canonical"):
            compile_tree(
                model.root,
                plan_inputs(model.input_names, model.vocabularies),
            )
        # The model itself still predicts, via the interpreted router.
        model._reset_plan()
        probabilities = model.predict_proba(table)
        assert model.scoring_plan() is None
        expected, _ = route_rows(model.root, model._features_for(table))
        assert np.array_equal(probabilities, expected)

    def test_unknown_backend_rejected(self):
        table = _make_table(9, 60, 0.0, unseen=False)
        model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
        plan = model.scoring_plan()
        with pytest.raises(TreeCompileError, match="backend"):
            plan.evaluate(model._features_for(table), backend="cuda")


class TestPersistence:
    def _plan(self, seed=11):
        table = _make_table(seed, 100, 0.1, unseen=False)
        model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
        plan = model.scoring_plan()
        assert plan is not None and plan.n_nodes > 1
        return model, plan, table

    def test_roundtrip_is_stable_and_json_safe(self):
        _model, plan, _table = self._plan()
        payload = plan.to_dict()
        rebuilt = TreePlan.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.to_dict() == payload
        assert rebuilt.inputs == plan.inputs

    def test_roundtripped_plan_evaluates_identically(self):
        model, plan, table = self._plan()
        rebuilt = TreePlan.from_dict(plan.to_dict())
        features = model._features_for(table)
        expected = plan.evaluate(features)
        got = rebuilt.evaluate(features)
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])

    def test_model_artefact_carries_the_plan(self):
        model, plan, table = self._plan()
        data = model.to_dict()
        assert data["scoring_plan"] == plan.to_dict()
        restored = DecisionTreeClassifier.from_dict(data)
        # The persisted plan is adopted — no recompile happened.
        assert restored._plan is not None
        assert restored._plan.to_dict() == plan.to_dict()
        assert np.array_equal(
            restored.predict_proba(table), model.predict_proba(table)
        )

    def test_stale_plan_payload_recompiles_silently(self):
        model, _plan, table = self._plan()
        data = model.to_dict()
        data["scoring_plan"]["plan_format_version"] = 999
        restored = DecisionTreeClassifier.from_dict(data)
        assert restored._plan is None  # dropped, recompiles lazily
        assert np.array_equal(
            restored.predict_proba(table), model.predict_proba(table)
        )

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p: p.__setitem__("kind", p["kind"][:-1]),
            lambda p: p["kind"].__setitem__(0, 7),
            lambda p: p["le_child"].__setitem__(0, len(p["kind"]) + 3),
            lambda p: p["gt_child"].__setitem__(0, -2),
            lambda p: p["le_child"].__setitem__(0, 2**31 + 5),
            lambda p: p.__setitem__("lut", []),
            lambda p: p.__setitem__("threshold", "nope"),
            lambda p: p.pop("prediction"),
        ],
        ids=[
            "ragged-arrays",
            "unknown-kind",
            "child-past-end",
            "negative-child",
            "int32-wrapping-child",
            "lut-slice-out-of-range",
            "non-numeric-threshold",
            "missing-key",
        ],
    )
    def test_from_dict_rejects_malformed_payloads(self, corrupt):
        """Every payload that could aim the native kernel outside its
        buffers (or wrap during the int32 narrowing) is rejected."""
        _model, plan, _table = self._plan()
        payload = plan.to_dict()
        corrupt(payload)
        with pytest.raises(TreeCompileError):
            TreePlan.from_dict(payload)

    def test_attach_plan_rejects_mismatched_models(self):
        model_a, plan_a, _ = self._plan(seed=11)
        table_b = DataTable(
            [
                NumericColumn("other", list(range(40))),
                CategoricalColumn(
                    "label",
                    ["p" if i % 2 else "n" for i in range(40)],
                    ("n", "p"),
                ),
            ]
        )
        model_b = DecisionTreeClassifier(TREE_CONFIG).fit(table_b, "label")
        with pytest.raises(TreeCompileError, match="inputs"):
            model_b.attach_plan(plan_a)


def test_numpy_and_native_backends_agree():
    """When the native kernel is available it must agree with the
    numpy oracle; when it is not, the default backend IS numpy and
    this reduces to a self-check."""
    table = _make_table(21, 150, 0.2, unseen=False)
    model = DecisionTreeClassifier(TREE_CONFIG).fit(table, "label")
    plan = model.scoring_plan()
    score = _make_table(22, 130, 0.2, unseen=True)
    features = model._features_for(score)
    default_pred, default_leaf = plan.evaluate(features)
    numpy_pred, numpy_leaf = plan.evaluate(features, backend="numpy")
    assert np.array_equal(default_pred, numpy_pred)
    assert np.array_equal(default_leaf, numpy_leaf)
