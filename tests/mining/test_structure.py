"""Tests for tree node structure and routing internals."""

import numpy as np
import pytest

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.mining.features import FeatureSet
from repro.mining.tree.splitting import SplitCandidate
from repro.mining.tree.structure import (
    Branch,
    TreeNode,
    iter_leaves,
    iter_nodes,
    partition_indices,
    route_rows,
)


def make_features(x_values, group_values=None):
    columns = [NumericColumn("x", x_values)]
    if group_values is not None:
        columns.append(
            CategoricalColumn("group", group_values, ("a", "b", "c"))
        )
    columns.append(NumericColumn("t", [0.0] * len(x_values)))
    return FeatureSet(DataTable(columns), "t")


def numeric_split_node(
    threshold=0.5, with_missing=False, predictions=(0.2, 0.8, 0.5)
):
    split = SplitCandidate(
        feature="x",
        is_numeric=True,
        statistic=10.0,
        p_value=0.001,
        n_candidates=5,
        threshold=threshold,
        has_missing_branch=with_missing,
    )
    left = TreeNode(1, 1, 10, predictions[0])
    right = TreeNode(2, 1, 30, predictions[1])
    root = TreeNode(0, 0, 40, 0.5, split=split)
    root.branches = [
        Branch("le", left, threshold=threshold),
        Branch("gt", right, threshold=threshold),
    ]
    if with_missing:
        missing = TreeNode(3, 1, 5, predictions[2])
        root.branches.append(Branch("missing", missing))
        root.n_samples = 45
    return root


class TestRouting:
    def test_numeric_threshold_routing(self):
        root = numeric_split_node()
        features = make_features([0.1, 0.5, 0.9])
        predictions, leaves = route_rows(root, features)
        # 0.5 <= threshold goes left.
        assert predictions.tolist() == [0.2, 0.2, 0.8]
        assert leaves.tolist() == [1, 1, 2]

    def test_missing_goes_to_missing_branch(self):
        root = numeric_split_node(with_missing=True)
        features = make_features([None, 0.9])
        predictions, leaves = route_rows(root, features)
        assert predictions.tolist() == [0.5, 0.8]
        assert leaves.tolist() == [3, 2]

    def test_missing_without_branch_falls_to_largest(self):
        root = numeric_split_node(with_missing=False)
        features = make_features([None])
        predictions, _leaves = route_rows(root, features)
        # Largest child is the right branch (30 samples).
        assert predictions.tolist() == [0.8]

    def test_categorical_group_routing(self):
        split = SplitCandidate(
            feature="group",
            is_numeric=False,
            statistic=5.0,
            p_value=0.01,
            n_candidates=2,
            groups=((0, 1), (2,)),
        )
        merged = TreeNode(1, 1, 20, 0.1)
        single = TreeNode(2, 1, 10, 0.9)
        root = TreeNode(0, 0, 30, 0.4, split=split)
        root.branches = [
            Branch("in", merged, codes=frozenset({0, 1})),
            Branch("in", single, codes=frozenset({2})),
        ]
        features = make_features(
            [0.0, 0.0, 0.0], group_values=["a", "c", "b"]
        )
        predictions, _leaves = route_rows(root, features)
        assert predictions.tolist() == [0.1, 0.9, 0.1]

    def test_partition_indices_covers_all_rows(self):
        root = numeric_split_node(with_missing=True)
        features = make_features([0.2, None, 0.7, 0.4])
        parts = partition_indices(
            root, features, np.arange(4, dtype=np.int64)
        )
        covered = np.sort(np.concatenate([idx for _b, idx in parts]))
        assert covered.tolist() == [0, 1, 2, 3]


class TestIteration:
    def test_iter_nodes_parents_first(self):
        root = numeric_split_node(with_missing=True)
        ids = [node.node_id for node in iter_nodes(root)]
        assert ids[0] == 0
        assert set(ids) == {0, 1, 2, 3}

    def test_iter_leaves(self):
        root = numeric_split_node()
        assert sorted(n.node_id for n in iter_leaves(root)) == [1, 2]

    def test_make_leaf_prunes(self):
        root = numeric_split_node()
        root.make_leaf()
        assert root.is_leaf
        assert list(iter_nodes(root)) == [root]


class TestBranchDescribe:
    def test_numeric_arms(self):
        root = numeric_split_node(threshold=0.25)
        assert root.branches[0].describe() == "<= 0.25"
        assert root.branches[1].describe() == "> 0.25"

    def test_missing_arm(self):
        root = numeric_split_node(with_missing=True)
        assert root.branches[2].describe() == "missing"

    def test_categorical_arm_uses_labels(self):
        branch = Branch(
            "in", TreeNode(1, 1, 5, 0.5), codes=frozenset({0, 2})
        )
        assert branch.describe(("low", "mid", "high")) == "in {low, high}"

    def test_categorical_arm_without_labels(self):
        branch = Branch("in", TreeNode(1, 1, 5, 0.5), codes=frozenset({1}))
        assert branch.describe() == "in {1}"
