"""Smoke tests of the package's public surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.datatable as datatable
        import repro.evaluation as evaluation
        import repro.mining as mining
        import repro.parallel as parallel
        import repro.roads as roads
        import repro.routing as routing
        import repro.serving as serving

        for module in (
            core, datatable, evaluation, mining, parallel, roads,
            routing, serving,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_quickstart_surface(self, small_dataset):
        """The README quickstart's objects are reachable top-level."""
        study = repro.CrashPronenessStudy(small_dataset, seed=0)
        result = study.run_phase2(thresholds=(8,))
        assert result.results[0].threshold == 8
        rows = repro.table1_rows(small_dataset.crash_instances)
        assert rows[0]["target_label"] == "CP-2"
