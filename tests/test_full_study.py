"""End-to-end test of the full CRISP-DM study run (the repository's
headline integration test)."""

import pytest

from repro import CrashPronenessStudy


@pytest.fixture(scope="module")
def report(mid_dataset):
    study = CrashPronenessStudy(mid_dataset, seed=11)
    return study.run_full_study(n_clusters=16)


class TestFullStudy:
    def test_all_sections_present(self, report):
        assert report.phase1.results
        assert report.phase2.results
        assert report.bayes
        assert report.clustering.profiles

    def test_selected_threshold_in_band(self, report):
        assert report.selection.selected_threshold in (2, 4, 8, 16)

    def test_pipeline_log_traces_stages(self, report):
        log = report.pipeline_log
        assert "[data understanding]" in log
        assert "[modeling]" in log
        assert "[evaluation]" in log
        assert "phase 1" in log and "phase 2" in log

    def test_clustering_supports_conclusion(self, report):
        """The banded-cluster finding should hold on synthetic data."""
        analysis = report.clustering
        assert analysis.anova.rejects_equal_means()
        assert analysis.n_very_low_crash_clusters >= 1

    def test_imbalance_story_visible(self, report):
        """At the top usable threshold, misclassification looks great
        while MCPV is clearly worse than at the selected threshold —
        the paper's evaluation-measure warning."""
        rows = {r.threshold: r for r in report.phase2.results}
        top = max(rows)
        selected = report.selection.selected_threshold
        if top >= 32 and selected in rows:
            assert (
                rows[top].misclassification_rate
                < rows[selected].misclassification_rate
            )
