"""REP101 fixture: two locks acquired in opposite orders via calls.

``forward`` holds ``lock_a`` and calls into ``take_b`` (acquiring
``lock_b``); ``backward`` does the reverse.  Neither function nests the
locks lexically — the cycle only exists interprocedurally, which is
exactly what the call-graph-aware rule must catch.  Expected: exactly
one REP101 finding (one cycle between two locks).
"""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def take_a() -> int:
    with lock_a:
        return 1


def take_b() -> int:
    with lock_b:
        return 2


def forward() -> int:
    with lock_a:
        return take_b()


def backward() -> int:
    with lock_b:
        return take_a()
