"""REP103 fixture: shared attribute mutated with and without the lock.

``Worker`` owns a lock, so it is presumed thread-crossing.  ``count``
is mutated under ``self._lock`` in ``bump`` but bare in ``reset`` —
the unsynchronised write is the bug.  ``__init__`` assignments are
construction, not sharing, and must not count.  Expected: exactly one
REP103 finding (attribute ``count``, anchored at the ``reset`` write).
"""

import threading


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def bump(self) -> None:
        with self._lock:
            self.count += 1

    def reset(self) -> None:
        self.count = 0
