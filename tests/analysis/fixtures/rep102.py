"""REP102 fixture: blocking call reached *transitively* under a lock.

The ``with cache_lock`` body contains no blocking call itself (so the
per-file rule REP002 stays silent); the ``time.sleep`` sits two call
hops away, reachable only through the call graph.  Expected: exactly
one REP102 finding on the ``with`` region in ``refresh``.
"""

import threading
import time

cache_lock = threading.Lock()


def do_io() -> int:
    time.sleep(0.5)
    return 1


def fetch() -> int:
    return do_io()


def refresh() -> int:
    with cache_lock:
        return fetch()
