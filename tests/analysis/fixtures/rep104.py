"""REP104 fixture: one covered metric literal, one orphan.

``repro_fixture_covered_total`` appears a second time in the frozen
``REGISTERED`` tuple, so scrapers/tests can reference it — covered.
``repro_fixture_orphan_total`` is emitted but quoted nowhere else, so
a dashboard built against it would silently chart nothing.  Expected
(with references disabled): exactly one REP104 finding for the orphan.
"""

REGISTERED = ("repro_fixture_covered_total",)


def publish(metrics) -> None:
    metrics.family("repro_fixture_covered_total", "a covered counter")
    metrics.family("repro_fixture_orphan_total", "an orphaned counter")
