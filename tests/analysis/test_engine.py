"""Engine plumbing: discovery, fingerprints, baseline round-trip."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_paths,
    discover_files,
)
from repro.exceptions import AnalysisError, ReproError

BAD_SOURCE = """\
import numpy as np


def sample():
    return np.random.default_rng().random()
"""


def make_finding(line=5, snippet="    return np.random.default_rng().random()"):
    return Finding(
        path="pkg/sample.py",
        line=line,
        col=12,
        rule_id="REP001",
        message="unseeded rng",
        snippet=snippet,
    )


class TestFingerprint:
    def test_stable_across_line_moves(self):
        """Edits above a finding must not churn the baseline."""
        assert make_finding(line=5).fingerprint() == make_finding(line=90).fingerprint()

    def test_whitespace_normalised(self):
        dense = make_finding(snippet="return  np.random.default_rng().random()")
        spaced = make_finding(
            snippet="  return np.random.default_rng().random()  "
        )
        assert dense.fingerprint() == spaced.fingerprint()

    def test_distinct_rules_distinct_fingerprints(self):
        other = Finding(
            path="pkg/sample.py",
            line=5,
            col=12,
            rule_id="REP003",
            message="unseeded rng",
            snippet="    return np.random.default_rng().random()",
        )
        assert make_finding().fingerprint() != other.fingerprint()


class TestDiscovery:
    def test_recurses_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("")
        (tmp_path / "top.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["a.py", "top.py"]

    def test_missing_path_is_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            discover_files([tmp_path / "nowhere"])

    def test_analysis_error_is_repro_error(self):
        assert issubclass(AnalysisError, ReproError)


class TestBaselineRoundTrip:
    def test_save_load_partition(self, tmp_path):
        """Findings written to a baseline stop failing the run."""
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        baseline_path = tmp_path / "baseline.json"

        first = analyze_paths([target])
        assert len(first.findings) == 1 and not first.baselined

        baseline = Baseline()
        baseline.save(baseline_path, first.findings)
        assert len(baseline) == 1

        reloaded = Baseline.load(baseline_path)
        second = analyze_paths([target], baseline=reloaded)
        assert not second.findings
        assert len(second.baselined) == 1
        assert second.clean

    def test_baseline_is_a_multiset(self, tmp_path):
        """One grandfathered offence does not cover a second identical one."""
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        report = analyze_paths([target])
        baseline = Baseline.from_findings(report.findings)

        doubled = report.findings * 2
        new, old = baseline.partition(doubled)
        assert len(old) == 1 and len(new) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_corrupt_json_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_wrong_layout_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format_version": 99, "findings": []}))
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_saved_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().save(path, [make_finding()])
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["tool"] == "repro.analysis"
        entry = payload["findings"][0]
        assert entry["rule"] == "REP001"
        assert entry["count"] == 1
        assert entry["fingerprint"] == make_finding().fingerprint()


class TestSelect:
    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        report = analyze_paths([target], select=["REP003"])
        assert report.clean

    def test_unknown_rule_is_analysis_error(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        with pytest.raises(AnalysisError):
            analyze_paths([target], select=["REP999"])


class TestLintReport:
    def test_counts_by_rule_sorted(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            BAD_SOURCE + "\n\ndef worse(k):\n    raise ValueError(k)\n"
        )
        report = analyze_paths([target])
        assert report.counts_by_rule() == {"REP001": 1, "REP004": 1}
        assert not report.clean
        assert report.checked_files == [str(target)]
