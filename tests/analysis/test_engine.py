"""Engine plumbing: discovery, fingerprints, baseline round-trip."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    analyze_paths,
    discover_files,
)
from repro.exceptions import AnalysisError, ReproError

BAD_SOURCE = """\
import numpy as np


def sample():
    return np.random.default_rng().random()
"""


def make_finding(line=5, snippet="    return np.random.default_rng().random()"):
    return Finding(
        path="pkg/sample.py",
        line=line,
        col=12,
        rule_id="REP001",
        message="unseeded rng",
        snippet=snippet,
    )


class TestFingerprint:
    def test_stable_across_line_moves(self):
        """Edits above a finding must not churn the baseline."""
        assert make_finding(line=5).fingerprint() == make_finding(line=90).fingerprint()

    def test_whitespace_normalised(self):
        dense = make_finding(snippet="return  np.random.default_rng().random()")
        spaced = make_finding(
            snippet="  return np.random.default_rng().random()  "
        )
        assert dense.fingerprint() == spaced.fingerprint()

    def test_distinct_rules_distinct_fingerprints(self):
        other = Finding(
            path="pkg/sample.py",
            line=5,
            col=12,
            rule_id="REP003",
            message="unseeded rng",
            snippet="    return np.random.default_rng().random()",
        )
        assert make_finding().fingerprint() != other.fingerprint()


class TestDiscovery:
    def test_recurses_and_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("")
        (tmp_path / "top.py").write_text("y = 2\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["a.py", "top.py"]

    def test_missing_path_is_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            discover_files([tmp_path / "nowhere"])

    def test_analysis_error_is_repro_error(self):
        assert issubclass(AnalysisError, ReproError)


class TestBaselineRoundTrip:
    def test_save_load_partition(self, tmp_path):
        """Findings written to a baseline stop failing the run."""
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        baseline_path = tmp_path / "baseline.json"

        first = analyze_paths([target])
        assert len(first.findings) == 1 and not first.baselined

        baseline = Baseline()
        baseline.save(baseline_path, first.findings)
        assert len(baseline) == 1

        reloaded = Baseline.load(baseline_path)
        second = analyze_paths([target], baseline=reloaded)
        assert not second.findings
        assert len(second.baselined) == 1
        assert second.clean

    def test_baseline_is_a_multiset(self, tmp_path):
        """One grandfathered offence does not cover a second identical one."""
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        report = analyze_paths([target])
        baseline = Baseline.from_findings(report.findings)

        doubled = report.findings * 2
        new, old = baseline.partition(doubled)
        assert len(old) == 1 and len(new) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_corrupt_json_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_wrong_layout_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format_version": 99, "findings": []}))
        with pytest.raises(AnalysisError):
            Baseline.load(path)

    def test_saved_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline().save(path, [make_finding()])
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert payload["tool"] == "repro.analysis"
        entry = payload["findings"][0]
        assert entry["rule"] == "REP001"
        assert entry["count"] == 1
        assert entry["fingerprint"] == make_finding().fingerprint()


class TestSelect:
    def test_select_restricts_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SOURCE)
        report = analyze_paths([target], select=["REP003"])
        assert report.clean

    def test_unknown_rule_is_analysis_error(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        with pytest.raises(AnalysisError):
            analyze_paths([target], select=["REP999"])


class TestLintReport:
    def test_counts_by_rule_sorted(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            BAD_SOURCE + "\n\ndef worse(k):\n    raise ValueError(k)\n"
        )
        report = analyze_paths([target])
        assert report.counts_by_rule() == {"REP001": 1, "REP004": 1}
        assert not report.clean
        assert report.checked_files == [str(target)]


class TestPosixFingerprints:
    def test_windows_and_posix_paths_hash_identically(self):
        """Baselines recorded on Windows must match on POSIX (and back)."""
        import dataclasses

        windows = dataclasses.replace(make_finding(), path="pkg\\sample.py")
        posix = dataclasses.replace(make_finding(), path="pkg/sample.py")
        assert windows.posix_path() == posix.posix_path() == "pkg/sample.py"
        assert windows.fingerprint() == posix.fingerprint()

    def test_baseline_file_stores_posix_paths(self, tmp_path):
        import dataclasses

        finding = dataclasses.replace(make_finding(), path="pkg\\sample.py")
        baseline = Baseline()
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path, [finding])
        text = baseline_path.read_text()
        assert "pkg/sample.py" in text
        assert "\\\\" not in text


RNG_CALL = "np.random.default_rng().random()"


class TestPragmaPlacement:
    """Where a pragma may sit relative to the finding it silences."""

    def lint(self, source):
        from repro.analysis import analyze_source

        return analyze_source(source)

    def test_end_line_of_multiline_statement_covers(self):
        findings, n_suppressed = self.lint(
            "import numpy as np\n"
            "value = np.random.default_rng().random(\n"
            ")  # repro: ignore[REP001] -- demo fixture\n"
        )
        assert findings == []
        assert n_suppressed == 1

    def test_first_line_does_not_cover_inner_finding(self):
        """A pragma above the offending line must not act at a distance."""
        findings, n_suppressed = self.lint(
            "import numpy as np\n"
            "value = (  # repro: ignore[REP001] -- misplaced\n"
            f"    {RNG_CALL}\n"
            ")\n"
        )
        assert n_suppressed == 0
        rules = sorted(f.rule_id for f in findings)
        # The finding survives AND the stale pragma is itself flagged.
        assert rules == ["REP000", "REP001"]

    def test_decorator_line_pragma_covers_decorator_finding(self):
        findings, n_suppressed = self.lint(
            "import functools\n"
            "import numpy as np\n"
            f"@functools.lru_cache(maxsize=int({RNG_CALL} * 8))"
            "  # repro: ignore[REP001] -- demo fixture\n"
            "def cached():\n"
            "    return 1\n"
        )
        assert findings == []
        assert n_suppressed == 1

    def test_def_line_pragma_does_not_cover_decorator_finding(self):
        """Compound statements get no span fallback: a def-line pragma
        must not silence a finding on the decorator above it."""
        findings, n_suppressed = self.lint(
            "import functools\n"
            "import numpy as np\n"
            f"@functools.lru_cache(maxsize=int({RNG_CALL} * 8))\n"
            "def cached():  # repro: ignore[REP001] -- misplaced\n"
            "    return 1\n"
        )
        assert n_suppressed == 0
        assert sorted(f.rule_id for f in findings) == ["REP000", "REP001"]

    def test_pragma_on_blank_line_is_unused(self):
        findings, n_suppressed = self.lint(
            "# repro: ignore[REP001] -- nothing here\n"
            "x = 1\n"
        )
        assert n_suppressed == 0
        assert [f.rule_id for f in findings] == ["REP000"]
        assert "unused suppression" in findings[0].message
