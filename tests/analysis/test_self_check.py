"""The analyzer's own gate: ``src/`` lints clean with the repo baseline.

This is the test form of the CI lint job — if a change introduces a
violation of the file rules (REP001–REP005) **or** the whole-program
concurrency rules (REP101–REP104) anywhere under ``src/`` (or leaves a
stale pragma behind), it fails here before it fails in CI.
"""

from pathlib import Path

from repro.analysis import DEFAULT_BASELINE_NAME, Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_lints_clean():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    report = analyze_paths([SRC], baseline=baseline)
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert len(report.checked_files) > 50


def test_lock_model_fully_binds_src():
    """Every ``with <lock>:`` in src resolves to a known creation site —
    an unbound region would silently exempt that lock from REP101/102."""
    from repro.analysis import build_project

    _contexts, graph, model = build_project([SRC])
    assert model.unknown_regions == []
    assert len(model.sites) >= 5
    assert len(model.regions) >= 20


def test_committed_baseline_is_empty():
    """ISSUE 4 policy: the baseline exists for the future, holds nothing."""
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert len(baseline) == 0


def test_every_suppression_in_src_is_justified():
    """Redundant with REP000, but cheap and explicit: no mute buttons."""
    from repro.analysis import scan_suppressions

    for path in sorted(SRC.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        for pragma in scan_suppressions(path.read_text(encoding="utf-8")).values():
            assert pragma.justified, f"{path}:{pragma.line} lacks a justification"
            assert pragma.rule_ids, f"{path}:{pragma.line} names no rules"
