"""Reporter contracts: the text verdict line and the JSON schema."""

import json

from repro.analysis import analyze_paths, render_json, render_text
from repro.analysis.reporters import JSON_FORMAT_VERSION

BAD_SOURCE = """\
import numpy as np


def sample():
    return np.random.default_rng().random()
"""


def report_for(tmp_path, source=BAD_SOURCE):
    target = tmp_path / "sample.py"
    target.write_text(source)
    return analyze_paths([target])


class TestTextReporter:
    def test_finding_lines_and_verdict(self, tmp_path):
        text = render_text(report_for(tmp_path))
        assert "REP001" in text
        assert "sample.py:5:" in text
        assert "checked 1 file(s): 1 finding(s), 0 baselined, 0 suppressed" in text
        assert "[REP001=1]" in text

    def test_clean_run_has_no_rule_tally(self, tmp_path):
        text = render_text(report_for(tmp_path, source="x = 1\n"))
        assert text == "checked 1 file(s): 0 finding(s), 0 baselined, 0 suppressed"


class TestJsonReporter:
    def test_schema_keys(self, tmp_path):
        payload = json.loads(render_json(report_for(tmp_path)))
        assert set(payload) == {
            "format_version",
            "tool",
            "clean",
            "checked_files",
            "rules",
            "findings",
            "baselined",
            "summary",
        }
        assert payload["format_version"] == JSON_FORMAT_VERSION
        assert payload["tool"] == "repro.analysis"
        assert payload["clean"] is False
        assert payload["checked_files"] == 1

    def test_rules_catalog_covers_all_rules(self, tmp_path):
        payload = json.loads(render_json(report_for(tmp_path)))
        assert sorted(payload["rules"]) == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP101", "REP102", "REP103", "REP104",
        ]
        assert all(isinstance(v, str) and v for v in payload["rules"].values())

    def test_finding_entry_schema(self, tmp_path):
        payload = json.loads(render_json(report_for(tmp_path)))
        (entry,) = payload["findings"]
        assert set(entry) == {
            "path", "line", "col", "rule", "message", "snippet", "fingerprint",
        }
        assert entry["rule"] == "REP001"
        assert entry["line"] == 5
        assert entry["snippet"].strip().startswith("return")

    def test_summary_block(self, tmp_path):
        payload = json.loads(render_json(report_for(tmp_path)))
        assert payload["summary"] == {
            "total": 1,
            "by_rule": {"REP001": 1},
            "baselined": 0,
            "suppressed": 0,
        }

    def test_clean_payload(self, tmp_path):
        payload = json.loads(render_json(report_for(tmp_path, source="x = 1\n")))
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0
