"""CLI exit codes for both entry points.

``repro-study lint`` and ``python -m repro.analysis`` share one
argument surface; the contract is 0 = clean, 1 = findings, 2 = usage
or configuration error, and ``--json`` always parses.
"""

import json

import pytest

from repro.analysis.cli import main as analysis_main
from repro.cli import build_parser, main as study_main

CLEAN_SOURCE = "VERSION = 1\n"

BAD_SOURCE = """\
import numpy as np


def sample():
    return np.random.default_rng().random()
"""


@pytest.fixture
def clean_tree(tmp_path):
    tree = tmp_path / "clean"
    tree.mkdir()
    (tree / "ok.py").write_text(CLEAN_SOURCE)
    return tree


@pytest.fixture
def dirty_tree(tmp_path):
    tree = tmp_path / "dirty"
    tree.mkdir()
    (tree / "bad.py").write_text(BAD_SOURCE)
    return tree


def lint(args, tmp_path):
    """Run the standalone entry point with an isolated baseline path."""
    return analysis_main(
        [*args, "--baseline", str(tmp_path / "baseline.json")]
    )


class TestExitCodes:
    def test_clean_exits_zero(self, clean_tree, capsys):
        assert lint([str(clean_tree)], clean_tree) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert lint([str(dirty_tree)], dirty_tree) == 1
        assert "REP001" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        code = lint([str(clean_tree), "--select", "REP999"], clean_tree)
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint([str(tmp_path / "nowhere")], tmp_path) == 2
        assert "no such file" in capsys.readouterr().err


class TestJsonOutput:
    def test_json_is_parseable_and_carries_verdict(self, dirty_tree, capsys):
        assert lint([str(dirty_tree), "--json"], dirty_tree) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "REP001"

    def test_json_clean(self, clean_tree, capsys):
        assert lint([str(clean_tree), "--json"], clean_tree) == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True


class TestWriteBaseline:
    def test_write_then_rerun_is_clean(self, dirty_tree, capsys):
        assert lint([str(dirty_tree), "--write-baseline"], dirty_tree) == 0
        assert (dirty_tree / "baseline.json").exists()
        capsys.readouterr()
        assert lint([str(dirty_tree)], dirty_tree) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestStudyCliIntegration:
    def test_lint_subcommand_registered(self):
        assert "lint" in build_parser().format_help()

    def test_repro_study_lint_exit_codes(self, dirty_tree, clean_tree, capsys):
        baseline = str(dirty_tree / "baseline.json")
        assert (
            study_main(["lint", str(clean_tree), "--baseline", baseline]) == 0
        )
        assert (
            study_main(["lint", str(dirty_tree), "--baseline", baseline]) == 1
        )
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_repro_study_lint_json(self, dirty_tree, capsys):
        baseline = str(dirty_tree / "baseline.json")
        code = study_main(
            ["lint", str(dirty_tree), "--json", "--baseline", baseline]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["summary"]["total"] == 1


class TestChanged:
    """``--changed [REF]`` lints only files touched vs a git ref."""

    @staticmethod
    def git(repo, *argv):
        import subprocess

        subprocess.run(
            [
                "git",
                "-c", "user.email=t@example.invalid",
                "-c", "user.name=t",
                *argv,
            ],
            cwd=repo,
            check=True,
            capture_output=True,
        )

    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        repo = tmp_path / "repo"
        repo.mkdir()
        (repo / "clean.py").write_text(CLEAN_SOURCE)
        (repo / "bad.py").write_text(BAD_SOURCE)
        self.git(repo, "init", "--quiet")
        self.git(repo, "add", ".")
        self.git(repo, "commit", "--quiet", "-m", "seed")
        monkeypatch.chdir(repo)
        return repo

    def test_untouched_findings_are_skipped(self, git_repo, capsys):
        """bad.py has findings, but only clean.py was touched."""
        (git_repo / "clean.py").write_text(CLEAN_SOURCE + "OTHER = 2\n")
        assert analysis_main([".", "--changed"]) == 0
        assert "bad.py" not in capsys.readouterr().out

    def test_touched_bad_file_still_fails(self, git_repo, capsys):
        (git_repo / "bad.py").write_text(BAD_SOURCE + "\nX = 1\n")
        assert analysis_main([".", "--changed", "HEAD"]) == 1
        assert "bad.py" in capsys.readouterr().out

    def test_untracked_files_count_as_changed(self, git_repo, capsys):
        (git_repo / "fresh.py").write_text(BAD_SOURCE)
        assert analysis_main([".", "--changed"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_nothing_changed_is_clean_and_says_so(self, git_repo, capsys):
        assert analysis_main([".", "--changed"]) == 0
        assert "nothing to lint" in capsys.readouterr().err

    def test_outside_git_falls_back_to_full_lint(
        self, tmp_path, monkeypatch, capsys
    ):
        tree = tmp_path / "plain"
        tree.mkdir()
        (tree / "bad.py").write_text(BAD_SOURCE)
        monkeypatch.chdir(tree)
        monkeypatch.setenv("GIT_DIR", str(tree / "nonexistent.git"))
        assert analysis_main([".", "--changed"]) == 1
        assert "full lint" in capsys.readouterr().err
