"""Call graph + lock model construction (`repro.analysis.graph`/`locks`).

The whole-program rules are only as good as the graph under them, so
the resolution tiers are pinned here: direct calls, self-method calls,
receiver typing, alias-aware externals, and — critically — the honest
``unresolved`` bucket for what static analysis cannot know.
"""

import ast

from repro.analysis.graph import build_graph, module_name_for
from repro.analysis.locks import build_lock_model
from repro.analysis.rules import FileContext


def project(**files):
    """Build a ProjectGraph from ``name='source'`` keyword files."""
    contexts = {}
    for name, source in files.items():
        path = f"src/{name.replace('.', '/')}.py"
        contexts[path] = FileContext(path, source, ast.parse(source))
    return build_graph(contexts)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/obs/metrics.py") == "repro.obs.metrics"

    def test_init_collapses_to_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_bare_file_uses_stem(self):
        assert module_name_for("scratch/tool.py") == "tool"


class TestCallResolution:
    def test_direct_call_resolves(self):
        graph = project(mod="def helper():\n    pass\ndef caller():\n    helper()\n")
        calls = graph.calls["mod.caller"]
        assert [c.kind for c in calls] == ["direct"]
        assert calls[0].targets == ("mod.helper",)

    def test_self_method_resolves_through_class(self):
        graph = project(
            mod=(
                "class Service:\n"
                "    def run(self):\n"
                "        self.step()\n"
                "    def step(self):\n"
                "        pass\n"
            )
        )
        calls = graph.calls["mod.Service.run"]
        assert calls[0].targets == ("mod.Service.step",)

    def test_receiver_typing_from_constructor(self):
        graph = project(
            mod=(
                "class Engine:\n"
                "    def go(self):\n"
                "        pass\n"
                "def main():\n"
                "    engine = Engine()\n"
                "    engine.go()\n"
            )
        )
        calls = [c for c in graph.calls["mod.main"] if c.kind == "method"]
        assert calls and calls[0].targets == ("mod.Engine.go",)

    def test_imported_alias_is_external(self):
        graph = project(
            mod="import numpy as np\ndef sample():\n    return np.zeros(3)\n"
        )
        calls = graph.calls["mod.sample"]
        assert [c.kind for c in calls] == ["external"]

    def test_local_variable_call_lands_in_unresolved_bucket(self):
        graph = project(
            mod="def apply(fn):\n    return fn()\n"
        )
        assert len(graph.unresolved) == 1
        site = graph.unresolved[0]
        assert site.caller == "mod.apply"
        assert site.reason  # the bucket explains itself

    def test_cross_module_import_resolves(self):
        graph = project(
            **{
                "pkg.util": "def tool():\n    pass\n",
                "pkg.app": (
                    "from pkg.util import tool\n"
                    "def main():\n"
                    "    tool()\n"
                ),
            }
        )
        calls = graph.calls["pkg.app.main"]
        assert calls[0].targets == ("pkg.util.tool",)

    def test_to_dict_shape(self):
        graph = project(mod="def solo():\n    pass\n")
        payload = graph.to_dict()
        assert set(payload) >= {
            "modules",
            "functions",
            "classes",
            "call_edges",
            "external_calls",
            "unresolved_calls",
        }


class TestLockModel:
    def test_site_identity_and_region_binding(self):
        graph = project(
            mod=(
                "import threading\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def get(self):\n"
                "        with self._lock:\n"
                "            return 1\n"
            )
        )
        model = build_lock_model(graph)
        assert sorted(model.sites) == ["mod.Store._lock"]
        assert len(model.regions) == 1
        assert model.regions[0].site.lock_id == "mod.Store._lock"
        assert model.unknown_regions == []

    def test_lexical_nesting_records_order_edge(self):
        graph = project(
            mod=(
                "import threading\n"
                "a = threading.Lock()\n"
                "b = threading.Lock()\n"
                "def nest():\n"
                "    with a:\n"
                "        with b:\n"
                "            pass\n"
            )
        )
        model = build_lock_model(graph)
        assert ("mod.a", "mod.b") in model.order

    def test_interprocedural_order_edge(self):
        graph = project(
            mod=(
                "import threading\n"
                "a = threading.Lock()\n"
                "b = threading.Lock()\n"
                "def inner():\n"
                "    with b:\n"
                "        pass\n"
                "def outer():\n"
                "    with a:\n"
                "        inner()\n"
            )
        )
        model = build_lock_model(graph)
        edge = model.order.get(("mod.a", "mod.b"))
        assert edge is not None
        assert "mod.inner" in edge.chain

    def test_site_at_matches_by_suffix_and_line(self):
        graph = project(
            mod="import threading\nguard = threading.Lock()\n"
        )
        model = build_lock_model(graph)
        site = next(iter(model.sites.values()))
        found = model.site_at("/abs/prefix/" + site.rel_posix(), site.line)
        assert found is site
        assert model.site_at(site.rel_posix(), site.line + 999) is None
