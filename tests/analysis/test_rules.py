"""Per-rule fixtures: bad code finds, suppressed code passes.

Each rule gets at least one snippet that fails before suppression and
passes once a *justified* pragma is attached — the contract ISSUE 4's
acceptance criteria pin.
"""

import textwrap

from repro.analysis import ENGINE_RULE_ID, RULES, analyze_source


def findings_for(code, select=None):
    findings, _ = analyze_source(textwrap.dedent(code), select=select)
    return findings


def rule_ids(code, select=None):
    return [f.rule_id for f in findings_for(code, select)]


def assert_suppressible(code, rule_id):
    """The snippet's finding disappears under a justified pragma."""
    lines = textwrap.dedent(code).splitlines()
    flagged, _ = analyze_source("\n".join(lines))
    target = [f for f in flagged if f.rule_id == rule_id]
    assert target, f"fixture produced no {rule_id} finding to suppress"
    line_no = target[0].line
    lines[line_no - 1] += f"  # repro: ignore[{rule_id}] -- fixture-approved exception"
    cleaned, n_suppressed = analyze_source("\n".join(lines))
    assert not [f for f in cleaned if f.rule_id == rule_id]
    assert n_suppressed >= 1


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert sorted(RULES) == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
        ]

    def test_rules_have_descriptions(self):
        for rule in RULES.values():
            assert rule.name and rule.description


class TestREP001Determinism:
    def test_unseeded_default_rng_flagged(self):
        code = """
            import numpy as np

            def sample():
                return np.random.default_rng().random()
        """
        assert "REP001" in rule_ids(code)

    def test_seeded_default_rng_ok(self):
        code = """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).random()
        """
        assert "REP001" not in rule_ids(code)

    def test_module_level_np_random_flagged(self):
        code = """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.rand(3)
        """
        assert rule_ids(code).count("REP001") == 2

    def test_stdlib_random_flagged(self):
        code = """
            import random

            def sample():
                return random.random()
        """
        assert "REP001" in rule_ids(code)

    def test_generator_annotation_not_flagged(self):
        code = """
            import numpy as np

            def sample(rng: np.random.Generator) -> float:
                return rng.random()
        """
        assert "REP001" not in rule_ids(code)

    def test_local_variable_named_random_not_flagged(self):
        code = """
            def sample(random):
                return random.choice()
        """
        assert "REP001" not in rule_ids(code)

    def test_suppressible_with_justification(self):
        assert_suppressible(
            """
            import numpy as np

            def sample():
                return np.random.default_rng().random()
            """,
            "REP001",
        )


class TestREP002LockHygiene:
    def test_bare_acquire_release_flagged(self):
        code = """
            import threading

            lock = threading.Lock()

            def work():
                lock.acquire()
                try:
                    pass
                finally:
                    lock.release()
        """
        assert rule_ids(code).count("REP002") == 2

    def test_with_lock_ok(self):
        code = """
            import threading

            lock = threading.Lock()

            def work():
                with lock:
                    return 1
        """
        assert "REP002" not in rule_ids(code)

    def test_blocking_call_under_lock_flagged(self):
        code = """
            import threading
            import time

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        time.sleep(1.0)
        """
        assert "REP002" in rule_ids(code)

    def test_subprocess_under_lock_flagged(self):
        code = """
            import subprocess
            import threading

            _build_lock = threading.Lock()

            def build():
                with _build_lock:
                    subprocess.run(["cc"])
        """
        assert "REP002" in rule_ids(code)

    def test_blocking_call_in_nested_def_not_flagged(self):
        """Lexical scope only: defining a function under a lock is fine."""
        code = """
            import threading
            import time

            lock = threading.Lock()

            def work():
                with lock:
                    def later():
                        time.sleep(1.0)
                    return later
        """
        assert "REP002" not in rule_ids(code)

    def test_suppressible_with_justification(self):
        assert_suppressible(
            """
            import threading

            lock = threading.Lock()

            def work():
                lock.acquire()
            """,
            "REP002",
        )


class TestREP003NumericSafety:
    def test_computed_float_equality_flagged(self):
        code = """
            import numpy as np

            def degenerate(x):
                return np.std(x) == 0
        """
        assert "REP003" in rule_ids(code)

    def test_division_equality_flagged(self):
        code = """
            def check(a, b, c):
                return a / b == c
        """
        assert "REP003" in rule_ids(code)

    def test_non_integral_literal_flagged(self):
        code = """
            def check(x):
                return x == 0.3
        """
        assert "REP003" in rule_ids(code)

    def test_nan_literal_comparison_flagged(self):
        code = """
            def check(x):
                return x == float("nan")
        """
        findings = findings_for(code)
        assert any(
            f.rule_id == "REP003" and "isnan" in f.message for f in findings
        )

    def test_integral_sentinel_allowlisted(self):
        """The repo's sentinel pattern: bound value vs exact 0.0/1.0."""
        code = """
            def r_squared_guard(ss_total, expected):
                if ss_total == 0.0:
                    return float("nan")
                return expected == 1.0
        """
        assert "REP003" not in rule_ids(code)

    def test_int_comparisons_not_flagged(self):
        code = """
            def count_check(n, k):
                return n == 0 or n != k
        """
        assert "REP003" not in rule_ids(code)

    def test_suppressible_with_justification(self):
        assert_suppressible(
            """
            import numpy as np

            def degenerate(x):
                return np.std(x) == 0
            """,
            "REP003",
        )


class TestREP004ExceptionHygiene:
    def test_bare_except_flagged(self):
        code = """
            def swallow():
                try:
                    risky()
                except:
                    pass
        """
        assert "REP004" in rule_ids(code)

    def test_silent_broad_except_flagged(self):
        code = """
            def swallow():
                try:
                    risky()
                except Exception:
                    return None
        """
        assert "REP004" in rule_ids(code)

    def test_broad_except_that_reraises_ok(self):
        code = """
            def surface(metrics):
                try:
                    risky()
                except Exception:
                    metrics.count_error()
                    raise
        """
        assert "REP004" not in rule_ids(code)

    def test_broad_except_that_uses_exception_ok(self):
        code = """
            def surface(log):
                try:
                    risky()
                except Exception as exc:
                    log.warning("failed: %s", exc)
        """
        assert "REP004" not in rule_ids(code)

    def test_builtin_raise_flagged(self):
        code = """
            def configure(k):
                if k < 1:
                    raise ValueError(f"k must be >= 1, got {k}")
        """
        assert "REP004" in rule_ids(code)

    def test_repro_exception_raise_ok(self):
        code = """
            from repro.exceptions import ConfigurationError

            def configure(k):
                if k < 1:
                    raise ConfigurationError(f"k must be >= 1, got {k}")
        """
        assert "REP004" not in rule_ids(code)

    def test_type_error_allowlisted(self):
        """Programming errors stay builtin per the hierarchy's contract."""
        code = """
            def strict(x):
                if not isinstance(x, str):
                    raise TypeError("x must be a string")
                raise NotImplementedError
        """
        assert "REP004" not in rule_ids(code)

    def test_suppressible_with_justification(self):
        assert_suppressible(
            """
            def configure(k):
                raise ValueError(k)
            """,
            "REP004",
        )


class TestREP005ResourceHygiene:
    def test_unbound_open_flagged(self):
        code = """
            import json

            def load(path):
                return json.load(open(path))
        """
        assert "REP005" in rule_ids(code)

    def test_with_open_ok(self):
        code = """
            def load(path):
                with open(path) as handle:
                    return handle.read()
        """
        assert "REP005" not in rule_ids(code)

    def test_contextlib_closing_ok(self):
        code = """
            import socket
            from contextlib import closing

            def probe(host):
                with closing(socket.socket()) as sock:
                    return sock
        """
        assert "REP005" not in rule_ids(code)

    def test_cdll_outside_with_flagged(self):
        code = """
            import ctypes

            def load_kernel(path):
                return ctypes.CDLL(path)
        """
        assert "REP005" in rule_ids(code)

    def test_suppressible_with_justification(self):
        assert_suppressible(
            """
            import ctypes

            def load_kernel(path):
                return ctypes.CDLL(path)
            """,
            "REP005",
        )


class TestSuppressionHygiene:
    def test_unjustified_pragma_is_engine_finding(self):
        code = """
            import numpy as np

            def sample():
                return np.random.default_rng().random()  # repro: ignore[REP001]
        """
        findings = findings_for(code)
        assert [f.rule_id for f in findings] == [ENGINE_RULE_ID]
        assert "justification" in findings[0].message

    def test_unused_justified_pragma_is_engine_finding(self):
        code = """
            def fine():
                return 1  # repro: ignore[REP003] -- nothing here needs this
        """
        findings = findings_for(code)
        assert [f.rule_id for f in findings] == [ENGINE_RULE_ID]
        assert "unused" in findings[0].message

    def test_pragma_without_rule_list_is_engine_finding(self):
        code = """
            def fine():
                return 1  # repro: ignore -- blanket silence
        """
        assert ENGINE_RULE_ID in rule_ids(code)

    def test_pragma_inside_string_literal_ignored(self):
        code = '''
            PATTERN = "# repro: ignore[REP001] -- not a real pragma"
        '''
        assert findings_for(code) == []

    def test_syntax_error_is_engine_finding(self):
        findings, _ = analyze_source("def broken(:\n    pass\n")
        assert [f.rule_id for f in findings] == [ENGINE_RULE_ID]
        assert "parse" in findings[0].message
