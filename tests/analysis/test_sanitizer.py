"""Runtime lock-order sanitizer (`repro.analysis.sanitizer`).

The sanitizer only instruments locks *created* by modules matching the
configured prefixes — here ``tests`` — so these tests exercise real
patched ``threading`` factories without touching stdlib internals.
"""

import queue
import threading

import pytest

from repro.analysis import build_project, model_gaps, sanitize_locks
from repro.analysis.sanitizer import (
    LockOrderMonitor,
    ObservedEdge,
    ObservedSite,
    _InstrumentedLock,
)
from repro.exceptions import LockOrderViolation

PREFIXES = ("tests",)


class TestCycleDetection:
    def test_abba_cycle_raises_before_deadlocking(self):
        with sanitize_locks(strict=True, module_prefixes=PREFIXES) as monitor:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with pytest.raises(LockOrderViolation):
                    with a:
                        pass  # pragma: no cover - never reached
        assert len(monitor.violations) == 1
        # The violating acquisition was refused, not taken: both locks
        # are free afterwards.
        assert not a.locked()
        assert not b.locked()

    def test_non_strict_records_without_raising(self):
        with sanitize_locks(
            strict=False, module_prefixes=PREFIXES
        ) as monitor:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(monitor.violations) == 1

    def test_consistent_order_is_clean(self):
        with sanitize_locks(module_prefixes=PREFIXES) as monitor:
            a = threading.Lock()
            b = threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert monitor.violations == []
        assert len(monitor.observed_edges()) == 1
        assert monitor.n_acquisitions == 6

    def test_rlock_reentrancy_is_not_a_cycle(self):
        with sanitize_locks(module_prefixes=PREFIXES) as monitor:
            guard = threading.RLock()
            with guard:
                with guard:
                    pass
        assert monitor.violations == []


class TestInstrumentationScope:
    def test_stdlib_locks_left_alone(self):
        with sanitize_locks(module_prefixes=PREFIXES):
            channel = queue.Queue()
            own = threading.Lock()
            assert not isinstance(channel.mutex, _InstrumentedLock)
            assert isinstance(own, _InstrumentedLock)

    def test_factories_restored_after_exit(self):
        originals = (threading.Lock, threading.RLock, threading.Condition)
        with sanitize_locks(module_prefixes=PREFIXES):
            assert threading.Lock is not originals[0]
        assert (
            threading.Lock,
            threading.RLock,
            threading.Condition,
        ) == originals

    def test_condition_wait_notify_roundtrip(self):
        with sanitize_locks(module_prefixes=PREFIXES) as monitor:
            cond = threading.Condition()
            done = []

            def waiter():
                with cond:
                    while not done:
                        cond.wait(timeout=5)

            thread = threading.Thread(target=waiter)
            thread.start()
            with cond:
                done.append(1)
                cond.notify()
            thread.join(timeout=5)
            assert not thread.is_alive()
        assert monitor.violations == []


NESTING_SOURCE = (
    "import threading\n"
    "a = threading.Lock()\n"
    "b = threading.Lock()\n"
    "def nest():\n"
    "    with a:\n"
    "        with b:\n"
    "            pass\n"
)


def monitor_with_edge(path, src_line, dst_line):
    monitor = LockOrderMonitor()
    src = ObservedSite(path=path, line=src_line)
    dst = ObservedSite(path=path, line=dst_line)
    monitor.sites.update({src, dst})
    monitor.edges[ObservedEdge(src=src, dst=dst)] = 1
    return monitor


class TestModelCrossCheck:
    def test_observed_order_in_model_is_no_gap(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(NESTING_SOURCE)
        _contexts, _graph, model = build_project([mod])
        monitor = monitor_with_edge(str(mod), 2, 3)  # a -> b: modelled
        assert model_gaps(monitor, model) == []

    def test_order_missing_from_model_is_a_gap(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(NESTING_SOURCE)
        _contexts, _graph, model = build_project([mod])
        monitor = monitor_with_edge(str(mod), 3, 2)  # b -> a: not modelled
        gaps = model_gaps(monitor, model)
        assert len(gaps) == 1
        assert "missing from the static lock model" in gaps[0]

    def test_unknown_creation_site_is_a_gap(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(NESTING_SOURCE)
        _contexts, _graph, model = build_project([mod])
        monitor = monitor_with_edge(str(mod), 99, 2)
        gaps = model_gaps(monitor, model)
        assert len(gaps) == 1
        assert "no static creation site" in gaps[0]
