"""Whole-program rules REP101–REP104 against the committed fixtures.

Each fixture under ``fixtures/`` is a minimal program that triggers its
rule exactly once under the FULL rule set — so these tests double as
the precision contract: the fixtures must not trip any other rule.
"""

from pathlib import Path

from repro.analysis import analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name):
    """Full-rule-set findings for one fixture, references disabled."""
    report = analyze_paths([FIXTURES / name], refs=[])
    return report.findings


class TestFixturesFireExactlyOnce:
    def test_rep101_lock_order_cycle(self):
        findings = lint_fixture("rep101.py")
        assert [f.rule_id for f in findings] == ["REP101"]
        message = findings[0].message
        # Both acquisition paths are reported, not just the cycle.
        assert "rep101.lock_a -> rep101.lock_b" in message
        assert "rep101.lock_b -> rep101.lock_a" in message
        assert "via" in message

    def test_rep102_transitive_blocking(self):
        findings = lint_fixture("rep102.py")
        assert [f.rule_id for f in findings] == ["REP102"]
        message = findings[0].message
        # The whole call chain to the blocking call is printed.
        assert "rep102.refresh -> rep102.fetch -> rep102.do_io" in message
        assert "time.sleep" in message

    def test_rep103_unsynchronised_mutation(self):
        findings = lint_fixture("rep103.py")
        assert [f.rule_id for f in findings] == ["REP103"]
        finding = findings[0]
        assert "'count'" in finding.message
        # Anchored at the unlocked write in reset(), not in __init__.
        assert "self.count = 0" in finding.snippet
        assert finding.line > 20

    def test_rep104_orphan_literal(self):
        findings = lint_fixture("rep104.py")
        assert [f.rule_id for f in findings] == ["REP104"]
        message = findings[0].message
        assert "repro_fixture_orphan_total" in message
        # The covered name must NOT be flagged.
        assert "repro_fixture_covered_total" not in message


class TestRulePrecision:
    def test_consistent_order_is_clean(self):
        findings, _ = analyze_source(
            "import threading\n"
            "a = threading.Lock()\n"
            "b = threading.Lock()\n"
            "def inner():\n"
            "    with b:\n"
            "        return 1\n"
            "def outer():\n"
            "    with a:\n"
            "        return inner()\n"
            "def also_outer():\n"
            "    with a:\n"
            "        with b:\n"
            "            return 2\n"
        )
        assert [f.rule_id for f in findings] == []

    def test_direct_blocking_is_rep002_not_rep102(self):
        """Lexically-direct blocking stays the per-file rule's finding."""
        findings, _ = analyze_source(
            "import threading\n"
            "import time\n"
            "lock = threading.Lock()\n"
            "def slow():\n"
            "    with lock:\n"
            "        time.sleep(1)\n"
        )
        assert [f.rule_id for f in findings] == ["REP002"]

    def test_lock_guarded_class_without_races_is_clean(self):
        findings, _ = analyze_source(
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        assert [f.rule_id for f in findings] == []

    def test_project_rules_are_pragma_suppressible(self):
        source = (
            "import threading\n"
            "import time\n"
            "lock = threading.Lock()\n"
            "def do_io():\n"
            "    time.sleep(1)\n"
            "def refresh():\n"
            "    with lock:  # repro: ignore[REP102] -- fixture wants it\n"
            "        do_io()\n"
        )
        findings, n_suppressed = analyze_source(source)
        assert findings == []
        assert n_suppressed == 1

    def test_rep104_respects_reference_corpus(self, tmp_path):
        emitter = tmp_path / "emitter.py"
        emitter.write_text(
            'def publish(m):\n    m.family("repro_ref_total", "x")\n'
        )
        refs = tmp_path / "refs"
        refs.mkdir()
        (refs / "scrape.py").write_text('WANT = "repro_ref_total"\n')
        flagged = analyze_paths([emitter], refs=[]).findings
        covered = analyze_paths([emitter], refs=[refs]).findings
        assert [f.rule_id for f in flagged] == ["REP104"]
        assert covered == []
