"""The /v1/route/* serving contract, end to end over HTTP.

Acceptance pins (ISSUE 7): ``/v1/route/safest`` returns an aggregated
risk ≤ the shortest route's for the same pair, responses are
bit-reproducible for a fixed seed + artefact checksum, each request
produces one connected trace tree, and RouteStore hits/misses surface
in ``/metrics`` in both JSON and Prometheus form.
"""

import json
import urllib.error
import urllib.request

import time

import pytest

from repro.obs.prometheus import validate_exposition
from repro.obs.trace import Tracer
from repro.routing import RoutePlanner
from repro.serving import ScoringService


@pytest.fixture()
def route_service(routing_model_dir, small_dataset):
    planner = RoutePlanner(small_dataset, n_clusters=8, cluster_seed=0)
    service = ScoringService(
        routing_model_dir,
        port=0,
        max_wait_ms=25.0,
        route_planner=planner,
        tracer=Tracer(max_spans=None),
    )
    with service.start() as svc:
        yield svc


@pytest.fixture()
def plain_service(routing_model_dir):
    with ScoringService(routing_model_dir, port=0).start() as svc:
        yield svc


def _get(service, path):
    with urllib.request.urlopen(service.url + path, timeout=10) as response:
        return json.loads(response.read())


def _get_text(service, path):
    with urllib.request.urlopen(service.url + path, timeout=10) as response:
        return response.read().decode("utf-8")


def _post(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _error(service, method, path, payload=None) -> tuple[int, dict]:
    try:
        if method == "GET":
            _get(service, path)
        else:
            _post(service, path, payload or {})
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    raise AssertionError("expected an HTTP error")


class TestTownsEndpoint:
    def test_towns_directory(self, route_service):
        body = _get(route_service, "/v1/route/towns")
        towns = body["towns"]
        assert len(towns) == 12
        assert [t["town_id"] for t in towns] == list(range(12))
        assert all(
            set(t) == {"town_id", "name", "x", "y", "population"}
            for t in towns
        )

    def test_routing_disabled_is_404_with_hint(self, plain_service):
        code, body = _error(plain_service, "GET", "/v1/route/towns")
        assert code == 404
        assert "--routes" in body["error"]
        code, body = _error(
            plain_service,
            "POST",
            "/v1/route/safest",
            {"from": "town_000", "to": "town_005"},
        )
        assert code == 404


class TestRouteScore:
    def test_pair_breakdown(self, route_service, routing_checksum):
        body = _post(
            route_service,
            "/v1/route/score",
            {"from": "town_000", "to": "town_005", "alpha": 0.3},
        )
        assert body["model"] == "cp8"
        assert body["checksum"] == routing_checksum
        assert body["origin"] == "town_000"
        assert body["destination"] == "town_005"
        route = body["route"]
        assert route["towns"][0] == "town_000"
        assert route["towns"][-1] == "town_005"
        assert route["length_km"] > 0
        assert route["expected_crashes"] > 0
        assert 0.0 <= route["worst_segment_probability"] <= 1.0
        assert route["hotspot_crossings"] >= 0
        assert route["n_legs"] == len(route["route_ids"])

    def test_explicit_path(self, route_service):
        pair = _post(
            route_service,
            "/v1/route/score",
            {"from": "town_000", "to": "town_005"},
        )
        body = _post(
            route_service,
            "/v1/route/score",
            {"path": pair["route"]["towns"]},
        )
        assert body["route"]["route_ids"] == pair["route"]["route_ids"]

    def test_bad_request_is_400(self, route_service):
        code, body = _error(
            route_service, "POST", "/v1/route/score", {"from": "town_000"}
        )
        assert code == 400
        assert "to" in body["error"]
        code, body = _error(
            route_service,
            "POST",
            "/v1/route/score",
            {"from": "town_000", "to": "nowhere"},
        )
        assert code == 400


class TestRouteSafest:
    def test_safest_risk_bounded_by_shortest(self, route_service):
        body = _post(
            route_service,
            "/v1/route/safest",
            {"from": "town_001", "to": "town_002", "alpha": 0.9, "k": 4},
        )
        assert (
            body["safest"]["expected_crashes"]
            <= body["shortest"]["expected_crashes"]
        )
        assert body["risk_reduction"] >= 0
        assert body["n_alternatives"] >= 1

    def test_bit_reproducible_for_fixed_artefact(self, route_service):
        payload = {"from": "town_000", "to": "town_005", "k": 3}
        first = _post(route_service, "/v1/route/safest", payload)
        second = _post(route_service, "/v1/route/safest", payload)
        assert first == second


class TestObservability:
    def test_store_counters_in_json_metrics(self, route_service):
        payload = {"from": "town_000", "to": "town_005"}
        _post(route_service, "/v1/route/safest", payload)
        _post(route_service, "/v1/route/safest", payload)
        body = _get(route_service, "/metrics")
        routing = body["routing"]
        assert routing["store"]["misses"] >= 1
        assert routing["store"]["hits"] >= 1
        assert routing["graph_builds"] == 1
        assert routing["plans"]["safest"] == 2

    def test_prometheus_series_present_and_valid(self, route_service):
        _post(
            route_service,
            "/v1/route/safest",
            {"from": "town_000", "to": "town_005"},
        )
        text = _get_text(route_service, "/metrics?format=prometheus")
        validate_exposition(text)
        for series in (
            "repro_route_graph_builds_total",
            'repro_route_plans_total{kind="safest"}',
            "repro_route_store_hits_total",
            "repro_route_store_misses_total",
            "repro_route_store_entries",
            "repro_route_graphs_cached",
            "repro_route_hotspot_clusters",
        ):
            assert series in text, series

    def test_plain_service_omits_routing_metrics(self, plain_service):
        body = _get(plain_service, "/metrics")
        assert "routing" not in body
        text = _get_text(plain_service, "/metrics?format=prometheus")
        assert "repro_route_" not in text

    def test_request_trace_is_one_connected_tree(self, route_service):
        _post(
            route_service,
            "/v1/route/safest",
            {"from": "town_003", "to": "town_008"},
        )
        # The http.request span closes just after the response bytes
        # ship; poll briefly rather than race it.
        deadline = time.monotonic() + 5.0
        safest = []
        while not safest and time.monotonic() < deadline:
            spans = route_service.tracer.finished()
            safest = [
                s
                for s in spans
                if s.name == "http.request"
                and s.attrs.get("path") == "/v1/route/safest"
            ]
            if not safest:
                time.sleep(0.02)
        assert safest
        root = safest[-1]
        tree = [s for s in spans if s.trace_id == root.trace_id]
        names = {s.name for s in tree}
        assert {"http.request", "routing.plan", "routing.search"} <= names
        by_id = {s.span_id for s in tree}
        for s in tree:
            if s.parent_id is not None:
                assert s.parent_id in by_id
