"""Route queries: the safest-route invariant and search determinism.

The load-bearing property (pinned by the serving acceptance contract):
for *every* town pair, alpha and k, the safest plan's aggregated risk
is less than or equal to the shortest plan's, because the shortest
path is always in the candidate set.  Hypothesis sweeps the pair/alpha
space; the goldens pin one known-divergent pair.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RoutingError
from repro.routing import (
    MAX_ALTERNATIVES,
    best_route,
    k_alternative_routes,
    safest_route,
    score_town_path,
    shortest_route,
)

# The session graph has 12 towns and is fully connected, so any
# distinct pair is routable.
town_ids = st.integers(min_value=0, max_value=11)
alphas = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestSafestInvariant:
    @settings(max_examples=60, deadline=None)
    @given(origin=town_ids, dest=town_ids, alpha=alphas,
           k=st.integers(min_value=1, max_value=4))
    def test_safest_risk_never_exceeds_shortest(
        self, risk_graph, origin, dest, alpha, k
    ):
        if origin == dest:
            return
        result = safest_route(risk_graph, origin, dest, alpha=alpha, k=k)
        assert (
            result.safest.expected_crashes
            <= result.shortest.expected_crashes
        )
        # The shortest plan really is the alpha=0 optimum.
        assert result.shortest.towns == shortest_route(
            risk_graph, origin, dest
        ).towns

    @settings(max_examples=30, deadline=None)
    @given(origin=town_ids, dest=town_ids, alpha=alphas)
    def test_deterministic_across_runs(
        self, risk_graph, origin, dest, alpha
    ):
        if origin == dest:
            return
        a = safest_route(risk_graph, origin, dest, alpha=alpha, k=3)
        b = safest_route(risk_graph, origin, dest, alpha=alpha, k=3)
        assert a == b

    def test_known_divergent_pair_golden(self, risk_graph):
        """Session-dataset golden: a pair where avoiding risk pays."""
        result = safest_route(risk_graph, 1, 2, alpha=0.9, k=4)
        assert result.shortest.towns == (
            "town_001", "town_006", "town_007", "town_002"
        )
        assert result.safest.towns == (
            "town_001", "town_006", "town_000", "town_007", "town_002"
        )
        assert result.safest.expected_crashes == pytest.approx(
            148.373965, abs=1e-6
        )
        assert result.shortest.expected_crashes == pytest.approx(
            149.957141, abs=1e-6
        )
        assert result.to_dict()["risk_reduction"] == pytest.approx(
            1.583177, abs=1e-6
        )


class TestAlternatives:
    def test_alternatives_are_loopless_and_distinct(self, risk_graph):
        plans = k_alternative_routes(risk_graph, 0, 5, alpha=0.3, k=4)
        assert 1 <= len(plans) <= 4
        seen = set()
        for plan in plans:
            assert len(set(plan.towns)) == len(plan.towns)
            assert plan.route_ids not in seen
            seen.add(plan.route_ids)
        costs = [p.cost for p in plans]
        assert costs == sorted(costs)

    def test_best_route_minimises_blended_cost(self, risk_graph):
        best = best_route(risk_graph, 0, 5, alpha=0.3)
        for alt in k_alternative_routes(risk_graph, 0, 5, alpha=0.3, k=4):
            assert best.cost <= alt.cost + 1e-12

    def test_k_bounds(self, risk_graph):
        with pytest.raises(RoutingError, match="k must be"):
            k_alternative_routes(risk_graph, 0, 1, k=0)
        with pytest.raises(RoutingError, match="k must be"):
            safest_route(risk_graph, 0, 1, k=MAX_ALTERNATIVES + 1)


class TestScorePath:
    def test_explicit_path_matches_search_aggregates(self, risk_graph):
        found = shortest_route(risk_graph, 0, 5)
        ids = [
            risk_graph.town_names.index(name) for name in found.towns
        ]
        rescored = score_town_path(risk_graph, ids, alpha=0.0)
        assert rescored.length_km == pytest.approx(found.length_km)
        assert rescored.expected_crashes == pytest.approx(
            found.expected_crashes
        )
        assert rescored.route_ids == found.route_ids

    def test_disconnected_step_rejected(self, risk_graph):
        g = risk_graph
        # Find a pair with no direct edge.
        for v in range(1, g.n_towns):
            towns, _ = g.neighbours(0)
            if v not in set(towns.tolist()):
                with pytest.raises(RoutingError, match="not directly"):
                    score_town_path(g, [0, v])
                return
        pytest.skip("town 0 is adjacent to every other town")

    def test_short_and_repeated_paths_rejected(self, risk_graph):
        with pytest.raises(RoutingError, match="at least 2"):
            score_town_path(risk_graph, [0])
        with pytest.raises(RoutingError, match="repeats town"):
            score_town_path(risk_graph, [0, 0])


class TestValidation:
    def test_same_town_pair_rejected(self, risk_graph):
        with pytest.raises(RoutingError, match="same town"):
            shortest_route(risk_graph, 3, 3)

    def test_out_of_range_town(self, risk_graph):
        with pytest.raises(RoutingError, match="out of range"):
            shortest_route(risk_graph, 0, 99)

    def test_non_integer_town(self, risk_graph):
        with pytest.raises(RoutingError, match="must be an integer"):
            shortest_route(risk_graph, 0, "town_001")
