"""Routing fixtures: one scorer, its graph, and a planner factory.

The scorer and graph are session-scoped (training and graph lowering
are deterministic, so sharing is safe and keeps the suite fast); tests
that assert on planner counters build their own planner instead.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import CrashPronenessScorer
from repro.routing import RoutePlanner


@pytest.fixture(scope="session")
def routing_scorer(small_dataset) -> CrashPronenessScorer:
    return CrashPronenessScorer.train(
        small_dataset.crash_instances,
        threshold=8,
        seed=11,
        metadata={"note": "routing-tests"},
    )


@pytest.fixture(scope="session")
def routing_checksum(routing_scorer) -> str:
    return routing_scorer.to_dict()["checksum"]


@pytest.fixture(scope="session")
def session_planner(small_dataset) -> RoutePlanner:
    """Shared read-mostly planner for query-level tests."""
    return RoutePlanner(small_dataset, n_clusters=8, cluster_seed=0)


@pytest.fixture(scope="session")
def risk_graph(session_planner, routing_scorer, routing_checksum):
    return session_planner.graph_for(routing_scorer, routing_checksum)


@pytest.fixture()
def fresh_planner(small_dataset) -> RoutePlanner:
    """A planner with untouched counters, for cache/metrics tests."""
    return RoutePlanner(small_dataset, n_clusters=8, cluster_seed=0)


@pytest.fixture(scope="session")
def routing_model_dir(tmp_path_factory, routing_scorer):
    path = tmp_path_factory.mktemp("routing-models")
    routing_scorer.save(path / "cp8.json")
    return path
