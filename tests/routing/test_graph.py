"""RiskGraph lowering: determinism goldens and structural invariants.

The goldens pin the graph built from the session dataset (2500
segments, 12 towns, seed 42) scored by the session CP-8 scorer
(seed 11).  If any of these move, the routing data plane is no longer
a pure function of ``(network, scores)`` — every cached route and
precomputed artefact would silently go stale.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, RoutingError
from repro.routing import COST_FLOOR, RiskGraph


def _build(planner, scorer, checksum):
    return planner._build_graph(scorer, checksum)


class TestGoldens:
    """Pinned values for the session dataset + artefact."""

    def test_describe_golden(self, risk_graph):
        d = risk_graph.describe()
        assert d["towns"] == 12
        assert d["edges"] == 15
        assert d["scored_segments"] == 2117
        assert d["total_length_km"] == pytest.approx(
            4048.022850780937, rel=1e-9
        )
        assert d["total_expected_crashes"] == pytest.approx(
            776.3382988247012, rel=1e-9
        )
        assert d["mean_probability"] == pytest.approx(
            0.2215610005196131, rel=1e-9
        )
        assert d["risk_scale"] == pytest.approx(
            5.214251128546976, rel=1e-9
        )

    def test_edge_cost_golden(self, risk_graph):
        got = [round(float(x), 6) for x in risk_graph.edge_costs(0.3)[:6]]
        assert got == [
            20.275547,
            193.418052,
            232.613685,
            536.941111,
            361.349846,
            208.096306,
        ]

    def test_rebuild_is_bit_identical(
        self, session_planner, routing_scorer, routing_checksum, risk_graph
    ):
        """Two independent builds produce byte-equal arrays."""
        again = _build(session_planner, routing_scorer, routing_checksum)
        for name in (
            "edge_length",
            "edge_risk",
            "edge_worst",
            "edge_hotspot",
            "edge_scored",
            "edge_u",
            "edge_v",
            "indptr",
            "adj_towns",
            "adj_edges",
        ):
            np.testing.assert_array_equal(
                getattr(again, name), getattr(risk_graph, name), err_msg=name
            )
        assert again.town_names == risk_graph.town_names
        assert again.risk_scale == risk_graph.risk_scale


class TestStructure:
    def test_csr_adjacency_is_symmetric_and_sorted(self, risk_graph):
        g = risk_graph
        assert int(g.indptr[-1]) == 2 * g.n_edges
        for town in range(g.n_towns):
            towns, edges = g.neighbours(town)
            pairs = list(zip(towns.tolist(), edges.tolist()))
            assert pairs == sorted(pairs)
            for neighbour, e in pairs:
                assert town in (int(g.edge_u[e]), int(g.edge_v[e]))
                assert neighbour in (int(g.edge_u[e]), int(g.edge_v[e]))

    def test_edge_risk_is_mean_probability_times_length(self, risk_graph):
        g = risk_graph
        # Every edge in this network has scored segments, so risk is
        # bounded by length (probabilities are in [0, 1]).
        assert (g.edge_scored > 0).all()
        assert (g.edge_risk <= g.edge_length + 1e-12).all()
        assert (g.edge_risk >= 0).all()

    def test_alpha_endpoints(self, risk_graph):
        g = risk_graph
        np.testing.assert_allclose(
            g.edge_costs(0.0), np.maximum(g.edge_length, COST_FLOOR)
        )
        np.testing.assert_allclose(
            g.edge_costs(1.0),
            np.maximum(g.edge_risk * g.risk_scale, COST_FLOOR),
        )

    def test_costs_never_zero(self, risk_graph):
        for alpha in (0.0, 0.3, 1.0):
            assert (risk_graph.edge_costs(alpha) >= COST_FLOOR).all()

    def test_alpha_validation(self, risk_graph):
        with pytest.raises(ConfigurationError, match="in \\[0, 1\\]"):
            risk_graph.edge_costs(1.5)
        with pytest.raises(ConfigurationError, match="must be a number"):
            risk_graph.edge_costs("0.3")
        with pytest.raises(ConfigurationError, match="must be a number"):
            risk_graph.edge_costs(True)


class TestBuildValidation:
    def test_mismatched_lengths(self, small_dataset, routing_checksum):
        with pytest.raises(RoutingError, match="segment ids"):
            RiskGraph.build(
                small_dataset.network,
                np.array([0, 1]),
                np.array([0.5]),
                checksum=routing_checksum,
            )

    def test_unknown_segment(self, small_dataset, routing_checksum):
        with pytest.raises(RoutingError, match="not in the network"):
            RiskGraph.build(
                small_dataset.network,
                np.array([10**9]),
                np.array([0.5]),
                checksum=routing_checksum,
            )
