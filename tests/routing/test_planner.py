"""RoutePlanner: graph caching, response cache, hot-reload purge.

These tests use the function-scoped ``fresh_planner`` so counter
assertions start from zero.
"""

import pytest

from repro.exceptions import ConfigurationError, RoutingError
from repro.obs.trace import Tracer, use_tracer


class TestGraphCache:
    def test_graph_built_once_per_checksum(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        a = fresh_planner.graph_for(routing_scorer, routing_checksum)
        b = fresh_planner.graph_for(routing_scorer, routing_checksum)
        assert a is b
        assert fresh_planner.stats()["graph_builds"] == 1
        assert fresh_planner.stats()["graphs_cached"] == 1

    def test_hot_reload_purges_superseded_artefact(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        planner = fresh_planner
        planner.plan_pair(
            routing_scorer, routing_checksum, "town_000", "town_005",
            model="cp8",
        )
        assert len(planner.store) == 1
        # Same registry name, new checksum → the old artefact's graph
        # and cached routes must go.
        planner.graph_for(routing_scorer, "new-checksum", model="cp8")
        stats = planner.stats()
        assert stats["store"]["invalidations"] == 1
        assert len(planner.store) == 0
        assert routing_checksum not in planner._graphs


class TestResponseCache:
    def test_cached_response_is_identical(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        first = fresh_planner.plan_safest(
            routing_scorer, routing_checksum, "town_000", "town_005"
        )
        second = fresh_planner.plan_safest(
            routing_scorer, routing_checksum, "town_000", "town_005"
        )
        assert second is first
        stats = fresh_planner.stats()
        assert stats["store"]["hits"] == 1
        assert stats["store"]["misses"] == 1
        assert stats["plans"]["safest"] == 2

    def test_alpha_and_k_key_the_cache(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        a = fresh_planner.plan_pair(
            routing_scorer, routing_checksum, "town_000", "town_005",
            alpha=0.1,
        )
        b = fresh_planner.plan_pair(
            routing_scorer, routing_checksum, "town_000", "town_005",
            alpha=0.9,
        )
        assert a is not b
        assert fresh_planner.stats()["store"]["misses"] == 2

    def test_town_names_and_ids_resolve_to_one_entry(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        """Keys are canonical town ids, not the caller's spelling."""
        by_name = fresh_planner.plan_pair(
            routing_scorer, routing_checksum, "town_000", "town_005"
        )
        by_id = fresh_planner.plan_pair(
            routing_scorer, routing_checksum, 0, 5
        )
        assert by_id is by_name


class TestPrecompute:
    def test_precompute_fills_store_deterministically(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        pairs = fresh_planner.popular_pairs(limit=4)
        assert pairs == fresh_planner.popular_pairs(limit=4)
        n = fresh_planner.precompute(
            routing_scorer, routing_checksum, pairs=pairs
        )
        assert n == 8  # safest + best per pair
        stats = fresh_planner.stats()
        assert stats["store"]["precomputed"] == 8
        assert stats["store"]["entries"] == 8
        # Serving those pairs now hits the store.
        fresh_planner.plan_safest(
            routing_scorer, routing_checksum, *pairs[0]
        )
        assert fresh_planner.stats()["store"]["hits"] == 1

    def test_top_risk_routes_sorted_worst_first(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        rows = fresh_planner.top_risk_routes(
            routing_scorer, routing_checksum, limit=5
        )
        assert len(rows) == 5
        risks = [row["expected_crashes"] for row in rows]
        assert risks == sorted(risks, reverse=True)


class TestTracing:
    def test_plan_produces_connected_span_tree(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        tracer = Tracer()
        with use_tracer(tracer):
            fresh_planner.plan_safest(
                routing_scorer, routing_checksum, "town_000", "town_005"
            )
        spans = tracer.finished()
        names = {span.name for span in spans}
        assert {"routing.plan", "routing.build", "routing.search"} <= names
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "routing.plan"
        assert len({span.trace_id for span in spans}) == 1
        children = [
            span for span in spans if span.parent_id == roots[0].span_id
        ]
        assert children


class TestValidation:
    def test_bad_alpha_and_k(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        with pytest.raises(RoutingError, match="'alpha'"):
            fresh_planner.plan_pair(
                routing_scorer, routing_checksum, 0, 5, alpha="high"
            )
        with pytest.raises(RoutingError, match="'k'"):
            fresh_planner.plan_safest(
                routing_scorer, routing_checksum, 0, 5, k=0
            )

    def test_unknown_town(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        with pytest.raises(ConfigurationError, match="town"):
            fresh_planner.plan_pair(
                routing_scorer, routing_checksum, "atlantis", "town_005"
            )

    def test_empty_path(
        self, fresh_planner, routing_scorer, routing_checksum
    ):
        with pytest.raises(RoutingError, match="non-empty"):
            fresh_planner.score_path(routing_scorer, routing_checksum, [])

    def test_config_bounds(self, small_dataset):
        from repro.routing import RoutePlanner

        with pytest.raises(ConfigurationError, match="n_jobs"):
            RoutePlanner(small_dataset, n_jobs=0)
        with pytest.raises(ConfigurationError, match="max_graphs"):
            RoutePlanner(small_dataset, max_graphs=0)
        with pytest.raises(ConfigurationError, match="default_alpha"):
            RoutePlanner(small_dataset, default_alpha=2.0)
