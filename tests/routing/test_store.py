"""RouteStore: LRU behaviour, counters, checksum invalidation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.routing import RouteStore


def key(checksum, n):
    return (checksum, "score", n, n + 1, 0.3)


class TestLookupInsert:
    def test_miss_then_hit(self):
        store = RouteStore(capacity=4)
        assert store.lookup(key("a", 0)) is None
        store.insert(key("a", 0), {"route": 1})
        assert store.lookup(key("a", 0)) == {"route": 1}
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_hit_returns_same_object(self):
        """Cache hits ship the exact dict that filled the entry, so a
        hit is byte-identical to the original response."""
        store = RouteStore(capacity=4)
        value = {"route": {"towns": ["a", "b"]}}
        store.insert(key("a", 0), value)
        assert store.lookup(key("a", 0)) is value

    def test_lru_eviction_order(self):
        store = RouteStore(capacity=2)
        store.insert(key("a", 0), {"v": 0})
        store.insert(key("a", 1), {"v": 1})
        store.lookup(key("a", 0))  # refresh 0 → 1 is now oldest
        store.insert(key("a", 2), {"v": 2})
        assert store.lookup(key("a", 1)) is None
        assert store.lookup(key("a", 0)) == {"v": 0}
        assert store.lookup(key("a", 2)) == {"v": 2}


class TestInvalidation:
    def test_invalidate_checksum_drops_only_that_artefact(self):
        store = RouteStore(capacity=8)
        store.insert(key("old", 0), {"v": 0})
        store.insert(key("old", 1), {"v": 1})
        store.insert(key("new", 0), {"v": 2})
        assert store.invalidate_checksum("old") == 2
        assert len(store) == 1
        assert store.lookup(key("new", 0)) == {"v": 2}
        assert store.stats()["invalidations"] == 2

    def test_clear_counts_as_invalidation(self):
        store = RouteStore(capacity=8)
        store.insert(key("a", 0), {"v": 0})
        assert store.clear() == 1
        assert len(store) == 0
        assert store.stats()["invalidations"] == 1


class TestCounters:
    def test_precompute_accounting(self):
        store = RouteStore(capacity=8)
        store.insert(key("a", 0), {"v": 0}, precomputed=True)
        store.note_precomputed(3)
        assert store.stats()["precomputed"] == 4

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            RouteStore(capacity=0)
