"""Tracer semantics: nesting, parenting, error status, bounds."""

import threading

import pytest

from repro.obs import (
    Span,
    SpanContext,
    Tracer,
    current_context,
    current_tracer,
    get_default_tracer,
    set_default_tracer,
    span,
    use_tracer,
)
from repro.exceptions import ObservabilityError


class TestTracerBasics:
    def test_nested_spans_share_trace_and_link_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.finished()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert all(s.duration >= 0.0 for s in spans)
        assert all(s.status == "ok" for s in spans)

    def test_sibling_spans_get_distinct_ids(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.span_id != b.span_id
        assert a.parent_id == b.parent_id

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer()
        shipped = SpanContext(trace_id="t" * 32, span_id="p" * 16)
        with tracer.span("ambient"):
            with tracer.span("child", parent=shipped) as child:
                pass
        assert child.trace_id == shipped.trace_id
        assert child.parent_id == shipped.span_id

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (recorded,) = tracer.finished()
        assert recorded.status == "error"
        assert recorded.error_type == "ValueError"

    def test_attrs_are_recorded(self):
        tracer = Tracer()
        with tracer.span("stage.fit", threshold=8, backend="serial"):
            pass
        (recorded,) = tracer.finished()
        assert recorded.attrs == {"threshold": 8, "backend": "serial"}

    def test_drain_empties_the_buffer(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        assert [s.name for s in tracer.drain()] == ["one"]
        assert tracer.finished() == []

    def test_absorb_adopts_foreign_spans(self):
        tracer = Tracer()
        foreign = Span(name="worker", trace_id="t" * 32, span_id="w" * 16)
        tracer.absorb([foreign])
        assert tracer.finished() == [foreign]

    def test_sink_receives_each_finished_span(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in seen] == ["inner", "outer"]


class TestDisabledTracer:
    def test_span_is_noop_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as handle:
            assert handle is None
        assert len(tracer) == 0
        assert tracer.current_context() is None

    def test_default_tracer_is_disabled(self):
        assert not get_default_tracer().enabled
        with span("library.site") as handle:
            assert handle is None


class TestRingBuffer:
    def test_oldest_spans_drop_beyond_capacity(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer(max_spans=None)
        for i in range(100):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 100
        assert tracer.dropped == 0


class TestContextPlumbing:
    def test_use_tracer_scopes_the_active_tracer(self):
        tracer = Tracer()
        before = current_tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with span("scoped"):
                pass
        assert current_tracer() is before
        assert [s.name for s in tracer.finished()] == ["scoped"]

    def test_set_default_tracer_swaps_and_restores(self):
        tracer = Tracer()
        previous = set_default_tracer(tracer)
        try:
            with span("global"):
                pass
        finally:
            assert set_default_tracer(previous) is tracer
        assert [s.name for s in tracer.finished()] == ["global"]

    def test_current_context_reflects_the_open_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_context() is None
            with tracer.span("open") as open_span:
                ctx = current_context()
                assert ctx == open_span.context()
            assert current_context() is None

    def test_context_does_not_leak_across_threads(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["context"] = tracer.current_context()

        with use_tracer(tracer), tracer.span("main-thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["context"] is None


class TestSpanSerialisation:
    def test_roundtrip(self):
        original = Span(
            name="stage.fit",
            trace_id="t" * 32,
            span_id="s" * 16,
            parent_id="p" * 16,
            start_time=12.5,
            duration=0.25,
            attrs={"threshold": 8},
            status="error",
            error_type="MiningError",
        )
        assert Span.from_dict(original.to_dict()) == original

    @pytest.mark.parametrize(
        "payload", [None, [], "span", {"name": "x"}, {"trace_id": "t"}]
    )
    def test_malformed_payload_is_loud(self, payload):
        with pytest.raises(ObservabilityError):
            Span.from_dict(payload)
