"""Rotation, idle gaps and NaN-freedom of the windowed telemetry rings.

Every test drives the ring with an injected fake clock, so rotation —
the part that corrupts silently when wrong — is exercised
deterministically: partial windows, exact-boundary skew, idle gaps
longer than the whole ring, and wrap-around reuse of the same bucket
slots.  Summaries must stay JSON-safe (no NaN) at every point,
including the completely empty ring.
"""

from __future__ import annotations

import json
import math

from repro.obs import BucketRing, CountRing, WindowedMetrics
from repro.obs.window import WINDOW_LAYOUT
from repro.serving.metrics import BUCKET_BOUNDS


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_ring(width=1.0, n=60, clock=None):
    return BucketRing(
        width, n, BUCKET_BOUNDS, clock=clock or FakeClock()
    )


def assert_json_safe(summary: dict) -> None:
    """The summary must survive strict JSON and contain no NaN."""
    text = json.dumps(summary, allow_nan=False)
    for value in json.loads(text).values():
        if isinstance(value, float):
            assert not math.isnan(value)


class TestEmptyAndValidation:
    def test_empty_ring_is_nan_free(self):
        summary = make_ring().summary()
        assert summary["count"] == 0
        assert summary["rate"] == 0.0
        assert summary["error_rate"] == 0.0
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["p99"] is None
        assert summary["max"] is None
        assert summary["slowest_trace_id"] is None
        assert_json_safe(summary)

    def test_bad_geometry_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            BucketRing(0.0, 60, BUCKET_BOUNDS)
        with pytest.raises(ValueError):
            BucketRing(1.0, 1, BUCKET_BOUNDS)
        with pytest.raises(ValueError):
            CountRing(-1.0, 60)
        with pytest.raises(ValueError):
            CountRing(1.0, 0)

    def test_every_incremental_summary_is_json_safe(self):
        clock = FakeClock()
        ring = make_ring(clock=clock)
        for i in range(10):
            ring.observe(0.001 * (i + 1), error=(i % 3 == 0))
            clock.advance(0.4)
            assert_json_safe(ring.summary())


class TestRotation:
    def test_observations_age_out_after_the_window(self):
        clock = FakeClock()
        ring = make_ring(width=1.0, n=60, clock=clock)
        ring.observe(0.010, trace_id="early")
        assert ring.summary()["count"] == 1
        clock.advance(59.0)  # still inside the 60s span
        assert ring.summary()["count"] == 1
        clock.advance(2.0)  # now outside
        summary = ring.summary()
        assert summary["count"] == 0
        assert summary["slowest_trace_id"] is None

    def test_idle_gap_longer_than_ring_resets_stale_buckets(self):
        clock = FakeClock()
        ring = make_ring(width=1.0, n=60, clock=clock)
        for _ in range(10):
            ring.observe(0.005)
            clock.advance(1.0)
        clock.advance(3600.0)  # an hour of silence, 60x the span
        assert ring.summary()["count"] == 0
        # The slot reused after the gap must not resurrect old counts.
        ring.observe(0.007)
        assert ring.summary()["count"] == 1

    def test_wraparound_keeps_exactly_one_window(self):
        clock = FakeClock(now=0.0)
        ring = make_ring(width=1.0, n=10, clock=clock)
        # 25 seconds of one observation per second through a 10s ring.
        for _ in range(25):
            ring.observe(0.002)
            clock.advance(1.0)
        # The window covers 10 epochs ending at the *current* one,
        # which is still empty after the final advance — so exactly
        # n-1 filled buckets survive, never more.
        assert ring.summary()["count"] == 9

    def test_boundary_skew_observation_lands_in_new_bucket(self):
        clock = FakeClock(now=9.9999)
        ring = make_ring(width=1.0, n=10, clock=clock)
        ring.observe(0.001)
        clock.advance(0.0002)  # crosses the epoch boundary
        ring.observe(0.001)
        assert ring.summary()["count"] == 2
        # Aging out happens per-bucket: the first dies one second
        # before the second.
        clock.advance(9.0)
        assert ring.summary()["count"] == 1

    def test_count_ring_rotation_matches(self):
        clock = FakeClock()
        ring = CountRing(1.0, 60, clock=clock)
        for i in range(100):
            ring.observe(bad=(i % 10 == 0))
            clock.advance(1.0)
        total, bad = ring.counts()
        # 59 filled epochs + the current empty one span the window.
        assert total == 59
        assert bad == 5  # i in {50, 60, 70, 80, 90} still inside
        clock.advance(10_000.0)
        assert ring.counts() == (0, 0)


class TestSummaries:
    def test_percentiles_and_max_track_observations(self):
        clock = FakeClock()
        ring = make_ring(clock=clock)
        for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 200):
            ring.observe(ms / 1000.0, trace_id=f"t{ms}")
        summary = ring.summary()
        assert summary["count"] == 10
        assert summary["max"] == 0.200
        assert summary["slowest_trace_id"] == "t200"
        # Histogram estimates are upper bounds, clamped to max.
        assert summary["p50"] >= 0.005
        assert summary["p99"] <= summary["max"]
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_percentile_never_exceeds_exact_max(self):
        ring = make_ring()
        ring.observe(0.0001)  # far below the first bucket bound
        summary = ring.summary()
        assert summary["p50"] == summary["max"] == 0.0001

    def test_error_rate(self):
        ring = make_ring()
        for i in range(8):
            ring.observe(0.001, error=(i < 2))
        assert ring.summary()["error_rate"] == 0.25

    def test_rate_divides_by_full_span(self):
        ring = make_ring(width=1.0, n=60)
        for _ in range(120):
            ring.observe(0.001)
        assert ring.summary()["rate"] == 2.0

    def test_slowest_trace_survives_none_trace_ids(self):
        ring = make_ring()
        ring.observe(0.500, trace_id=None)  # slowest but anonymous
        ring.observe(0.100, trace_id="fast")
        # The anonymous outlier must not inherit a wrong trace id.
        assert ring.summary()["max"] == 0.500


class TestWindowedMetrics:
    def test_layout_names(self):
        wm = WindowedMetrics(BUCKET_BOUNDS, clock=FakeClock())
        assert set(wm.summary()) == {name for name, _, _ in WINDOW_LAYOUT}

    def test_fan_out_hits_every_ring(self):
        clock = FakeClock()
        wm = WindowedMetrics(BUCKET_BOUNDS, clock=clock)
        wm.observe(0.050, error=True, trace_id="abc")
        for name in ("1m", "5m", "1h"):
            assert wm.summary()[name]["count"] == 1
            assert wm.summary()[name]["slowest_trace_id"] == "abc"

    def test_short_window_forgets_before_long_window(self):
        clock = FakeClock()
        wm = WindowedMetrics(BUCKET_BOUNDS, clock=clock)
        wm.observe(0.010)
        clock.advance(90.0)  # past 1m, inside 5m and 1h
        summary = wm.summary()
        assert summary["1m"]["count"] == 0
        assert summary["5m"]["count"] == 1
        assert summary["1h"]["count"] == 1
