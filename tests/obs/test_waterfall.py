"""Waterfall rendering of reassembled span trees."""

from repro.obs import Span, group_traces, render_waterfall

TRACE_A = "a" * 32
TRACE_B = "b" * 32


def _span(name, span_id, parent_id=None, start=0.0, duration=0.1,
          trace_id=TRACE_A, **kwargs):
    return Span(
        name=name,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        start_time=start,
        duration=duration,
        **kwargs,
    )


def _tree():
    return [
        _span("root", "r" * 16, start=10.0, duration=0.4),
        _span("child-late", "c1" * 8, "r" * 16, start=10.2, duration=0.1),
        _span("child-early", "c2" * 8, "r" * 16, start=10.05, duration=0.1),
        _span("grandchild", "g" * 16, "c2" * 8, start=10.06, duration=0.05),
    ]


class TestGroupTraces:
    def test_groups_by_trace_id_ordered_by_start(self):
        late = _span("late", "1" * 16, start=50.0, trace_id=TRACE_B)
        groups = group_traces(_tree() + [late])
        assert [g[0].trace_id for g in groups] == [TRACE_A, TRACE_B]
        assert len(groups[0]) == 4 and len(groups[1]) == 1


class TestRenderWaterfall:
    def test_empty_input(self):
        assert render_waterfall([]) == "no spans"

    def test_header_and_indentation(self):
        text = render_waterfall(_tree())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {TRACE_A}  (4 spans,")
        # Depth-first with children ordered by start time.
        names = [line.split()[0] for line in lines[1:]]
        assert names == ["root", "child-early", "grandchild", "child-late"]
        assert "    grandchild" in lines[3]  # depth 2 → two indent levels

    def test_error_spans_are_marked(self):
        spans = [
            _span("root", "r" * 16, start=0.0),
            _span("bad", "x" * 16, "r" * 16, start=0.01,
                  status="error", error_type="ServingError"),
        ]
        assert "! ServingError" in render_waterfall(spans)

    def test_orphan_spans_are_promoted_to_roots(self):
        orphan = _span("orphan", "o" * 16, parent_id="gone" * 4, start=10.1)
        text = render_waterfall([_tree()[0], orphan])
        lines = text.splitlines()
        # Rendered at depth 0 despite the dangling parent id.
        assert any(line.strip().startswith("orphan") for line in lines)
        assert not any(line.startswith("    orphan") for line in lines)

    def test_attrs_appear_in_the_row(self):
        spans = [_span("root", "r" * 16, attrs={"rows": 60, "hit": True})]
        text = render_waterfall(spans)
        assert "rows=60" in text and "hit=True" in text

    def test_bars_fit_the_requested_width(self):
        for width in (8, 32):
            text = render_waterfall(_tree(), width=width)
            for line in text.splitlines()[1:]:
                bar = line.split("|")[1]
                assert len(bar) == width
                assert set(bar) <= {"#", " "}
                assert "#" in bar

    def test_multiple_traces_render_as_blocks(self):
        other = _span("other", "z" * 16, start=99.0, trace_id=TRACE_B)
        text = render_waterfall(_tree() + [other])
        assert text.count("trace ") == 2
        assert "\n\n" in text
