"""The SLO burn-rate engine: budgets, windows, skips and binding.

Clocks are injected throughout, so fast/slow window divergence — the
whole point of multi-window burn alerting — is tested deterministically
rather than with sleeps.
"""

from __future__ import annotations

import json

import pytest

from repro.loadtest import SLOSpec
from repro.obs import SLOBurnEngine
from repro.obs.burnrate import BUDGET_FLOOR


class FakeClock:
    def __init__(self, now: float = 5000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_spec(rules: list[dict], name: str = "test") -> SLOSpec:
    from repro.loadtest.slo import SLORule

    return SLOSpec(
        name,
        [SLORule.from_dict(rule, i) for i, rule in enumerate(rules)],
    )


def rule_by(snapshot: dict, rule: str, endpoint: str) -> dict:
    matches = [
        r
        for r in snapshot["rules"]
        if r["rule"] == rule and r["endpoint"] == endpoint
    ]
    assert len(matches) == 1, snapshot["rules"]
    return matches[0]


class TestBudgets:
    def test_zero_error_rate_gets_the_floor(self):
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_error_rate": 0.0}])],
            clock=FakeClock(),
        )
        engine.observe("POST /v1/score", 0.001, error=False)
        snap = rule_by(
            engine.snapshot(), "max_error_rate", "POST /v1/score"
        )
        assert snap["budget"] == BUDGET_FLOOR
        # One clean request: zero burn, full budget.
        assert snap["fast_burn_rate"] == 0.0
        assert snap["budget_remaining"] == 1.0

    def test_latency_budgets_by_percentile(self):
        spec = make_spec(
            [
                {
                    "endpoint": "*",
                    "max_p50_ms": 10,
                    "max_p95_ms": 10,
                    "max_p99_ms": 10,
                }
            ]
        )
        engine = SLOBurnEngine([spec], clock=FakeClock())
        engine.observe("GET /models", 0.001)
        snapshot = engine.snapshot()
        budgets = {
            r["rule"]: r["budget"] for r in snapshot["rules"]
        }
        assert budgets == {
            "max_p50_ms": 0.50,
            "max_p95_ms": 0.05,
            "max_p99_ms": 0.01,
        }

    def test_burn_rate_formula(self):
        # budget 1% + exactly 1 bad out of 100 → burn rate 1.0.
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_p99_ms": 50}])],
            clock=FakeClock(),
        )
        for i in range(100):
            engine.observe("POST /v1/score", 0.200 if i == 0 else 0.001)
        snap = rule_by(
            engine.snapshot(), "max_p99_ms", "POST /v1/score"
        )
        assert snap["fast_burn_rate"] == pytest.approx(1.0)
        assert snap["fast"] == {"total": 100, "bad": 1}

    def test_errors_count_against_latency_rules_too(self):
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_p99_ms": 50}])],
            clock=FakeClock(),
        )
        engine.observe("POST /v1/score", 0.001, error=True)
        snap = rule_by(
            engine.snapshot(), "max_p99_ms", "POST /v1/score"
        )
        assert snap["fast"]["bad"] == 1


class TestWindows:
    def test_fast_window_forgets_while_slow_remembers(self):
        clock = FakeClock()
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_error_rate": 0.5}])],
            clock=clock,
        )
        engine.observe("GET /models", 0.001, error=True)
        clock.advance(120.0)  # past the 1m fast window, inside 1h
        snap = rule_by(engine.snapshot(), "max_error_rate", "GET /models")
        assert snap["fast"] == {"total": 0, "bad": 0}
        assert snap["slow"] == {"total": 1, "bad": 1}
        assert snap["fast_burn_rate"] == 0.0
        assert snap["slow_burn_rate"] == pytest.approx(2.0)  # 1.0 / 0.5

    def test_budget_remaining_clamped_to_zero(self):
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_error_rate": 0.01}])],
            clock=FakeClock(),
        )
        for _ in range(10):
            engine.observe("GET /models", 0.001, error=True)
        snap = rule_by(engine.snapshot(), "max_error_rate", "GET /models")
        assert snap["slow_burn_rate"] == pytest.approx(100.0)
        assert snap["budget_remaining"] == 0.0

    def test_idle_engine_reports_zero_burn(self):
        engine = SLOBurnEngine(
            [make_spec([{"endpoint": "*", "max_error_rate": 0.01}])],
            clock=FakeClock(),
        )
        snapshot = engine.snapshot()
        assert snapshot["rules"] == []  # nothing bound yet
        json.dumps(snapshot, allow_nan=False)  # JSON-safe when empty


class TestBindingAndSkips:
    def test_mean_and_throughput_rules_are_skipped(self):
        spec = make_spec(
            [
                {
                    "endpoint": "POST /v1/score",
                    "max_mean_ms": 5,
                    "min_throughput_rps": 100,
                    "max_error_rate": 0.01,
                }
            ]
        )
        engine = SLOBurnEngine([spec], clock=FakeClock())
        engine.observe("POST /v1/score", 0.001)
        snapshot = engine.snapshot()
        skipped = {s["rule"] for s in snapshot["skipped_rules"]}
        assert skipped == {"max_mean_ms", "min_throughput_rps"}
        assert {r["rule"] for r in snapshot["rules"]} == {
            "max_error_rate"
        }

    def test_pattern_binds_only_matching_endpoints(self):
        spec = make_spec(
            [{"endpoint": "POST /v1/*", "max_error_rate": 0.01}]
        )
        engine = SLOBurnEngine([spec], clock=FakeClock())
        engine.observe("POST /v1/score", 0.001)
        engine.observe("GET /models", 0.001, error=True)  # no match
        snapshot = engine.snapshot()
        assert [r["endpoint"] for r in snapshot["rules"]] == [
            "POST /v1/score"
        ]

    def test_one_pattern_tracks_endpoints_separately(self):
        spec = make_spec([{"endpoint": "*", "max_error_rate": 0.5}])
        engine = SLOBurnEngine([spec], clock=FakeClock())
        engine.observe("POST /v1/score", 0.001, error=True)
        engine.observe("GET /models", 0.001, error=False)
        score = rule_by(
            engine.snapshot(), "max_error_rate", "POST /v1/score"
        )
        models = rule_by(
            engine.snapshot(), "max_error_rate", "GET /models"
        )
        assert score["fast"]["bad"] == 1
        assert models["fast"]["bad"] == 0

    def test_from_paths_reads_the_shipped_smoke_spec(self, tmp_path):
        from pathlib import Path

        smoke = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "slo"
            / "smoke.json"
        )
        engine = SLOBurnEngine.from_paths([smoke], clock=FakeClock())
        assert engine.spec_names == ["smoke"]
        engine.observe("POST /v1/score", 0.001)
        assert engine.snapshot()["rules"]

    def test_snapshot_ordering_is_stable(self):
        spec = make_spec(
            [{"endpoint": "*", "max_error_rate": 0.01, "max_p99_ms": 50}]
        )
        engine = SLOBurnEngine([spec], clock=FakeClock())
        for endpoint in ("GET /models", "POST /v1/score", "GET /healthz"):
            engine.observe(endpoint, 0.001)
        keys = [
            (r["rule"], r["endpoint"])
            for r in engine.snapshot()["rules"]
        ]
        assert keys == sorted(keys)
