"""Prometheus exposition: golden format, renderer/validator agreement."""

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import render_prometheus, validate_exposition, CONTENT_TYPE
from repro.serving.metrics import BUCKET_BOUNDS, RequestMetrics


def _snapshot_with_traffic() -> RequestMetrics:
    metrics = RequestMetrics()
    for seconds in (0.002, 0.004, 0.03, 0.2):
        metrics.observe("POST /v1/score", seconds)
    metrics.observe(
        "POST /v1/score", 0.001, error=True, error_type="ServingError"
    )
    metrics.observe("GET /healthz", 0.0005)
    metrics.record_error("POST /v1/score", "BrokenPipeError")
    return metrics


ENGINE_STATS = {
    "cp8": {
        "rows_scored": 120, "batches": 7, "max_batch_observed": 32,
        "mean_batch_size": 17.1, "cache_hits": 40, "cache_misses": 80,
        "cache_size": 64, "bulk_jobs": 2, "bulk_threshold": 10,
        "bulk_batches": 1, "bulk_rows": 60,
    }
}


class TestRenderPrometheus:
    def test_output_validates(self):
        text = render_prometheus(
            _snapshot_with_traffic().prometheus_snapshot(),
            engines=ENGINE_STATS,
            uptime_seconds=12.5,
            n_models=1,
        )
        assert validate_exposition(text) > 0
        assert text.endswith("\n")

    def test_golden_minimal_exposition(self):
        metrics = RequestMetrics()
        metrics.observe("GET /healthz", 0.0005)
        text = render_prometheus(metrics.prometheus_snapshot())
        lines = text.splitlines()
        assert lines[0] == (
            "# HELP repro_requests_total Requests handled per endpoint."
        )
        assert lines[1] == "# TYPE repro_requests_total counter"
        assert 'repro_requests_total{endpoint="GET /healthz"} 1' in lines
        # Every bucket is cumulative from the first bound on.
        assert (
            'repro_request_duration_seconds_bucket'
            '{endpoint="GET /healthz",le="0.001"} 1'
        ) in lines
        assert (
            'repro_request_duration_seconds_bucket'
            '{endpoint="GET /healthz",le="+Inf"} 1'
        ) in lines
        assert (
            'repro_request_duration_seconds_count{endpoint="GET /healthz"} 1'
        ) in lines

    def test_emits_one_bucket_per_bound_plus_inf(self):
        metrics = RequestMetrics()
        metrics.observe("GET /healthz", 0.0005)
        text = render_prometheus(metrics.prometheus_snapshot())
        n_buckets = sum(
            1
            for line in text.splitlines()
            if line.startswith("repro_request_duration_seconds_bucket")
        )
        assert n_buckets == len(BUCKET_BOUNDS) + 1

    def test_error_types_become_labelled_series(self):
        text = render_prometheus(_snapshot_with_traffic().prometheus_snapshot())
        assert (
            'repro_request_errors_total{endpoint="POST /v1/score",'
            'error_type="BrokenPipeError"} 1'
        ) in text.splitlines()
        assert (
            'repro_request_errors_total{endpoint="POST /v1/score",'
            'error_type="ServingError"} 1'
        ) in text.splitlines()

    def test_engine_counters_and_gauges(self):
        text = render_prometheus(
            _snapshot_with_traffic().prometheus_snapshot(),
            engines=ENGINE_STATS,
        )
        lines = text.splitlines()
        assert 'repro_engine_rows_scored_total{model="cp8"} 120' in lines
        assert 'repro_engine_cache_size{model="cp8"} 64' in lines
        assert 'repro_engine_bulk_rows_total{model="cp8"} 60' in lines

    def test_label_values_are_escaped(self):
        metrics = RequestMetrics()
        metrics.observe('odd "endpoint"\\', 0.001)
        text = render_prometheus(metrics.prometheus_snapshot())
        assert validate_exposition(text) > 0
        assert '\\"endpoint\\"' in text

    def test_deterministic_output(self):
        snapshot = _snapshot_with_traffic().prometheus_snapshot()
        assert render_prometheus(snapshot) == render_prometheus(snapshot)

    def test_content_type_names_exposition_format(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestValidateExposition:
    def test_counts_samples(self):
        text = (
            "# HELP repro_models Registered scorer artefacts.\n"
            "# TYPE repro_models gauge\n"
            "repro_models 2\n"
        )
        assert validate_exposition(text) == 1

    @pytest.mark.parametrize(
        "text, match",
        [
            ("repro_models 2\n", "no preceding # TYPE"),
            ("# TYPE repro_models gauge\nrepro_models\n", "malformed sample"),
            ("# TYPE repro_models gauge\nrepro_models two\n",
             "malformed sample"),
            ("# BAD repro_models\n", "malformed comment"),
            ("# TYPE repro_models gauge\nrepro_models 2", "newline"),
            ('# TYPE m gauge\nm{label=unquoted} 1\n', "malformed label"),
        ],
    )
    def test_rejects_malformed_text(self, text, match):
        with pytest.raises(ObservabilityError, match=match):
            validate_exposition(text)

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ObservabilityError, match="not cumulative"):
            validate_exposition(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n"
        )
        with pytest.raises(ObservabilityError, match="!= _count"):
            validate_exposition(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ObservabilityError, match="no le"):
            validate_exposition(text)
