"""The sampling profiler: capture, bounds, attribution, determinism.

Live-sampling tests use a busy worker thread and generous rates so
they pass on slow CI; everything about *shape* (bounded stacks,
dropped counters, span attribution, render ordering) goes through
``sample_once()`` and is fully deterministic.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import ActiveSpanRegistry, SamplingProfiler, Tracer


def burn_cpu(stop: threading.Event) -> None:
    x = 0
    while not stop.is_set():
        x += 1  # visible frame: tests assert on burn_cpu appearing


@pytest.fixture
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=burn_cpu, args=(stop,), daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5.0)


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_noop(self):
        SamplingProfiler().stop()

    def test_registry_installed_and_removed(self):
        tracer = Tracer(enabled=True)
        assert tracer.active_registry is None
        with SamplingProfiler(hz=100, tracer=tracer) as profiler:
            assert tracer.active_registry is profiler.registry
        assert tracer.active_registry is None

    def test_elapsed_freezes_after_stop(self):
        with SamplingProfiler(hz=100) as profiler:
            time.sleep(0.05)
        frozen = profiler.stats()["elapsed_seconds"]
        time.sleep(0.05)
        assert profiler.stats()["elapsed_seconds"] == frozen


class TestCapture:
    def test_busy_thread_is_sampled(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.3)
        stats = profiler.stats()
        assert stats["samples"] > 0
        collapsed = profiler.render_collapsed()
        assert "burn_cpu" in collapsed

    def test_sampler_never_samples_itself(self, busy_thread):
        with SamplingProfiler(hz=200) as profiler:
            time.sleep(0.2)
        # The sampler excludes its own thread, so its sampling loop
        # never appears as a sampled frame.
        assert "repro.obs.profile._run" not in profiler.render_collapsed()

    def test_sample_once_is_synchronous(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert profiler.stats()["samples"] >= 1
        assert "burn_cpu" in profiler.render_collapsed()

    def test_stack_is_root_first(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.sample_once()
        line = next(
            line
            for line in profiler.render_collapsed().splitlines()
            if "burn_cpu" in line
        )
        frames = line.rsplit(" ", 1)[0].split(";")
        # Root-first: threading's bootstrap plumbing precedes the
        # target function it launched.
        bootstrap = next(
            i for i, f in enumerate(frames) if "_bootstrap" in f
        )
        target = next(
            i for i, f in enumerate(frames) if f.endswith("burn_cpu")
        )
        assert bootstrap < target


class TestBounds:
    def test_distinct_stacks_capped_and_drops_counted(self, busy_thread):
        profiler = SamplingProfiler(max_stacks=1)
        # Occupy the only slot with a synthetic key no real thread can
        # produce, then sample: the busy thread's genuinely new stack
        # must be dropped and counted, never stored.
        profiler._counts[((), "synthetic;occupier")] = 1
        profiler.sample_once()
        stats = profiler.stats()
        assert stats["distinct_stacks"] == 1
        assert stats["dropped_stacks"] >= 1
        assert "burn_cpu" not in profiler.render_collapsed()

    def test_existing_stack_still_counts_at_cap(self, busy_thread):
        profiler = SamplingProfiler(max_stacks=1)
        # Fill the single slot with whatever the thread shows first,
        # then sample repeatedly: known stacks keep counting.
        profiler.sample_once()
        profiler.sample_once()
        stats = profiler.stats()
        assert stats["samples"] >= 2
        assert stats["distinct_stacks"] <= 1


class TestSpanAttribution:
    def test_registry_push_pop(self):
        registry = ActiveSpanRegistry()
        registry.push("outer")
        registry.push("inner")
        tid = threading.get_ident()
        assert registry.snapshot()[tid] == ("outer", "inner")
        registry.pop()
        assert registry.snapshot()[tid] == ("outer",)
        registry.pop()
        assert registry.snapshot() == {}
        registry.pop()  # popping empty is a no-op

    def test_samples_carry_active_spans(self, busy_thread):
        tracer = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=200, tracer=tracer)
        profiler.start()
        try:

            def worker():
                with tracer.span("work.busy"):
                    deadline = time.monotonic() + 0.3
                    while time.monotonic() < deadline:
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            profiler.stop()
        self_time = profiler.self_time_by_span()
        assert self_time.get("work.busy", 0) > 0
        assert "work.busy" in profiler.to_dict()["span_self_samples"]

    def test_span_filter_selects_matching_samples(self, busy_thread):
        tracer = Tracer(enabled=True)
        profiler = SamplingProfiler(hz=200, tracer=tracer)
        profiler.start()
        try:

            def worker():
                with tracer.span("filtered.span"):
                    deadline = time.monotonic() + 0.3
                    while time.monotonic() < deadline:
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        finally:
            profiler.stop()
        inside = profiler.render_collapsed("filtered.span")
        assert inside  # the worker was sampled under the span
        assert "worker" in inside
        # The busy thread ran outside any span: filtered out.
        assert "burn_cpu" not in inside
        assert "burn_cpu" in profiler.render_collapsed()

    def test_no_tracer_means_no_span_noise(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert set(profiler.self_time_by_span()) == {""}


class TestRendering:
    def test_render_is_deterministic(self, busy_thread):
        profiler = SamplingProfiler()
        for _ in range(5):
            profiler.sample_once()
        assert profiler.render_collapsed() == profiler.render_collapsed()

    def test_render_sorted_by_count_then_stack(self):
        profiler = SamplingProfiler()
        profiler._counts[((), "b;b")] = 3
        profiler._counts[((), "a;a")] = 3
        profiler._counts[((), "z;z")] = 9
        assert profiler.render_collapsed().splitlines() == [
            "z;z 9",
            "a;a 3",
            "b;b 3",
        ]

    def test_to_dict_shape(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.sample_once()
        payload = profiler.to_dict()
        assert set(payload) == {"stats", "span_self_samples", "stacks"}
        record = payload["stacks"][0]
        assert set(record) == {"spans", "stack", "count"}
        assert record["count"] >= 1

    def test_empty_profile_renders_empty(self):
        profiler = SamplingProfiler()
        assert profiler.render_collapsed() == ""
        assert profiler.to_dict()["stacks"] == []
