"""The frozen registry of observability name literals (REP104's anchor).

Every Prometheus metric name and every span name emitted anywhere in
``src/`` must appear in the sets below. This file is therefore two
things at once:

* a **change detector** — adding, renaming or deleting a metric/span
  makes this test fail until the registry is updated, so telemetry
  renames are always deliberate;
* the **reference corpus** for lint rule REP104 — a name quoted here
  counts as "asserted somewhere", so a name emitted in ``src/`` but
  missing from this registry fails both this test *and* the lint.

The sets are sorted and exhaustive on purpose; do not replace them
with a computed expression, or REP104 loses its reference.
"""

from pathlib import Path

from repro.analysis.concurrency import collect_literals
from repro.analysis.engine import build_project

SRC = Path(__file__).resolve().parents[2] / "src"

EXPECTED_METRICS = frozenset({
    "repro_build_info",
    "repro_models",
    "repro_profile_distinct_stacks",
    "repro_profile_dropped_stacks_total",
    "repro_profile_samples_total",
    "repro_registry_degraded_models",
    "repro_registry_loads_total",
    "repro_registry_refreshes_total",
    "repro_registry_reload_errors_total",
    "repro_request_duration_seconds",
    "repro_request_duration_seconds_bucket",
    "repro_request_duration_seconds_count",
    "repro_request_duration_seconds_sum",
    "repro_request_errors_total",
    "repro_requests_total",
    "repro_route_graph_builds_total",
    "repro_route_graphs_cached",
    "repro_route_hotspot_clusters",
    "repro_route_plans_total",
    "repro_route_store_entries",
    "repro_route_store_hits_total",
    "repro_route_store_invalidations_total",
    "repro_route_store_misses_total",
    "repro_slo_budget_remaining",
    "repro_slo_burn_rate",
    "repro_uptime_seconds",
    "repro_window_error_rate",
    "repro_window_p95_seconds",
    "repro_window_request_rate",
    "repro_window_requests",
})

EXPECTED_SPANS = frozenset({
    "engine.batch",
    "engine.score_batch",
    "engine.score_many",
    "engine.score_rows",
    "executor.run",
    "http.request",
})


def _collected():
    _contexts, graph, _model = build_project([SRC])
    uses, n_dynamic = collect_literals(graph)
    return uses, n_dynamic


def test_emitted_metric_names_match_registry():
    uses, _ = _collected()
    emitted = {u.literal for u in uses if u.kind == "metric"}
    assert emitted == EXPECTED_METRICS, (
        f"metric registry drift: new={sorted(emitted - EXPECTED_METRICS)} "
        f"gone={sorted(EXPECTED_METRICS - emitted)}"
    )


def test_emitted_span_names_match_registry():
    uses, _ = _collected()
    emitted = {u.literal for u in uses if u.kind == "span"}
    assert emitted == EXPECTED_SPANS, (
        f"span registry drift: new={sorted(emitted - EXPECTED_SPANS)} "
        f"gone={sorted(EXPECTED_SPANS - emitted)}"
    )


def test_every_metric_literal_is_namespaced():
    uses, _ = _collected()
    for use in uses:
        if use.kind == "metric":
            assert use.literal.startswith("repro_"), use.literal


def test_dynamic_names_stay_rare():
    # f-string span names (e.g. stage.{name}) are invisible to REP104;
    # keep their count pinned so new dynamic names are a conscious choice.
    _, n_dynamic = _collected()
    assert n_dynamic <= 12, f"{n_dynamic} dynamic metric/span names"
