"""JSON-lines trace files: write with the sink, read back, corruption."""

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import JsonlSpanSink, Span, Tracer, read_spans


def _make_span(i: int) -> Span:
    return Span(
        name=f"s{i}",
        trace_id="t" * 32,
        span_id=f"{i:016x}",
        start_time=float(i),
        duration=0.5,
        attrs={"i": i},
    )


class TestJsonlSpanSink:
    def test_roundtrip_through_read_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSpanSink(path) as sink:
            for i in range(3):
                sink(_make_span(i))
            assert sink.n_spans == 3
        assert read_spans(path) == [_make_span(i) for i in range(3)]

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSpanSink(path) as sink:
            sink(_make_span(0))
        with JsonlSpanSink(path) as sink:
            sink(_make_span(1))
        assert [s.name for s in read_spans(path)] == ["s0", "s1"]

    def test_as_tracer_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSpanSink(path) as sink:
            tracer = Tracer(sink=sink)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        names = [s.name for s in read_spans(path)]
        assert names == ["inner", "outer"]


class TestReadSpans:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            handle.write(json.dumps(_make_span(0).to_dict()) + "\n")
            handle.write('{"name": "torn", "trace')  # killed mid-write
        assert [s.name for s in read_spans(path)] == ["s0"]

    def test_corrupt_interior_line_is_loud(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            handle.write("not json\n")
            handle.write(json.dumps(_make_span(0).to_dict()) + "\n")
        with pytest.raises(ObservabilityError, match=":1:"):
            read_spans(path)

    def test_valid_json_bad_span_is_loud(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x"}\n' + "\n")
        with pytest.raises(ObservabilityError, match=":1:"):
            read_spans(path)

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            handle.write("\n")
            handle.write(json.dumps(_make_span(0).to_dict()) + "\n")
            handle.write("\n")
        assert [s.name for s in read_spans(path)] == ["s0"]
