"""Cross-boundary trace propagation through the sweep executor.

The tentpole guarantee: one dispatching context yields ONE connected
span tree whether tasks run in-process (serial backend) or in pool
workers (process backend), and the two backends produce the same tree
shape.
"""

import pytest

from repro.obs import Tracer, use_tracer
from repro.obs.trace import span as obs_span
from repro.parallel import SweepExecutor, SweepTask

N_TASKS = 4


def _traced_square(x):
    # Worker-side instrumentation: must end up parented under the
    # shipped task span, in the dispatcher's trace.
    with obs_span("work.square", x=x):
        return x * x


def _tasks():
    return [
        SweepTask(
            key=f"prop/sq-{i}",
            fn=_traced_square,
            args=(i,),
            stage="prop",
            threshold=i,
        )
        for i in range(N_TASKS)
    ]


def _run_traced(n_jobs):
    tracer = Tracer(max_spans=None)
    with SweepExecutor(n_jobs=n_jobs) as executor, use_tracer(tracer):
        results = executor.run(_tasks(), stage="prop")
    return tracer.finished(), results


def _tree_shape(spans):
    """(name, parent name) pairs — backend-independent tree shape."""
    by_id = {s.span_id: s for s in spans}
    return sorted(
        (s.name, by_id[s.parent_id].name if s.parent_id else None)
        for s in spans
    )


@pytest.mark.parametrize("n_jobs", [1, 2], ids=["serial", "process"])
class TestConnectedTrace:
    def test_results_unaffected_by_tracing(self, n_jobs):
        _, results = _run_traced(n_jobs)
        assert [r.value for r in results] == [i * i for i in range(N_TASKS)]

    def test_single_connected_tree(self, n_jobs):
        spans, _ = _run_traced(n_jobs)
        assert len(spans) == 1 + 2 * N_TASKS
        assert len({s.trace_id for s in spans}) == 1

        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["executor.run"]
        # Every non-root span's parent is present: no orphans.
        assert all(
            s.parent_id in by_id for s in spans if s.parent_id is not None
        )

        run_span = roots[0]
        assert run_span.attrs["backend"] == (
            "serial" if n_jobs == 1 else "process"
        )
        assert run_span.attrs["n_tasks"] == N_TASKS

        task_spans = [s for s in spans if s.name.startswith("task.")]
        assert sorted(s.name for s in task_spans) == [
            f"task.prop/sq-{i}" for i in range(N_TASKS)
        ]
        assert all(s.parent_id == run_span.span_id for s in task_spans)

        work_spans = [s for s in spans if s.name == "work.square"]
        task_ids = {s.span_id for s in task_spans}
        assert len(work_spans) == N_TASKS
        assert all(s.parent_id in task_ids for s in work_spans)

    def test_task_span_carries_stage_and_threshold(self, n_jobs):
        spans, _ = _run_traced(n_jobs)
        task_span = next(s for s in spans if s.name == "task.prop/sq-2")
        assert task_span.attrs["stage"] == "prop"
        assert task_span.attrs["threshold"] == 2


class TestBackendParity:
    def test_serial_and_process_trees_have_identical_shape(self):
        serial_spans, _ = _run_traced(1)
        process_spans, _ = _run_traced(2)
        assert _tree_shape(serial_spans) == _tree_shape(process_spans)


class TestUntracedPath:
    @pytest.mark.parametrize("n_jobs", [1, 2], ids=["serial", "process"])
    def test_no_tracer_ships_no_context_and_no_spans(self, n_jobs):
        with SweepExecutor(n_jobs=n_jobs) as executor:
            results = executor.run(_tasks(), stage="prop")
        assert [r.value for r in results] == [i * i for i in range(N_TASKS)]
        assert all(r.spans == () for r in results)

    def test_timed_stage_emits_a_stage_span_when_tracing(self):
        tracer = Tracer(max_spans=None)
        with SweepExecutor(n_jobs=1) as executor, use_tracer(tracer):
            with executor.timed_stage("selection"):
                pass
        (stage_span,) = tracer.finished()
        assert stage_span.name == "stage.selection"
        assert stage_span.attrs["backend"] == "serial"
