"""Tests for the wet/dry stage-1 analysis."""

import numpy as np
import pytest

from repro.core import wet_dry_analysis
from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import EvaluationError


def make_crash_table(n=2000, coupled=True, seed=0):
    gen = np.random.default_rng(seed)
    f60 = gen.uniform(0.2, 0.8, n)
    if coupled:
        p_wet = np.clip(0.8 - f60, 0.05, 0.8)
    else:
        p_wet = np.full(n, 0.3)
    wet = gen.random(n) < p_wet
    return DataTable(
        [
            NumericColumn.from_array("skid_resistance_f60", f60),
            CategoricalColumn(
                "surface_condition",
                ["wet" if w else "dry" for w in wet],
                ("dry", "wet"),
            ),
        ]
    )


class TestWetDryAnalysis:
    def test_coupled_data_differs(self):
        result = wet_dry_analysis(make_crash_table(coupled=True))
        assert result.wet_mean_f60 < result.dry_mean_f60
        assert result.distributions_differ()
        assert result.ks_p_value < 1e-6
        assert result.chi2_p_value < 1e-6

    def test_wet_share_declines_with_friction(self):
        result = wet_dry_analysis(make_crash_table(coupled=True))
        shares = result.wet_share_by_band
        assert shares[0] > shares[-1] + 0.1

    def test_uncoupled_data_does_not_differ(self):
        result = wet_dry_analysis(make_crash_table(coupled=False, seed=3))
        assert not result.distributions_differ(alpha=0.001)

    def test_counts_and_share(self):
        result = wet_dry_analysis(make_crash_table())
        assert result.n_wet + result.n_dry == 2000
        assert 0 < result.wet_share < 1

    def test_describe_renders(self):
        result = wet_dry_analysis(make_crash_table())
        text = result.describe()
        assert "KS test" in text and "% wet" in text

    def test_missing_levels_rejected(self):
        table = DataTable(
            [
                NumericColumn("skid_resistance_f60", [0.5] * 10),
                CategoricalColumn(
                    "surface_condition", ["dry"] * 10, ("dry",)
                ),
            ]
        )
        with pytest.raises(EvaluationError):
            wet_dry_analysis(table)

    def test_too_few_crashes_rejected(self):
        table = DataTable(
            [
                NumericColumn("skid_resistance_f60", [0.5, 0.4, 0.6]),
                CategoricalColumn(
                    "surface_condition",
                    ["wet", "dry", "dry"],
                    ("dry", "wet"),
                ),
            ]
        )
        with pytest.raises(EvaluationError, match="at least 5"):
            wet_dry_analysis(table)

    def test_on_generated_dataset(self, small_dataset):
        """The generator couples wet crashes to low F60 by design."""
        result = wet_dry_analysis(small_dataset.crash_instances)
        assert result.wet_mean_f60 < result.dry_mean_f60
        assert result.distributions_differ()
