"""Tests for the deployable crash-proneness scorer."""

import numpy as np
import pytest

from repro.core import CrashPronenessScorer
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def scorer(small_dataset):
    return CrashPronenessScorer.train(
        small_dataset.crash_instances,
        threshold=8,
        seed=4,
        metadata={"note": "test"},
    )


class TestTraining:
    def test_validation_measures_recorded(self, scorer):
        assert set(scorer.validation) >= {"mcpv", "kappa", "roc_area"}
        assert 0 < scorer.validation["roc_area"] <= 1

    def test_metadata_carries_seed(self, scorer):
        assert scorer.metadata["seed"] == 4
        assert scorer.metadata["note"] == "test"

    def test_describe(self, scorer):
        text = scorer.describe()
        assert "CP-8" in text and "MCPV" in text


class TestScoring:
    def test_score_shape(self, scorer, small_dataset):
        scores = scorer.score(small_dataset.segment_table)
        assert scores.shape == (small_dataset.segment_table.n_rows,)
        assert ((0 <= scores) & (scores <= 1)).all()

    def test_scores_track_actual_counts(self, scorer, small_dataset):
        scores = scorer.score(small_dataset.segment_table)
        counts = small_dataset.segment_table.numeric("segment_crash_count")
        high = scores[counts > 8]
        low = scores[counts == 0]
        assert high.mean() > low.mean() + 0.2

    def test_classify_cutoff(self, scorer, small_dataset):
        strict = scorer.classify(small_dataset.segment_table, cutoff=0.9)
        lax = scorer.classify(small_dataset.segment_table, cutoff=0.1)
        assert strict.sum() <= lax.sum()

    def test_treatment_list_ranked(self, scorer, small_dataset):
        ranked = scorer.treatment_list(small_dataset.segment_table, top=15)
        assert len(ranked) == 15
        probabilities = [s.probability for s in ranked]
        assert probabilities == sorted(probabilities, reverse=True)
        assert [s.rank for s in ranked] == list(range(1, 16))

    def test_treatment_list_requires_segment_id(self, scorer, small_dataset):
        table = small_dataset.segment_table.drop("segment_id")
        with pytest.raises(ReproError, match="segment_id"):
            scorer.treatment_list(table)

    def test_expected_prone_km(self, scorer, small_dataset):
        km = scorer.expected_prone_km(small_dataset.segment_table)
        assert 0 < km < small_dataset.segment_table.n_rows


class TestPersistence:
    def test_save_load_roundtrip(self, scorer, small_dataset, tmp_path):
        path = tmp_path / "scorer.json"
        scorer.save(path)
        clone = CrashPronenessScorer.load(path)
        assert clone.threshold == scorer.threshold
        assert clone.validation == scorer.validation
        assert np.array_equal(
            clone.score(small_dataset.segment_table),
            scorer.score(small_dataset.segment_table),
        )

    def test_version_check(self, scorer):
        data = scorer.to_dict()
        data["format_version"] = 99
        with pytest.raises(ReproError, match="version"):
            CrashPronenessScorer.from_dict(data)
