"""Tests for the deployable crash-proneness scorer."""

import json

import numpy as np
import pytest

from repro.core import CrashPronenessScorer
from repro.core.deployment import payload_checksum
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def scorer(small_dataset):
    return CrashPronenessScorer.train(
        small_dataset.crash_instances,
        threshold=8,
        seed=4,
        metadata={"note": "test"},
    )


class TestTraining:
    def test_validation_measures_recorded(self, scorer):
        assert set(scorer.validation) >= {"mcpv", "kappa", "roc_area"}
        assert 0 < scorer.validation["roc_area"] <= 1

    def test_metadata_carries_seed(self, scorer):
        assert scorer.metadata["seed"] == 4
        assert scorer.metadata["note"] == "test"

    def test_describe(self, scorer):
        text = scorer.describe()
        assert "CP-8" in text and "MCPV" in text


class TestScoring:
    def test_score_shape(self, scorer, small_dataset):
        scores = scorer.score(small_dataset.segment_table)
        assert scores.shape == (small_dataset.segment_table.n_rows,)
        assert ((0 <= scores) & (scores <= 1)).all()

    def test_scores_track_actual_counts(self, scorer, small_dataset):
        scores = scorer.score(small_dataset.segment_table)
        counts = small_dataset.segment_table.numeric("segment_crash_count")
        high = scores[counts > 8]
        low = scores[counts == 0]
        assert high.mean() > low.mean() + 0.2

    def test_classify_cutoff(self, scorer, small_dataset):
        strict = scorer.classify(small_dataset.segment_table, cutoff=0.9)
        lax = scorer.classify(small_dataset.segment_table, cutoff=0.1)
        assert strict.sum() <= lax.sum()

    def test_treatment_list_ranked(self, scorer, small_dataset):
        ranked = scorer.treatment_list(small_dataset.segment_table, top=15)
        assert len(ranked) == 15
        probabilities = [s.probability for s in ranked]
        assert probabilities == sorted(probabilities, reverse=True)
        assert [s.rank for s in ranked] == list(range(1, 16))

    def test_treatment_list_requires_segment_id(self, scorer, small_dataset):
        table = small_dataset.segment_table.drop("segment_id")
        with pytest.raises(ReproError, match="segment_id"):
            scorer.treatment_list(table)

    def test_expected_prone_km(self, scorer, small_dataset):
        km = scorer.expected_prone_km(small_dataset.segment_table)
        assert 0 < km < small_dataset.segment_table.n_rows


class TestPersistence:
    def test_save_load_roundtrip(self, scorer, small_dataset, tmp_path):
        path = tmp_path / "scorer.json"
        scorer.save(path)
        clone = CrashPronenessScorer.load(path)
        assert clone.threshold == scorer.threshold
        assert clone.validation == scorer.validation
        assert np.array_equal(
            clone.score(small_dataset.segment_table),
            scorer.score(small_dataset.segment_table),
        )

    def test_roundtrip_scores_bit_identical(self, small_dataset, tmp_path):
        """Scores survive the process boundary bit-for-bit, regression
        tree included."""
        scorer = CrashPronenessScorer.train(
            small_dataset.crash_instances,
            threshold=8,
            seed=4,
            with_regression=True,
        )
        path = tmp_path / "scorer.json"
        scorer.save(path)
        clone = CrashPronenessScorer.load(path)
        table = small_dataset.segment_table
        assert np.array_equal(clone.score(table), scorer.score(table))
        assert clone.regression is not None
        assert np.array_equal(
            clone.score_regression(table), scorer.score_regression(table)
        )
        # A second hop must be byte-stable too (checksums identical).
        path2 = tmp_path / "scorer2.json"
        clone.save(path2)
        assert path.read_text() == path2.read_text()

    def test_regression_absent_by_default(self, scorer, small_dataset):
        assert scorer.regression is None
        with pytest.raises(ReproError, match="with_regression"):
            scorer.score_regression(small_dataset.segment_table)

    def test_version_check(self, scorer):
        data = scorer.to_dict()
        data["format_version"] = 99
        with pytest.raises(ReproError, match="version"):
            CrashPronenessScorer.from_dict(data)

    def test_version_error_names_file(self, scorer, tmp_path):
        path = tmp_path / "stale.json"
        data = scorer.to_dict()
        data["format_version"] = 0
        path.write_text(json.dumps(data, allow_nan=True))
        with pytest.raises(ReproError, match="stale.json"):
            CrashPronenessScorer.load(path)

    def test_missing_file_error_names_file(self, tmp_path):
        with pytest.raises(ReproError, match="nowhere.json"):
            CrashPronenessScorer.load(tmp_path / "nowhere.json")

    def test_corrupt_json_error_names_file(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{this is not json")
        with pytest.raises(ReproError, match="corrupt.json"):
            CrashPronenessScorer.load(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ReproError, match="JSON object"):
            CrashPronenessScorer.load(path)

    def test_checksum_embedded_and_verified(self, scorer, tmp_path):
        payload = scorer.to_dict()
        assert payload["checksum"] == payload_checksum(payload)
        path = tmp_path / "tampered.json"
        payload["threshold"] = 99  # tamper after checksumming
        path.write_text(json.dumps(payload, allow_nan=True))
        with pytest.raises(ReproError, match="checksum mismatch"):
            CrashPronenessScorer.load(path)


class TestInputSchema:
    def test_schema_covers_model_inputs(self, scorer):
        schema = scorer.input_schema()
        assert list(schema) == scorer.model.input_names
        assert schema["skid_resistance_f60"] == {"kind": "numeric"}
        assert schema["terrain"]["kind"] == "categorical"
        assert set(schema["terrain"]["levels"]) >= {"flat"}

    def test_schema_persisted_in_artefact(self, scorer, tmp_path):
        path = tmp_path / "scorer.json"
        scorer.save(path)
        data = json.loads(path.read_text())
        assert data["input_schema"] == scorer.input_schema()
