"""Tests for the text table / figure renderers."""

from repro.core import (
    format_cell,
    render_box_ranges,
    render_histogram,
    render_series,
    render_table,
)


class TestFormatCell:
    def test_nan_renders_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_none_renders_dash(self):
        assert format_cell(None) == "-"

    def test_integral_float(self):
        assert format_cell(4.0) == "4"

    def test_rounding(self):
        assert format_cell(0.76228, decimals=3) == "0.762"

    def test_string_passthrough(self):
        assert format_cell("CP-8") == "CP-8"


class TestRenderTable:
    def test_header_and_rule(self):
        text = render_table(
            ["thr", "R2"], [[2, 0.466], [4, 0.594]], title="Table 4"
        )
        lines = text.splitlines()
        assert lines[0] == "Table 4"
        assert "thr" in lines[1] and "R2" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "0.466" in lines[3]

    def test_column_alignment(self):
        text = render_table(["a"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestRenderSeries:
    def test_shared_axis_union(self):
        text = render_series(
            {"p1": {2: 0.8, 4: 0.9}, "p2": {4: 0.7, 8: 0.6}},
            x_label="threshold",
        )
        lines = text.splitlines()
        assert lines[0].startswith("threshold")
        assert len(lines) == 2 + 3  # header + rule + x values 2,4,8
        assert "-" in lines[2]  # p2 missing at threshold 2


class TestRenderHistogram:
    def test_bars_scale(self):
        text = render_histogram({1: 100, 2: 50, 3: 1}, max_width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 1

    def test_empty(self):
        assert "(empty)" in render_histogram({})


class TestRenderBoxRanges:
    def test_box_glyphs(self):
        text = render_box_ranges(
            [("c0", 0.0, 1.0, 2.0, 4.0, 10.0)], axis_max=10.0, width=40
        )
        line = text.splitlines()[0]
        assert "O" in line          # median marker
        assert "=" in line          # IQR body
        assert "q1=1" in line

    def test_multiple_boxes_aligned(self):
        text = render_box_ranges(
            [
                ("low", 0, 1, 2, 3, 4),
                ("high", 10, 20, 30, 40, 50),
            ],
            width=30,
        )
        lines = text.splitlines()
        assert len(lines) == 2
        # 'low' box sits left of the 'high' median.
        assert lines[0].index("O") < lines[1].index("O")

    def test_empty(self):
        assert "(empty)" in render_box_ranges([])
