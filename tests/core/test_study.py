"""Integration tests of the study phases on generated data.

These run on the session-scoped ``mid_dataset`` (6,000 segments) so the
whole class of tests shares one generation and the fits stay fast.
"""

import math

import numpy as np
import pytest

from repro.core import PHASE2_THRESHOLDS, CrashPronenessStudy
from repro.mining import TreeConfig


@pytest.fixture(scope="module")
def study(mid_dataset):
    return CrashPronenessStudy(mid_dataset, seed=3)


@pytest.fixture(scope="module")
def phase1(study):
    return study.run_phase1()


@pytest.fixture(scope="module")
def phase2(study):
    return study.run_phase2()


class TestPhaseSweeps:
    def test_phase1_covers_crash_no_crash_boundary(self, phase1):
        assert phase1.thresholds()[0] == 0
        assert phase1.phase == 1

    def test_phase2_starts_at_two(self, phase2):
        assert phase2.thresholds()[0] == 2

    def test_rows_have_all_table_columns(self, phase2):
        row = phase2.results[0]
        assert row.n_non_prone + row.n_prone > 0
        assert 0 <= row.misclassification_rate <= 1
        assert row.regression_leaves >= 1
        assert row.decision_leaves >= 1
        assert not math.isnan(row.r_squared)

    def test_class_counts_match_table1_semantics(self, phase2, mid_dataset):
        counts = mid_dataset.crash_instances.numeric(
            "segment_crash_count"
        )
        for row in phase2.results:
            assert row.n_prone == int((counts > row.threshold).sum())

    def test_mcpv_series_aligned(self, phase2):
        series = phase2.mcpv_series()
        assert list(series) == phase2.thresholds()

    def test_mid_band_beats_boundary_phase1(self, phase1):
        """Low-crash roads resemble no-crash roads: some mid threshold
        must classify better than the crash/no-crash boundary."""
        series = phase1.mcpv_series()
        mid = max(series.get(k, -1) for k in (2, 4, 8))
        assert mid > series[0]

    def test_phase2_peak_in_low_mid_band(self, phase2):
        """The paper's headline: efficiency peaks at 4–8, and the very
        high thresholds do not dominate the low-mid band."""
        series = {
            k: v
            for k, v in phase2.mcpv_series().items()
            if not math.isnan(v) and k <= 32
        }
        peak = max(series, key=series.get)
        assert peak in (2, 4, 8, 16)

    def test_r_squared_rises_from_cp2(self, phase2):
        series = phase2.r_squared_series()
        assert max(
            series.get(k, -1) for k in (4, 8, 16)
        ) > series[2] - 0.05


class TestSupportingSweeps:
    def test_bayes_sweep_rows(self, study):
        results = study.run_supporting_sweep(
            "bayes", thresholds=(2, 8, 32), folds=5
        )
        assert [r.threshold for r in results] == [2, 8, 32]
        for row in results:
            assert row.model == "bayes"
            assert 0 <= row.assessment.roc_area <= 1

    def test_trees_beat_bayes_at_selected_threshold(self, study, phase2):
        """'Decision tree performance is better than the Bayesian
        model' — compare at CP-8."""
        bayes = study.run_supporting_sweep(
            "bayes", thresholds=(8,), folds=5
        )[0]
        tree_row = next(r for r in phase2.results if r.threshold == 8)
        assert tree_row.mcpv > bayes.mcpv - 0.02

    def test_unknown_model_rejected(self, study):
        with pytest.raises(ValueError):
            study.run_supporting_sweep("svm")

    def test_m5_sweep_returns_r_squared(self, study):
        series = study.run_m5_sweep(thresholds=(8,))
        assert set(series) == {8}
        assert -1.0 < series[8] <= 1.0


class TestSelection:
    def test_selection_lands_in_paper_band(self, study, phase1, phase2):
        selection = study.select_threshold(phase1, phase2)
        assert selection.selected_threshold in (2, 4, 8, 16)
        assert selection.metric == "mcpv"

    def test_plateau_values_recorded(self, study, phase1, phase2):
        selection = study.select_threshold(phase1, phase2)
        assert set(selection.plateau) <= set(selection.values)


class TestPhase3:
    def test_clustering_analysis(self, study):
        analysis = study.run_phase3(threshold=8, n_clusters=16)
        assert analysis.n_clusters == 16
        assert analysis.anova.p_value < 1e-6
        assert analysis.n_very_low_crash_clusters >= 1


class TestExplicitConfig:
    def test_explicit_tree_config_used(self, mid_dataset):
        study = CrashPronenessStudy(
            mid_dataset,
            tree_config=TreeConfig(max_leaves=4, min_leaf=25, min_split=60),
            seed=1,
        )
        result = study.run_phase2(thresholds=(8,))
        assert result.results[0].decision_leaves <= 4


class TestSweepErrors:
    def test_degenerate_sweep_error_lists_thresholds_and_counts(
        self, mid_dataset
    ):
        """When no threshold yields two classes the error must name the
        attempted thresholds and their class counts, not just fail."""
        from repro.exceptions import EvaluationError

        study = CrashPronenessStudy(mid_dataset, seed=3)
        with pytest.raises(EvaluationError) as excinfo:
            study.run_phase2(thresholds=(100_000, 200_000))
        message = str(excinfo.value)
        assert "phase 2" in message
        assert "[100000, 200000]" in message
        assert "CP-100000" in message and "CP-200000" in message
        assert "0 prone" in message
        n_instances = mid_dataset.crash_instances.n_rows
        assert f"{n_instances} non-prone" in message


class TestSegmentLevelSweep:
    def test_rows_are_segments(self, study, mid_dataset):
        result = study.run_segment_level_sweep(thresholds=(4, 8))
        n_crash_segments = int(
            (mid_dataset.segment_table.numeric("segment_crash_count") > 0).sum()
        )
        for row in result.results:
            assert row.n_non_prone + row.n_prone == n_crash_segments

    def test_no_crash_count_leakage(self, study):
        """Per-year crash columns must not be model inputs."""
        from repro.core import build_threshold_dataset

        crash_segments = study.dataset.segment_table.filter(
            study.dataset.segment_table.numeric("segment_crash_count") > 0
        )
        dataset = build_threshold_dataset(crash_segments, 8)
        inputs = dataset.table.schema.input_names()
        assert not any(name.startswith("crashes_") for name in inputs)
        assert "segment_crash_count" not in inputs

    def test_band_survives_unit_change(self, study):
        import math

        result = study.run_segment_level_sweep(thresholds=(2, 4, 8, 16))
        series = {
            k: v
            for k, v in result.mcpv_series().items()
            if not math.isnan(v)
        }
        assert series
        assert max(series.values()) > 0.5
