"""Tests for cluster signatures, correlations and tree importances."""

import math

import numpy as np
import pytest

from repro.core import (
    attribute_crash_correlations,
    cluster_attribute_signatures,
    tree_feature_importance,
)
from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import EvaluationError
from repro.mining import DecisionTreeClassifier, TreeConfig
from tests.conftest import make_classification_table


def make_clustered_table():
    gen = np.random.default_rng(6)
    # Cluster 0: low friction; cluster 1: high friction; both same size.
    f60 = np.concatenate(
        [gen.normal(0.35, 0.02, 120), gen.normal(0.65, 0.02, 120)]
    )
    aadt = gen.normal(5000, 100, 240)
    seal = ["spray"] * 120 + ["asphalt"] * 120
    counts = np.concatenate(
        [gen.poisson(10, 120), gen.poisson(1, 120)]
    ).astype(float)
    table = DataTable(
        [
            NumericColumn.from_array("skid_resistance_f60", f60),
            NumericColumn.from_array("aadt", aadt),
            CategoricalColumn("seal_type", seal, ("spray", "asphalt")),
            NumericColumn.from_array("segment_crash_count", counts),
        ]
    )
    assignment = np.array([0] * 120 + [1] * 120)
    return table, assignment


class TestClusterSignatures:
    def test_discriminating_attribute_ranks_first(self):
        table, assignment = make_clustered_table()
        signatures = cluster_attribute_signatures(table, assignment)
        top0 = signatures[0][0]
        assert top0.attribute in ("skid_resistance_f60", "seal_type=spray",
                                  "seal_type=asphalt")
        assert abs(top0.effect) > 0.9

    def test_effect_signs_opposite_between_clusters(self):
        table, assignment = make_clustered_table()
        signatures = cluster_attribute_signatures(table, assignment)
        f60_effects = {
            cid: next(
                s.effect
                for s in sigs
                if s.attribute == "skid_resistance_f60"
            )
            for cid, sigs in signatures.items()
        }
        assert f60_effects[0] < 0 < f60_effects[1]

    def test_top_per_cluster_respected(self):
        table, assignment = make_clustered_table()
        signatures = cluster_attribute_signatures(
            table, assignment, top_per_cluster=2
        )
        assert all(len(sigs) <= 2 for sigs in signatures.values())

    def test_describe(self):
        table, assignment = make_clustered_table()
        signatures = cluster_attribute_signatures(table, assignment)
        text = signatures[0][0].describe()
        assert "cluster 0" in text and "population" in text

    def test_length_mismatch_rejected(self):
        table, _assignment = make_clustered_table()
        with pytest.raises(EvaluationError):
            cluster_attribute_signatures(table, np.zeros(3))


class TestCrashCorrelations:
    def test_strongest_attribute_found(self):
        table, _assignment = make_clustered_table()
        correlations = attribute_crash_correlations(table)
        assert correlations[0].attribute in (
            "skid_resistance_f60",
            "seal_type",
        )
        assert correlations[0].strength > 0.5

    def test_numeric_has_pearson_and_spearman(self):
        table, _assignment = make_clustered_table()
        by_name = {
            c.attribute: c for c in attribute_crash_correlations(table)
        }
        f60 = by_name["skid_resistance_f60"]
        assert f60.kind == "pearson+spearman"
        assert f60.pearson < 0  # low friction, more crashes
        assert math.isnan(f60.eta_squared)

    def test_categorical_has_eta_squared(self):
        table, _assignment = make_clustered_table()
        by_name = {
            c.attribute: c for c in attribute_crash_correlations(table)
        }
        seal = by_name["seal_type"]
        assert seal.kind == "eta_squared"
        assert seal.eta_squared > 0.3

    def test_noise_attribute_weakest(self):
        table, _assignment = make_clustered_table()
        correlations = attribute_crash_correlations(table)
        assert correlations[-1].attribute == "aadt"

    def test_constant_column_skipped(self):
        table, _assignment = make_clustered_table()
        table = table.with_column(
            NumericColumn("constant", [1.0] * table.n_rows)
        )
        names = {
            c.attribute for c in attribute_crash_correlations(table)
        }
        assert "constant" not in names


class TestTreeFeatureImportance:
    def test_signal_feature_dominates(self):
        table, _y = make_classification_table(1000, seed=12)
        model = DecisionTreeClassifier(
            TreeConfig(min_leaf=30, min_split=60)
        ).fit(table, "label")
        importance = tree_feature_importance(model.root)
        assert sum(importance.values()) == pytest.approx(1.0)
        # 'a' and 'group' carry the signal; 'b' is a distractor.
        assert importance.get("a", 0) > importance.get("b", 0)

    def test_single_leaf_tree_empty(self):
        gen = np.random.default_rng(0)
        table = DataTable(
            [
                NumericColumn.from_array("x", gen.random(120)),
                CategoricalColumn(
                    "label",
                    list(gen.choice(["n", "p"], 120)),
                    ("n", "p"),
                ),
            ]
        )
        model = DecisionTreeClassifier(
            TreeConfig(alpha=1e-12, min_leaf=25, min_split=60)
        ).fit(table, "label")
        if model.n_leaves == 1:
            assert tree_feature_importance(model.root) == {}
