"""Property-based tests for CP-k construction and threshold selection."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    CRASH_COUNT_COLUMN,
    build_threshold_dataset,
    build_threshold_series,
    select_best_threshold,
)
from repro.datatable import DataTable, NumericColumn

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=100), min_size=1, max_size=200
)
thresholds_strategy = st.lists(
    st.integers(min_value=0, max_value=80),
    min_size=1,
    max_size=6,
    unique=True,
)


def count_table(counts):
    return DataTable(
        [NumericColumn(CRASH_COUNT_COLUMN, [float(c) for c in counts])]
    )


@given(counts_strategy, st.integers(min_value=0, max_value=100))
@settings(max_examples=120, deadline=None)
def test_class_counts_partition(counts, threshold):
    dataset = build_threshold_dataset(count_table(counts), threshold)
    assert dataset.n_non_prone + dataset.n_prone == len(counts)
    assert dataset.n_prone == sum(1 for c in counts if c > threshold)
    y = dataset.target_vector()
    assert int(y.sum()) == dataset.n_prone


@given(counts_strategy, thresholds_strategy)
@settings(max_examples=100, deadline=None)
def test_series_monotone_in_threshold(counts, thresholds):
    series = build_threshold_series(count_table(counts), tuple(thresholds))
    non_prone = [d.n_non_prone for d in series]
    assert non_prone == sorted(non_prone)


@given(counts_strategy, st.integers(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_target_consistent_with_counts(counts, threshold):
    dataset = build_threshold_dataset(count_table(counts), threshold)
    y = dataset.target_vector()
    values = np.array(counts, dtype=float)
    assert np.array_equal(y == 1, values > threshold)


metric_values = st.dictionaries(
    keys=st.sampled_from([0, 2, 4, 8, 16, 32, 64]),
    values=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
    min_size=1,
    max_size=7,
)


@given(metric_values)
@settings(max_examples=150, deadline=None)
def test_selection_picks_threshold_on_plateau(values):
    selection = select_best_threshold(values, plateau_tolerance=0.02)
    assert selection.selected_threshold in values
    peak = max(values.values())
    assert values[selection.selected_threshold] >= peak - 0.02
    # Lowest-on-plateau rule: nothing lower qualifies.
    for threshold, value in values.items():
        if value >= peak - 0.02:
            assert threshold >= selection.selected_threshold


@given(metric_values, st.floats(min_value=0.001, max_value=0.5))
@settings(max_examples=100, deadline=None)
def test_wider_tolerance_never_raises_selection(values, tolerance):
    narrow = select_best_threshold(values, plateau_tolerance=0.001)
    wide = select_best_threshold(values, plateau_tolerance=tolerance)
    assert wide.selected_threshold <= narrow.selected_threshold


@given(metric_values)
@settings(max_examples=100, deadline=None)
def test_degenerate_exclusion_only_drops_top(values):
    assume(len(values) > 1)
    spiked = dict(values)
    top = max(spiked)
    spiked[top] = 1.0
    selection = select_best_threshold(spiked)
    assert selection.selected_threshold != top or len(spiked) == 1
