"""Tests for the CRISP-DM pipeline framework."""

import pytest

from repro.core import CrispDmPipeline, CrispDmStage
from repro.exceptions import ReproError


class TestPipeline:
    def test_runs_in_stage_order(self):
        pipeline = CrispDmPipeline()
        order = []
        pipeline.register(
            CrispDmStage.MODELING, "model", lambda ctx: order.append("m")
        )
        pipeline.register(
            CrispDmStage.DATA_PREPARATION,
            "prep",
            lambda ctx: order.append("p"),
        )
        pipeline.register(
            CrispDmStage.BUSINESS_UNDERSTANDING,
            "goal",
            lambda ctx: order.append("b"),
        )
        pipeline.run()
        assert order == ["b", "p", "m"]

    def test_registration_order_within_stage(self):
        pipeline = CrispDmPipeline()
        order = []
        pipeline.register(
            CrispDmStage.MODELING, "first", lambda ctx: order.append(1)
        )
        pipeline.register(
            CrispDmStage.MODELING, "second", lambda ctx: order.append(2)
        )
        pipeline.run()
        assert order == [1, 2]

    def test_context_threading(self):
        pipeline = CrispDmPipeline()
        pipeline.register(
            CrispDmStage.DATA_PREPARATION,
            "make",
            lambda ctx: {"value": 10},
        )
        pipeline.register(
            CrispDmStage.MODELING,
            "use",
            lambda ctx: {"double": ctx["value"] * 2},
        )
        context = pipeline.run({"seed": 1})
        assert context == {"seed": 1, "value": 10, "double": 20}

    def test_log_records_outputs_and_timing(self):
        pipeline = CrispDmPipeline()
        pipeline.register(
            CrispDmStage.EVALUATION, "score", lambda ctx: {"metric": 1.0}
        )
        pipeline.run()
        assert len(pipeline.log) == 1
        run = pipeline.log[0]
        assert run.stage is CrispDmStage.EVALUATION
        assert run.outputs == ("metric",)
        assert run.seconds >= 0.0

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ReproError):
            CrispDmPipeline().run()

    def test_non_dict_return_rejected(self):
        pipeline = CrispDmPipeline()
        pipeline.register(
            CrispDmStage.MODELING, "bad", lambda ctx: [1, 2, 3]
        )
        with pytest.raises(ReproError, match="must return a dict"):
            pipeline.run()

    def test_describe_plan_and_log(self):
        pipeline = CrispDmPipeline()
        pipeline.register(CrispDmStage.MODELING, "fit trees", lambda c: None)
        plan = pipeline.describe()
        assert "[modeling] fit trees" in plan
        pipeline.run()
        log = pipeline.describe()
        assert "fit trees" in log and "s)" in log

    def test_stage_names(self):
        pipeline = CrispDmPipeline()
        pipeline.register(CrispDmStage.MODELING, "a", lambda c: None)
        pipeline.register(CrispDmStage.MODELING, "b", lambda c: None)
        assert pipeline.stage_names(CrispDmStage.MODELING) == ["a", "b"]
