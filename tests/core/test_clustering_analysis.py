"""Tests for the phase-3 cluster crash-range analysis."""

import numpy as np
import pytest

from repro.core import analyse_clusters, run_phase3_clustering
from repro.core.clustering_analysis import ClusterCrashProfile
from repro.exceptions import EvaluationError


def make_banded(seed=0):
    """Three clusters with low / medium / high crash-count bands."""
    gen = np.random.default_rng(seed)
    counts = np.concatenate(
        [
            gen.integers(1, 4, 100),     # low
            gen.integers(8, 15, 80),     # medium
            gen.integers(30, 60, 40),    # high
        ]
    ).astype(float)
    assignment = np.array([0] * 100 + [1] * 80 + [2] * 40)
    return counts, assignment


class TestAnalyseClusters:
    def test_profiles_ordered_by_mean(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        means = [p.mean for p in analysis.profiles]
        assert means == sorted(means)

    def test_band_classification(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        assert [p.band for p in analysis.profiles] == [
            "low",
            "medium",
            "high",
        ]

    def test_very_low_crash_detection(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        assert analysis.n_very_low_crash_clusters == 1
        low = analysis.profiles[0]
        assert low.is_very_low_crash
        assert low.q3 <= 4.0

    def test_anova_rejects_equal_means(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        assert analysis.anova.p_value < 1e-10

    def test_supports_conclusion_threshold(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        # Only one very-low cluster here, so the paper's multi-cluster
        # evidence standard is not met.
        assert not analysis.supports_non_crash_prone_roads(
            minimum_clusters=3
        )
        assert analysis.supports_non_crash_prone_roads(minimum_clusters=1)

    def test_band_counts(self):
        counts, assignment = make_banded()
        analysis = analyse_clusters(counts, assignment)
        assert analysis.band_counts() == {"low": 1, "medium": 1, "high": 1}

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            analyse_clusters(np.ones(5), np.zeros(4, dtype=int))

    def test_single_cluster_rejected(self):
        with pytest.raises(EvaluationError):
            analyse_clusters(np.ones(10), np.zeros(10, dtype=int))


class TestProfileProperties:
    def test_iqr(self):
        profile = ClusterCrashProfile(
            cluster_id=0,
            n_instances=10,
            minimum=1,
            q1=2,
            median=3,
            q3=6,
            maximum=12,
            mean=4.0,
        )
        assert profile.iqr == 4
        assert not profile.is_very_low_crash
        assert profile.is_mostly_below_ten
        assert profile.band == "low"


class TestRunPhase3:
    def test_end_to_end_on_generated_data(self, small_dataset):
        analysis = run_phase3_clustering(
            small_dataset.crash_instances, n_clusters=12, seed=0
        )
        assert analysis.n_clusters == 12
        assert len(analysis.profiles) == 12
        assert analysis.assignment.shape == (
            small_dataset.n_crash_instances,
        )
        # Attribute-driven counts: the ANOVA should strongly reject.
        assert analysis.anova.p_value < 1e-6
        # The synthetic network has a genuine non-crash-prone stratum.
        assert analysis.n_very_low_crash_clusters >= 1
