"""Tests for the training/validation quality profile."""

import math

import pytest

from repro.core.model_quality import train_validation_profile
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def profile(small_dataset):
    return train_validation_profile(
        small_dataset.crash_instances,
        threshold=8,
        leaf_budgets=(4, 16, 64),
        metric="roc_area",
        seed=2,
    )


class TestProfile:
    def test_point_per_budget(self, profile):
        assert [p.leaf_budget for p in profile.points] == [4, 16, 64]

    def test_train_at_least_validation_on_average(self, profile):
        mean_gap = sum(p.gap for p in profile.points) / len(profile.points)
        assert mean_gap > -0.05

    def test_values_in_unit_interval(self, profile):
        for point in profile.points:
            assert 0.0 <= point.train_value <= 1.0
            assert 0.0 <= point.valid_value <= 1.0

    def test_correlation_computable(self, profile):
        correlation = profile.correlation()
        assert math.isnan(correlation) or -1.0 <= correlation <= 1.0

    def test_best_validated(self, profile):
        best = profile.best_validated()
        assert best.valid_value == max(
            p.valid_value for p in profile.points
        )

    def test_honest_sizes_subset(self, profile):
        honest = profile.honest_sizes(gap_tolerance=1.0)
        assert honest == [p.leaf_budget for p in profile.points]

    def test_metric_selection(self, small_dataset):
        kappa_profile = train_validation_profile(
            small_dataset.crash_instances,
            threshold=8,
            leaf_budgets=(8,),
            metric="kappa",
            seed=2,
        )
        assert kappa_profile.metric == "kappa"
        assert -1.0 <= kappa_profile.points[0].valid_value <= 1.0

    def test_empty_budgets_rejected(self, small_dataset):
        with pytest.raises(EvaluationError):
            train_validation_profile(
                small_dataset.crash_instances, 8, leaf_budgets=()
            )

    def test_duplicate_budgets_deduplicated(self, small_dataset):
        profile = train_validation_profile(
            small_dataset.crash_instances,
            threshold=4,
            leaf_budgets=(8, 8, 8),
            seed=1,
        )
        assert len(profile.points) == 1
