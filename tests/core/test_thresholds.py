"""Tests for CP-k threshold dataset construction (Table 1)."""

import numpy as np
import pytest

from repro.core import (
    CRASH_COUNT_COLUMN,
    NEGATIVE_LABEL,
    POSITIVE_LABEL,
    TARGET_COLUMN,
    build_threshold_dataset,
    build_threshold_series,
    table1_rows,
)
from repro.datatable import DataTable, NumericColumn
from repro.exceptions import EmptyTableError, SchemaError


def count_table(counts):
    return DataTable(
        [
            NumericColumn(
                CRASH_COUNT_COLUMN, [float(c) for c in counts]
            ),
            NumericColumn("skid_resistance_f60", [0.5] * len(counts)),
        ]
    )


class TestBuildThresholdDataset:
    def test_strictly_greater_semantics(self):
        """CP-2: roads with 0, 1 or 2 crashes are non-crash-prone."""
        dataset = build_threshold_dataset(
            count_table([0, 1, 2, 3, 4]), threshold=2
        )
        assert dataset.n_non_prone == 3
        assert dataset.n_prone == 2
        assert dataset.target_vector().tolist() == [0, 0, 0, 1, 1]

    def test_target_column_labels(self):
        dataset = build_threshold_dataset(count_table([0, 5]), 2)
        target = dataset.table.categorical(TARGET_COLUMN)
        assert target.labels == (NEGATIVE_LABEL, POSITIVE_LABEL)

    def test_name_and_totals(self):
        dataset = build_threshold_dataset(count_table([0, 5, 9]), 8)
        assert dataset.name == "CP-8"
        assert dataset.total == 3

    def test_imbalance_ratio(self):
        dataset = build_threshold_dataset(
            count_table([0] * 99 + [99]), 8
        )
        assert dataset.imbalance_ratio == pytest.approx(99.0)

    def test_schema_marks_target(self, small_dataset):
        dataset = build_threshold_dataset(
            small_dataset.crash_instances, 4
        )
        assert dataset.table.schema is not None
        assert dataset.table.schema.target.name == TARGET_COLUMN
        # Crash-level attributes are not schema inputs.
        assert "crash_year" not in dataset.table.schema.input_names()

    def test_negative_threshold_rejected(self):
        with pytest.raises(SchemaError):
            build_threshold_dataset(count_table([1]), -1)

    def test_empty_table_rejected(self):
        with pytest.raises(EmptyTableError):
            build_threshold_dataset(count_table([]), 2)

    def test_missing_counts_rejected(self):
        table = DataTable(
            [NumericColumn(CRASH_COUNT_COLUMN, [1.0, None])]
        )
        with pytest.raises(SchemaError, match="missing"):
            build_threshold_dataset(table, 2)


class TestSeries:
    def test_series_sorted_ascending(self):
        series = build_threshold_series(
            count_table(range(100)), (8, 2, 32)
        )
        assert [d.threshold for d in series] == [2, 8, 32]

    def test_class_counts_monotone(self):
        """Raising the threshold moves instances from prone to
        non-prone — Table 1's defining pattern."""
        series = build_threshold_series(
            count_table(np.random.default_rng(0).poisson(6, 2000)),
            (2, 4, 8, 16, 32),
        )
        non_prone = [d.n_non_prone for d in series]
        prone = [d.n_prone for d in series]
        assert non_prone == sorted(non_prone)
        assert prone == sorted(prone, reverse=True)
        assert all(d.total == 2000 for d in series)

    def test_table1_rows_structure(self, small_dataset):
        rows = table1_rows(small_dataset.crash_instances)
        assert [r["target_label"] for r in rows] == [
            "CP-2",
            "CP-4",
            "CP-8",
            "CP-16",
            "CP-32",
            "CP-64",
        ]
        for row in rows:
            assert (
                row["non_crash_prone_instances"]
                + row["crash_prone_instances"]
                == row["total_instance_count"]
            )
