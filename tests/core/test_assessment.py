"""Tests for assessment records and the threshold-selection rule."""

import math

import numpy as np
import pytest

from repro.core import assess_scores, select_best_threshold
from repro.exceptions import EvaluationError


class TestAssessScores:
    def test_all_measures_populated(self, rng):
        actual = rng.integers(0, 2, 500)
        scores = np.clip(
            actual * 0.6 + rng.random(500) * 0.5, 0, 1
        )
        assessment = assess_scores(actual, scores)
        record = assessment.as_dict()
        assert set(record) == {
            "accuracy",
            "misclassification_rate",
            "sensitivity",
            "specificity",
            "ppv",
            "npv",
            "mcpv",
            "kappa",
            "roc_area",
            "weighted_precision",
            "weighted_recall",
        }
        assert record["mcpv"] == min(record["ppv"], record["npv"])
        assert 0.5 < record["roc_area"] <= 1.0

    def test_custom_cutoff(self):
        actual = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.3, 0.35, 0.9])
        strict = assess_scores(actual, scores, threshold=0.8)
        lax = assess_scores(actual, scores, threshold=0.2)
        assert strict.confusion.predicted_positives == 1
        assert lax.confusion.predicted_positives == 3


class TestSelectBestThreshold:
    def test_simple_peak(self):
        selection = select_best_threshold(
            {2: 0.70, 4: 0.85, 8: 0.80, 16: 0.60}
        )
        assert selection.selected_threshold == 4
        assert selection.peak_value == pytest.approx(0.85)

    def test_plateau_prefers_lowest(self):
        """The paper's 'near the crash/no crash boundary' preference."""
        selection = select_best_threshold(
            {2: 0.70, 4: 0.845, 8: 0.85, 16: 0.60},
            plateau_tolerance=0.02,
        )
        assert selection.selected_threshold == 4
        assert selection.plateau == (4, 8)

    def test_degenerate_top_threshold_excluded(self):
        """CP-64's perfect score is 'unreliable' and must not win."""
        selection = select_best_threshold(
            {2: 0.7, 4: 0.8, 8: 0.75, 64: 1.0}
        )
        assert selection.selected_threshold == 4

    def test_degenerate_exclusion_can_be_disabled(self):
        selection = select_best_threshold(
            {4: 0.8, 64: 1.0}, exclude_degenerate=False
        )
        assert selection.selected_threshold == 64

    def test_nans_ignored(self):
        selection = select_best_threshold(
            {2: float("nan"), 4: 0.8, 8: 0.7}
        )
        assert selection.selected_threshold == 4
        assert math.isnan(selection.values[2])

    def test_all_nan_rejected(self):
        with pytest.raises(EvaluationError):
            select_best_threshold({2: float("nan")})

    def test_describe_mentions_rule(self):
        selection = select_best_threshold({2: 0.7, 4: 0.9})
        text = selection.describe()
        assert "plateau" in text
        assert "crash/no-crash boundary" in text
