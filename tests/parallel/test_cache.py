"""Property tests of the threshold dataset cache."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thresholds import (
    CRASH_COUNT_COLUMN,
    build_threshold_dataset,
)
from repro.datatable import DataTable, NumericColumn
from repro.parallel import ThresholdDatasetCache


def count_table(counts) -> DataTable:
    return DataTable(
        [
            NumericColumn(
                CRASH_COUNT_COLUMN, [float(c) for c in counts]
            ),
            NumericColumn("aadt", [100.0 + c for c in counts]),
        ]
    )


counts_strategy = st.lists(
    st.integers(min_value=0, max_value=80), min_size=1, max_size=40
)
threshold_strategy = st.integers(min_value=0, max_value=100)


class TestCacheProperties:
    @given(counts=counts_strategy, threshold=threshold_strategy)
    @settings(max_examples=50, deadline=None)
    def test_hit_after_first_build(self, counts, threshold):
        cache = ThresholdDatasetCache()
        table = count_table(counts)
        first = cache.get(table, threshold)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.get(table, threshold)
        assert second is first  # memoised, not rebuilt
        assert (cache.hits, cache.misses) == (1, 1)

    @given(counts=counts_strategy, threshold=threshold_strategy)
    @settings(max_examples=50, deadline=None)
    def test_cached_result_matches_direct_build(self, counts, threshold):
        cache = ThresholdDatasetCache()
        table = count_table(counts)
        cached = cache.get(table, threshold)
        direct = build_threshold_dataset(table, threshold)
        assert cached.threshold == direct.threshold
        assert cached.n_prone == direct.n_prone
        assert cached.n_non_prone == direct.n_non_prone
        assert np.array_equal(
            cached.target_vector(), direct.target_vector()
        )

    @given(
        counts=counts_strategy,
        thresholds=st.lists(
            threshold_strategy, min_size=2, max_size=6, unique=True
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_thresholds_are_distinct_keys(
        self, counts, thresholds
    ):
        cache = ThresholdDatasetCache()
        table = count_table(counts)
        for threshold in thresholds:
            cache.get(table, threshold)
        assert cache.misses == len(thresholds)
        assert cache.hits == 0
        assert len(cache) == len(thresholds)

    @given(counts=counts_strategy, threshold=threshold_strategy)
    @settings(max_examples=50, deadline=None)
    def test_different_table_object_invalidates(self, counts, threshold):
        cache = ThresholdDatasetCache()
        first = cache.get(count_table(counts), threshold)
        # Equal contents but a different object: a different key.
        second = cache.get(count_table(counts), threshold)
        assert second is not first
        assert cache.misses == 2
        assert cache.hits == 0


class TestCacheApi:
    def test_contains_does_not_touch_counters(self):
        cache = ThresholdDatasetCache()
        table = count_table([0, 1, 5])
        assert not cache.contains(table, 2)
        cache.get(table, 2)
        assert cache.contains(table, 2)
        assert not cache.contains(table, 3)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_clear_resets_entries_and_counters(self):
        cache = ThresholdDatasetCache()
        table = count_table([0, 1, 5])
        cache.get(table, 2)
        cache.get(table, 2)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)
        cache.get(table, 2)
        assert cache.misses == 1

    def test_id_reuse_is_safe_while_cache_alive(self):
        """The cache pins source tables, so a dead table's id cannot be
        recycled into a false hit."""
        cache = ThresholdDatasetCache()
        for _ in range(10):
            # Without the pin, id(count_table(...)) could collide with a
            # previously collected table and return its stale dataset.
            dataset = cache.get(count_table([3, 9]), 4)
            assert dataset.n_prone == 1
        assert cache.hits == 0


class TestBoundedCache:
    def test_max_entries_evicts_least_recently_used(self):
        cache = ThresholdDatasetCache(max_entries=2)
        table = count_table([0, 1, 5, 9])
        cache.get(table, 0)
        cache.get(table, 2)
        cache.get(table, 0)  # refresh CP-0
        cache.get(table, 4)  # evicts CP-2, the LRU entry
        assert len(cache) == 2
        assert cache.contains(table, 0)
        assert cache.contains(table, 4)
        assert not cache.contains(table, 2)

    def test_eviction_releases_table_reference_when_last_entry_goes(self):
        cache = ThresholdDatasetCache(max_entries=1)
        first = count_table([0, 1])
        second = count_table([2, 3])
        cache.get(first, 0)
        cache.get(second, 0)
        assert not cache.contains(first, 0)
        assert cache._tables == {id(second): second}

    def test_invalid_max_entries_rejected(self):
        import pytest

        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="max_entries"):
            ThresholdDatasetCache(max_entries=0)

    def test_unbounded_by_default(self):
        cache = ThresholdDatasetCache()
        table = count_table(list(range(30)))
        for k in range(20):
            cache.get(table, k)
        assert len(cache) == 20
