"""Unit tests of the sweep executor and its backends.

Task payloads live at module level so the process backend can pickle
them by reference.
"""

import os

import numpy as np
import pytest

from repro.parallel import (
    SweepExecutor,
    SweepTask,
    TaskResult,
    available_backends,
    execute_task,
    resolve_n_jobs,
)


def _square(x):
    return x * x


def _seeded_draw(seed):
    return float(np.random.default_rng(seed).random())


def _boom():
    raise RuntimeError("task exploded")


def _tasks(n, stage="stage"):
    return [
        SweepTask(
            key=f"{stage}/cp-{i}",
            fn=_square,
            args=(i,),
            stage=stage,
            threshold=i,
        )
        for i in range(n)
    ]


class TestResolveNJobs:
    def test_one_is_one(self):
        assert resolve_n_jobs(1) == 1

    def test_none_and_zero_mean_all_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_n_jobs(None) == cores
        assert resolve_n_jobs(0) == cores

    def test_negative_counts_back_from_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == cores
        assert resolve_n_jobs(-cores) == 1

    def test_never_below_one(self):
        assert resolve_n_jobs(-999) == 1


class TestBackendSelection:
    def test_serial_for_one_job(self):
        assert SweepExecutor(n_jobs=1).backend_name == "serial"

    def test_process_for_many_jobs(self):
        with SweepExecutor(n_jobs=2) as executor:
            assert executor.backend_name == "process"

    def test_explicit_backend_override(self):
        executor = SweepExecutor(n_jobs=4, backend="serial")
        assert executor.backend_name == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(n_jobs=2, backend="threads")

    def test_both_backends_advertised(self):
        assert available_backends() == ("serial", "process")


class TestExecuteTask:
    def test_result_carries_key_value_and_threshold(self):
        result = execute_task(
            SweepTask(key="k", fn=_square, args=(3,), threshold=7)
        )
        assert isinstance(result, TaskResult)
        assert result.key == "k"
        assert result.value == 9
        assert result.threshold == 7
        assert result.seconds >= 0


@pytest.mark.parametrize("n_jobs", [1, 2])
class TestRunBothBackends:
    def test_results_in_submission_order(self, n_jobs):
        with SweepExecutor(n_jobs=n_jobs) as executor:
            results = executor.run(_tasks(8))
        assert [r.value for r in results] == [i * i for i in range(8)]
        assert [r.key for r in results] == [
            f"stage/cp-{i}" for i in range(8)
        ]

    def test_seeded_tasks_identical_across_backends(self, n_jobs):
        tasks = [
            SweepTask(key=f"draw-{s}", fn=_seeded_draw, args=(s,))
            for s in range(6)
        ]
        with SweepExecutor(n_jobs=n_jobs) as executor:
            values = [r.value for r in executor.run(tasks)]
        assert values == [_seeded_draw(s) for s in range(6)]

    def test_empty_batch(self, n_jobs):
        with SweepExecutor(n_jobs=n_jobs) as executor:
            assert executor.run([], stage="empty") == []
            assert executor.timings.stage("empty").n_tasks == 0

    def test_task_error_propagates(self, n_jobs):
        with SweepExecutor(n_jobs=n_jobs) as executor:
            with pytest.raises(RuntimeError, match="task exploded"):
                executor.run([SweepTask(key="bad", fn=_boom)])

    def test_pool_reused_across_stages(self, n_jobs):
        with SweepExecutor(n_jobs=n_jobs) as executor:
            executor.run(_tasks(3, "a"), stage="a")
            executor.run(_tasks(2, "b"), stage="b")
            assert [s.stage for s in executor.timings.stages] == ["a", "b"]


class TestTimings:
    def test_stage_records_tasks_and_thresholds(self):
        with SweepExecutor(n_jobs=1) as executor:
            executor.run(_tasks(4), stage="phase1")
        timing = executor.timings.stage("phase1")
        assert timing.n_tasks == 4
        assert timing.wall_seconds >= 0
        assert sorted(timing.threshold_seconds()) == [0, 1, 2, 3]
        assert executor.timings.n_tasks == 4

    def test_timed_stage_context(self):
        with SweepExecutor(n_jobs=1) as executor:
            with executor.timed_stage("selection"):
                pass
        assert executor.timings.stage("selection").n_tasks == 0

    def test_missing_stage_raises(self):
        with pytest.raises(KeyError):
            SweepExecutor(n_jobs=1).timings.stage("nowhere")

    def test_render_mentions_backend_and_cache(self):
        with SweepExecutor(n_jobs=1) as executor:
            executor.run(_tasks(2), stage="phase1")
        executor.timings.cache_hits = 5
        executor.timings.cache_misses = 2
        text = executor.timings.render()
        assert "backend=serial" in text
        assert "phase1" in text
        assert "5 hits" in text and "2 misses" in text
