"""Tests for the percentile extensions to the stage timing records."""

import math

import pytest

from repro.parallel import StageTiming, TaskTiming


def _stage(seconds: list[float]) -> StageTiming:
    return StageTiming(
        stage="stage",
        wall_seconds=sum(seconds),
        tasks=[TaskTiming(key=f"t{i}", seconds=s) for i, s in enumerate(seconds)],
    )


class TestPercentile:
    def test_nearest_rank(self):
        stage = _stage([float(v) for v in range(1, 11)])
        assert stage.percentile(50) == 5.0
        assert stage.percentile(90) == 9.0
        assert stage.percentile(100) == 10.0

    def test_extremes(self):
        stage = _stage([3.0, 1.0, 2.0])
        assert stage.percentile(0) == 1.0
        assert stage.percentile(100) == 3.0

    def test_single_task(self):
        stage = _stage([0.5])
        assert stage.percentile(50) == 0.5
        assert stage.percentile(99) == 0.5

    def test_empty_is_nan(self):
        assert math.isnan(StageTiming(stage="s").percentile(50))

    def test_out_of_range_rejected(self):
        stage = _stage([1.0])
        with pytest.raises(ValueError, match="percentile"):
            stage.percentile(101)
        with pytest.raises(ValueError, match="percentile"):
            stage.percentile(-1)


class TestLatencySummary:
    def test_summary_fields(self):
        stage = _stage([0.01, 0.02, 0.03, 0.04])
        record = stage.latency_summary()
        assert record["count"] == 4
        assert record["mean"] == pytest.approx(0.025)
        assert record["max"] == 0.04
        assert record["p50"] <= record["p95"] <= record["p99"] <= record["max"]

    def test_empty_summary(self):
        record = StageTiming(stage="s").latency_summary()
        assert record["count"] == 0
        assert math.isnan(record["p99"])
