"""Golden-number regression tests for Tables 3, 4 and 5.

The checked-in ``benchmarks/results/table{3,4,5}.txt`` artefacts were
produced at paper scale (seed 2011, repeats=2).  These tests recompute
every metric row through the sweep engine and pin each cell against
the parsed golden value to 1e-9 (after the renderer's own rounding),
so a refactor cannot silently drift the reproduction.

This is the most expensive test module in tier 1 (~15 s: one
paper-scale generation plus the three sweeps); everything downstream
shares the module-scoped fixtures.

The whole module runs under a live :class:`SamplingProfiler` (autouse
fixture below): the profiler reads frames and touches no RNG, so a
profiled study must stay bit-identical to an unprofiled one — any
drift in these pinned cells while sampling is live is a profiler
isolation bug, not a numerics change.
"""

import math
from pathlib import Path

import pytest

from repro.core import CrashPronenessStudy
from repro.core.reporting import format_cell
from repro.obs import SamplingProfiler
from repro.parallel import SweepExecutor, ThresholdDatasetCache
from repro.roads import QDTMRSyntheticGenerator, paper_scale_config

GOLDEN_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
GOLDEN_SEED = 2011  # benchmarks/conftest.py BENCH_SEED
TOLERANCE = 1e-9


def parse_golden(name: str) -> dict[int, list[str]]:
    """threshold → row tokens of one checked-in table artefact."""
    lines = (GOLDEN_DIR / f"{name}.txt").read_text().strip().splitlines()
    rows: dict[int, list[str]] = {}
    for line in lines[3:]:  # skip title, header, rule
        tokens = line.split()
        assert tokens[0] == ">", f"unexpected row in {name}: {line!r}"
        rows[int(tokens[1])] = tokens[2:]
    return rows


def assert_cell(label: str, token: str, value: float) -> None:
    """One golden cell: rendered ``value`` must equal ``token`` to 1e-9."""
    if token == "-":
        assert math.isnan(value), f"{label}: expected NaN, got {value!r}"
        return
    if token.endswith("%"):
        got = float(f"{100 * value:.2f}")
        want = float(token[:-1])
    else:
        got = float(format_cell(float(value)))
        want = float(token)
    assert abs(got - want) < TOLERANCE, (
        f"{label}: golden {want} != recomputed {got}"
    )


@pytest.fixture(scope="module", autouse=True)
def live_profiler():
    """Sample continuously while the golden sweeps run.

    The teardown assertion guards the guarantee itself: a profiler
    that silently captured nothing would make this determinism check
    vacuous.
    """
    with SamplingProfiler(hz=50) as profiler:
        yield profiler
    assert profiler.stats()["samples"] > 0, (
        "profiler captured no samples during the golden sweeps"
    )


@pytest.fixture(scope="module")
def study():
    dataset = QDTMRSyntheticGenerator(paper_scale_config()).generate(
        seed=GOLDEN_SEED
    )
    return CrashPronenessStudy(dataset, seed=GOLDEN_SEED, repeats=2)


@pytest.fixture(scope="module")
def engine():
    cache = ThresholdDatasetCache()
    with SweepExecutor(n_jobs=1) as executor:
        yield executor, cache


@pytest.fixture(scope="module")
def phase1(study, engine):
    executor, cache = engine
    return study.run_phase1(executor=executor, cache=cache)


@pytest.fixture(scope="module")
def phase2(study, engine):
    executor, cache = engine
    return study.run_phase2(executor=executor, cache=cache)


@pytest.fixture(scope="module")
def bayes(study, engine):
    executor, cache = engine
    return study.run_supporting_sweep(
        "bayes", folds=10, executor=executor, cache=cache
    )


def check_tree_table(name: str, phase) -> None:
    golden = parse_golden(name)
    assert sorted(golden) == phase.thresholds()
    for row in phase.results:
        tokens = golden[row.threshold]
        label = f"{name} cp-{row.threshold}"
        assert_cell(f"{label} r2", tokens[0], row.r_squared)
        assert int(tokens[1]) == row.regression_leaves, f"{label} reg leaves"
        assert_cell(f"{label} npv", tokens[2], row.npv)
        assert_cell(f"{label} ppv", tokens[3], row.ppv)
        assert_cell(
            f"{label} misclass", tokens[4], row.misclassification_rate
        )
        assert int(tokens[5]) == row.decision_leaves, f"{label} dec leaves"


class TestGoldenTables:
    def test_table3_pinned(self, phase1):
        check_tree_table("table3", phase1)

    def test_table4_pinned(self, phase2):
        check_tree_table("table4", phase2)

    def test_table5_pinned(self, bayes):
        golden = parse_golden("table5")
        assert sorted(golden) == [r.threshold for r in bayes]
        for row in bayes:
            tokens = golden[row.threshold]
            a = row.assessment
            label = f"table5 cp-{row.threshold}"
            values = (
                a.accuracy,
                a.npv,
                a.ppv,
                a.weighted_precision,
                a.weighted_recall,
                a.roc_area,
                a.kappa,
            )
            for token, value, field in zip(
                tokens,
                values,
                ("correct", "npv", "ppv", "wp", "wr", "roc", "kappa"),
            ):
                assert_cell(f"{label} {field}", token, value)

    def test_cache_shared_across_families(self, phase2, bayes, engine):
        """Phase 2 and the Bayes sweep model the same crash-only table:
        the second family must be all cache hits."""
        _, cache = engine
        assert cache.hits >= len(bayes)
