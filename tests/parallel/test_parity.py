"""Serial / parallel parity: ``n_jobs=N`` must be bit-identical to
``n_jobs=1``.

Every task derives its seed from the study seed and its threshold
offset, so backend and scheduling order cannot reach the numbers.
These tests enforce that contract on the full study report — every
Table 3/4/5 cell, the threshold selection and the ANOVA p-value.
"""

import math

import pytest

from repro import CrashPronenessStudy
from repro.parallel import SweepExecutor, ThresholdDatasetCache


def report_cells(report) -> list[tuple[str, object]]:
    """Every reported value, labelled, in a fixed order."""
    cells: list[tuple[str, object]] = []
    for name, phase in (("t3", report.phase1), ("t4", report.phase2)):
        for row in phase.results:
            prefix = f"{name}/cp-{row.threshold}"
            cells += [
                (f"{prefix}/n_non_prone", row.n_non_prone),
                (f"{prefix}/n_prone", row.n_prone),
                (f"{prefix}/r_squared", row.r_squared),
                (f"{prefix}/reg_leaves", row.regression_leaves),
                (f"{prefix}/npv", row.npv),
                (f"{prefix}/ppv", row.ppv),
                (f"{prefix}/misclass", row.misclassification_rate),
                (f"{prefix}/dec_leaves", row.decision_leaves),
                (f"{prefix}/mcpv", row.mcpv),
                (f"{prefix}/kappa", row.kappa),
            ]
    for row in report.bayes:
        a = row.assessment
        prefix = f"t5/cp-{row.threshold}"
        cells += [
            (f"{prefix}/accuracy", a.accuracy),
            (f"{prefix}/npv", a.npv),
            (f"{prefix}/ppv", a.ppv),
            (f"{prefix}/w_precision", a.weighted_precision),
            (f"{prefix}/w_recall", a.weighted_recall),
            (f"{prefix}/roc_area", a.roc_area),
            (f"{prefix}/kappa", a.kappa),
            (f"{prefix}/mcpv", a.mcpv),
        ]
    cells.append(("selection", report.selection.selected_threshold))
    cells.append(
        ("selection/plateau", tuple(sorted(report.selection.plateau)))
    )
    cells.append(("anova_p", report.clustering.anova.p_value))
    return cells


def tree_row_cells(row) -> list[tuple[str, object]]:
    base = f"cp-{row.threshold}"
    cells = [
        (f"{base}/n_non_prone", row.n_non_prone),
        (f"{base}/n_prone", row.n_prone),
        (f"{base}/r_squared", row.r_squared),
        (f"{base}/reg_leaves", row.regression_leaves),
        (f"{base}/dec_leaves", row.decision_leaves),
    ]
    cells += [
        (f"{base}/{name}", value)
        for name, value in sorted(row.assessment.as_dict().items())
    ]
    return cells


def assert_identical_cells(left, right):
    assert [k for k, _ in left] == [k for k, _ in right]
    for (key, a), (_, b) in zip(left, right):
        both_nan = (
            isinstance(a, float)
            and isinstance(b, float)
            and math.isnan(a)
            and math.isnan(b)
        )
        assert both_nan or a == b, f"{key}: {a!r} != {b!r}"


@pytest.fixture(scope="module")
def study(small_dataset):
    return CrashPronenessStudy(small_dataset, seed=11)


class TestFullStudyParity:
    def test_two_jobs_bit_identical_to_serial(self, study):
        serial = study.run_full_study(n_clusters=8, n_jobs=1)
        parallel = study.run_full_study(n_clusters=8, n_jobs=2)
        assert_identical_cells(
            report_cells(serial), report_cells(parallel)
        )

    def test_backends_recorded_in_timings(self, study):
        serial = study.run_full_study(n_clusters=8, n_jobs=1)
        parallel = study.run_full_study(n_clusters=8, n_jobs=2)
        assert serial.timings.backend == "serial"
        assert parallel.timings.backend == "process"
        assert parallel.timings.n_jobs == 2
        assert serial.timings.n_tasks == parallel.timings.n_tasks
        assert serial.timings.cache_hits == parallel.timings.cache_hits


class TestSweepParity:
    def test_phase2_sweep_parity_with_shared_cache(self, study):
        serial = study.run_phase2(thresholds=(2, 8, 32))
        cache = ThresholdDatasetCache()
        with SweepExecutor(n_jobs=2) as executor:
            parallel = study.run_phase2(
                thresholds=(2, 8, 32), executor=executor, cache=cache
            )
        assert serial.thresholds() == parallel.thresholds()
        for a, b in zip(serial.results, parallel.results):
            assert_identical_cells(tree_row_cells(a), tree_row_cells(b))

    def test_m5_sweep_parity(self, study):
        serial = study.run_m5_sweep(thresholds=(4, 8))
        with SweepExecutor(n_jobs=2) as executor:
            parallel = study.run_m5_sweep(
                thresholds=(4, 8), executor=executor
            )
        assert serial == parallel

    def test_supporting_sweep_parity(self, study):
        serial = study.run_supporting_sweep(
            "bayes", thresholds=(4, 8), folds=5
        )
        with SweepExecutor(n_jobs=2) as executor:
            parallel = study.run_supporting_sweep(
                "bayes", thresholds=(4, 8), folds=5, executor=executor
            )
        assert [r.threshold for r in serial] == [
            r.threshold for r in parallel
        ]
        for a, b in zip(serial, parallel):
            assert_identical_cells(
                sorted(a.assessment.as_dict().items()),
                sorted(b.assessment.as_dict().items()),
            )
