"""Route-risk subsystem: graph build, query latency, precompute (the bench).

Trains one CP-8 scorer, lowers the dataset's road network into a
:class:`~repro.routing.graph.RiskGraph` (batch-scoring every segment
through the compiled bulk path), then measures the three costs the
serving path cares about:

* **graph build** — the one-off per-artefact cost of scoring all
  segments and lowering them into edge arrays;
* **query latency, cold vs cached** — safest-route planning with an
  empty :class:`~repro.routing.store.RouteStore` versus the same
  queries answered from it (the precomputed-popular-pair path);
* **precompute throughput** — how fast the store warms for the
  popular-pair set.

Asserted, hardware-independent: every safest plan's risk ≤ its
shortest plan's, cache hits are byte-identical to the misses that
filled them, and the store's hit counter accounts for every replay.
The full pytest run writes ``benchmarks/results/routing.txt``;
``--smoke`` is the quick CI variant.
"""

import time

from repro.core.deployment import CrashPronenessScorer
from repro.routing import RoutePlanner

BENCH_THRESHOLD = 8


def run_routing_bench(dataset, n_pairs=24, k=3, emit_name=None):
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances, threshold=BENCH_THRESHOLD, seed=0
    )
    checksum = scorer.to_dict()["checksum"]
    planner = RoutePlanner(dataset, n_clusters=8, cluster_seed=0)

    t0 = time.perf_counter()
    graph = planner.graph_for(scorer, checksum)
    build_s = time.perf_counter() - t0

    pairs = planner.popular_pairs(limit=n_pairs)

    # Cold: every query plans from scratch (store starts empty).
    t0 = time.perf_counter()
    cold = [
        planner.plan_safest(scorer, checksum, a, b, k=k) for a, b in pairs
    ]
    cold_s = time.perf_counter() - t0

    # Cached: identical queries now come straight from the store.
    hits_before = planner.store.stats()["hits"]
    t0 = time.perf_counter()
    cached = [
        planner.plan_safest(scorer, checksum, a, b, k=k) for a, b in pairs
    ]
    cached_s = time.perf_counter() - t0
    hits = planner.store.stats()["hits"] - hits_before

    for before, after in zip(cold, cached):
        assert after is before, "cache hit must ship the identical response"
        assert (
            before["safest"]["expected_crashes"]
            <= before["shortest"]["expected_crashes"]
        ), "safest plan riskier than shortest"
    assert hits == len(pairs), "replayed queries must all hit the store"

    # Precompute throughput into a fresh planner (cold store).
    warm_planner = RoutePlanner(dataset, n_clusters=8, cluster_seed=0)
    warm_planner.graph_for(scorer, checksum)
    t0 = time.perf_counter()
    n_plans = warm_planner.precompute(scorer, checksum, pairs=pairs, k=k)
    precompute_s = time.perf_counter() - t0

    lines = [
        "route-risk subsystem bench",
        f"  network: {graph.n_towns} towns, {graph.n_edges} edges, "
        f"{graph.n_scored_segments} scored segments",
        f"  graph build (score all segments + lower): {build_s:.3f}s",
        f"  safest query ({len(pairs)} pairs, k={k}):",
        f"    cold   {1e3 * cold_s / len(pairs):8.3f} ms/query "
        f"({len(pairs) / cold_s:8.0f} q/s)",
        f"    cached {1e3 * cached_s / len(pairs):8.3f} ms/query "
        f"({len(pairs) / cached_s:8.0f} q/s)",
        f"  precompute: {n_plans} plans in {precompute_s:.3f}s "
        f"({n_plans / precompute_s:.0f} plans/s)",
    ]
    text = "\n".join(lines)

    if emit_name is not None:
        from benchmarks.conftest import emit

        emit(emit_name, text)
    else:
        print(text)
    return {
        "build_s": build_s,
        "cold_ms": 1e3 * cold_s / len(pairs),
        "cached_ms": 1e3 * cached_s / len(pairs),
        "precompute_rps": n_plans / precompute_s,
    }


def test_routing(paper_dataset):
    stats = run_routing_bench(paper_dataset, emit_name="routing")
    assert stats["build_s"] > 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI check: small dataset, few pairs",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="also write benchmarks/results/routing.txt",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help="also write benchmarks/results/routing.json "
        "(machine-readable, for benchmarks/compare.py)",
    )
    args = parser.parse_args(argv)

    from repro.roads import (
        QDTMRSyntheticGenerator,
        paper_scale_config,
        small_config,
    )

    emit_name = "routing" if (args.emit or not args.smoke) else None
    if args.smoke:
        dataset = QDTMRSyntheticGenerator(
            small_config(n_segments=2500, n_towns=12)
        ).generate(seed=0)
        stats = run_routing_bench(dataset, n_pairs=8, emit_name=emit_name)
        print(
            f"\nsmoke ok (build {stats['build_s']:.3f}s, "
            f"cold {stats['cold_ms']:.2f}ms, "
            f"cached {stats['cached_ms']:.3f}ms)"
        )
    else:
        dataset = QDTMRSyntheticGenerator(paper_scale_config()).generate(
            seed=2011
        )
        stats = run_routing_bench(dataset, emit_name=emit_name)
    if args.emit_json:
        from benchmarks.conftest import emit_json

        emit_json(
            "routing",
            {
                "graph_build_s": {
                    "value": stats["build_s"], "better": "lower",
                },
                "cold_query_ms": {
                    "value": stats["cold_ms"], "better": "lower",
                },
                "cached_query_ms": {
                    "value": stats["cached_ms"], "better": "lower",
                },
                "precompute_plans_per_s": {
                    "value": stats["precompute_rps"], "better": "higher",
                },
            },
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
