"""Table 5 — phase 2 naive Bayes models (10-fold cross-validation).

Paper values:

    >2   NPV=0.880 PPV=0.759  wP=0.861 wR=0.785  ROC=0.884  κ=0.498
    >4   NPV=0.851 PPV=0.810  wP=0.883 wR=0.825  ROC=0.891  κ=0.632
    >8   NPV=0.771 PPV=0.857  wP=0.817 wR=0.813  ROC=0.869  κ=0.626  <- MCPV peak band
    >16  NPV=0.782 PPV=0.770  wP=0.814 wR=0.779  ROC=0.858  κ=0.493
    >32  NPV=0.893 PPV=0.665  wP=0.922 wR=0.876  ROC=0.882  κ=0.388
    >64  NPV=0.990 PPV=0.989  wP=0.995 wR=0.990  ROC=0.992  κ=0.999  (degenerate)

Benchmark unit: one 10-fold CV naive-Bayes run at CP-8.  Emitted: the
full synthetic Table 5 from the session-shared sweep.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.reporting import render_table


def test_table5(benchmark, study, bayes_sweep):
    benchmark.pedantic(
        study.run_supporting_sweep,
        kwargs={"model": "bayes", "thresholds": (8,), "folds": 10},
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"> {r.threshold}",
            r.assessment.accuracy,
            r.assessment.npv,
            r.assessment.ppv,
            r.assessment.weighted_precision,
            r.assessment.weighted_recall,
            r.assessment.roc_area,
            r.assessment.kappa,
        ]
        for r in bayes_sweep
    ]
    text = render_table(
        [
            "Target",
            "correct",
            "NPV",
            "PPV",
            "wPrecision",
            "wRecall",
            "ROC area",
            "Kappa",
        ],
        rows,
        title="Table 5: phase 2 naive Bayes (10-fold CV, crash-only data)",
    )
    emit("table5", text)

    by_threshold = {r.threshold: r for r in bayes_sweep}
    # Kappa forms an inverse-U over the non-degenerate thresholds:
    # better in the 4–16 band than at 32 (paper: 0.63 vs 0.39).
    mid_kappa = max(
        by_threshold[k].assessment.kappa for k in (4, 8, 16)
    )
    assert mid_kappa > by_threshold[32].assessment.kappa
    # ROC areas in a credible range throughout (paper ~0.86–0.89).
    for row in bayes_sweep:
        if row.threshold <= 32:
            assert 0.7 < row.assessment.roc_area <= 1.0
    # MCPV peaks in the low-mid band.
    mcpv = {
        k: v.assessment.mcpv
        for k, v in by_threshold.items()
        if k <= 32 and not np.isnan(v.assessment.mcpv)
    }
    assert max(mcpv, key=mcpv.get) in (2, 4, 8, 16)
