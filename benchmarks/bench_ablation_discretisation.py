"""Ablation — discretising the interval inputs.

The paper: "Transformations involving information loss, such as
discretization, were avoided and interval values were retained.  Most
transformations performed poorly."  This ablation fits the CP-8
decision tree on (a) raw interval attributes and (b) attributes binned
into 5 equal-frequency buckets, and compares MCPV.

Benchmark unit: the discretise-everything + refit pipeline.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import TARGET_COLUMN, assess_scores, build_threshold_dataset
from repro.core.reporting import render_table
from repro.datatable import CategoricalColumn, NumericColumn
from repro.evaluation import train_valid_split
from repro.mining import (
    DecisionTreeClassifier,
    EqualFrequencyDiscretiser,
    TreeConfig,
)
from repro.roads import ROAD_ATTRIBUTES

CONFIG = TreeConfig(min_leaf=60, min_split=150, max_leaves=160)
N_BINS = 5


def _discretise_table(train, valid):
    """Bin every interval road attribute; fit bins on train only."""
    interval_names = [
        a.name for a in ROAD_ATTRIBUTES if a.level.value == "interval"
    ]
    labels = tuple(f"bin{i}" for i in range(N_BINS)) + ("missing",)
    for name in interval_names:
        discretiser = EqualFrequencyDiscretiser(N_BINS).fit(
            train.numeric(name)
        )
        for table_name, table in (("train", train), ("valid", valid)):
            bins = discretiser.transform(table.numeric(name))
            bins = np.where(bins < 0, N_BINS, bins)  # missing -> own level
            column = CategoricalColumn.from_codes(name, bins, labels)
            if table_name == "train":
                train = table.with_column(column)
            else:
                valid = table.with_column(column)
    return train, valid


def _fit(train, valid, threshold):
    model = DecisionTreeClassifier(CONFIG).fit(train, TARGET_COLUMN)
    actual = build_threshold_dataset(valid, threshold).target_vector()
    return assess_scores(actual, model.predict_proba(valid)), model


def _discretised_run(paper_dataset, threshold):
    dataset = build_threshold_dataset(
        paper_dataset.crash_instances, threshold
    )
    rng = np.random.default_rng(23)
    split = train_valid_split(
        dataset.table, rng, 0.6, stratify_by=TARGET_COLUMN
    )
    binned_train, binned_valid = _discretise_table(
        split.train, split.valid
    )
    return _fit(binned_train, binned_valid, threshold), split


def test_ablation_discretisation(benchmark, paper_dataset):
    threshold = 8
    (binned_assessment, binned_model), split = benchmark.pedantic(
        _discretised_run,
        args=(paper_dataset, threshold),
        rounds=1,
        iterations=1,
    )
    raw_assessment, raw_model = _fit(split.train, split.valid, threshold)

    rows = [
        [
            name,
            a.mcpv,
            a.kappa,
            a.roc_area,
            model.n_leaves,
        ]
        for name, a, model in (
            ("interval values (paper)", raw_assessment, raw_model),
            (f"{N_BINS}-bin discretised", binned_assessment, binned_model),
        )
    ]
    text = render_table(
        ["inputs", "MCPV", "Kappa", "ROC area", "leaves"],
        rows,
        title=f"Ablation: discretisation of interval inputs at CP-{threshold}",
    )
    emit("ablation_discretisation", text)

    # Discretisation loses split resolution: the interval-value model
    # should rank at least as well (paper: transformations performed
    # poorly).
    assert raw_assessment.roc_area >= binned_assessment.roc_area - 0.01
    assert raw_assessment.mcpv >= binned_assessment.mcpv - 0.02
