"""Figure 4 — phase 3 crash-count ranges by cluster.

The paper clusters the crash-only data with simple k-means (k = 32) on
road attributes and reads per-cluster crash-count box ranges: six very
low-crash clusters whose IQRs sit within 0–4 crashes, roughly seven
more mostly below 10, and a supporting ANOVA with p ≈ 0.

Benchmark unit: the full phase-3 run (k-means fit + range analysis +
ANOVA).  Emitted: per-cluster box ranges and the ANOVA verdict.
"""

from benchmarks.conftest import emit
from repro.core.reporting import render_box_ranges


def test_figure4(benchmark, study):
    analysis = benchmark.pedantic(
        study.run_phase3,
        kwargs={"threshold": 8, "n_clusters": 32},
        rounds=1,
        iterations=1,
    )

    boxes = [
        (
            f"cluster {p.cluster_id:02d}",
            p.minimum,
            p.q1,
            p.median,
            p.q3,
            p.maximum,
        )
        for p in analysis.profiles
    ]
    text = render_box_ranges(
        boxes,
        title="Figure 4: crash-count ranges by cluster (sorted by mean)",
        axis_max=min(80.0, max(p.maximum for p in analysis.profiles)),
    )
    text += (
        f"\n\nvery-low-crash clusters (IQR within 0-4): "
        f"{analysis.n_very_low_crash_clusters}"
        f"\nclusters mostly below 10 crashes:        "
        f"{analysis.n_mostly_below_ten_clusters}"
        f"\nband mix: {analysis.band_counts()}"
        f"\nANOVA: F={analysis.anova.f_statistic:.1f}, "
        f"p={analysis.anova.p_value:.3g}, "
        f"eta^2={analysis.anova.eta_squared:.3f}"
    )
    emit("figure4", text)

    # Paper's findings, as shape:
    # 1. Several amply-packed very-low-crash clusters exist.
    ample_low = [
        p
        for p in analysis.profiles
        if p.is_very_low_crash and p.n_instances >= 20
    ]
    assert len(ample_low) >= 3
    # 2. More clusters sit mostly below 10 crashes.
    assert (
        analysis.n_very_low_crash_clusters
        + analysis.n_mostly_below_ten_clusters
        >= 6
    )
    # 3. Clusters span low / medium / high bands.
    bands = analysis.band_counts()
    assert bands["low"] >= 1 and bands["high"] >= 1
    # 4. ANOVA p-value ~ 0.
    assert analysis.anova.p_value < 1e-12
    assert analysis.supports_non_crash_prone_roads()
