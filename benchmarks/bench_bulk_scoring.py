"""Compiled-kernel vs interpreted bulk re-score (the scoring bench).

The deployment story's hot path is the network-wide re-score: every
segment of the network through the fitted CP-8 tree.  This bench times
that pass at 100k rows through each evaluation path over the *same*
fitted tree:

* ``route_rows``      — the interpreted TreeNode walk (the baseline);
* ``plan numpy``      — the compiled plan's mask-propagation backend;
* ``plan default``    — the compiled plan, native C kernel when the
  host can build one (``repro.mining.tree.kernel``);
* ``scorer.score``    — the end-to-end compiled path (column
  extraction included), which is what serving and the CLI run;
* ``sharded pool``    — ``score_table_sharded`` across a process pool
  (pool spin-up included).

Asserted, hardware-independent: all paths are element-for-element
identical, and the compiled single-core path beats the interpreted
walk by >= 3x.  Pool speedup is only asserted on multi-core hosts —
a single core pays pickling for nothing, and the artefact records
that honestly (cores are printed next to the ratio).

Run ``python benchmarks/bench_bulk_scoring.py --smoke`` for the quick
CI parity check (small dataset, no artefact), or under pytest for the
full run that writes ``benchmarks/results/bulk_scoring.txt``.
"""

import os
import time

import numpy as np

from repro.core.deployment import CrashPronenessScorer
from repro.core.reporting import render_table
from repro.mining.tree import route_rows
from repro.mining.tree.kernel import native_kernel_status
from repro.serving import score_table_sharded

BENCH_THRESHOLD = 8
SHARD_JOBS = 2


def _best_of(fn, rounds):
    """(best wall seconds, last result) over ``rounds`` calls."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _tile_segments(table, n_rows):
    """Repeat the segment table up to ``n_rows`` rows (a re-score is
    the same tree walk whether or not rows repeat)."""
    reps = -(-n_rows // table.n_rows)
    indices = np.tile(np.arange(table.n_rows), reps)[:n_rows]
    return table.take(indices)


def run_bulk_bench(dataset, n_rows, rounds=3, emit_name=None):
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances, threshold=BENCH_THRESHOLD, seed=0
    )
    model = scorer.model
    table = _tile_segments(dataset.segment_table, n_rows)
    plan = model.scoring_plan()
    assert plan is not None, "the fitted tree must compile"

    extract_s, features = _best_of(
        lambda: model._features_for(table), rounds
    )

    interp_s, (interp_pred, interp_leaf) = _best_of(
        lambda: route_rows(model.root, features), rounds
    )
    numpy_s, numpy_out = _best_of(
        lambda: plan.evaluate(features, backend="numpy"), rounds
    )
    default_s, default_out = _best_of(
        lambda: plan.evaluate(features), rounds
    )
    end_to_end_s, end_to_end = _best_of(
        lambda: scorer.score(table), rounds
    )
    sharded_s, sharded = _best_of(
        lambda: score_table_sharded(scorer, table, n_jobs=SHARD_JOBS), 1
    )

    # Parity first: a fast wrong answer is not a result.
    for label, (pred, leaf) in (
        ("numpy", numpy_out),
        ("default", default_out),
    ):
        assert np.array_equal(pred, interp_pred), f"{label} pred parity"
        assert np.array_equal(leaf, interp_leaf), f"{label} leaf parity"
    assert np.array_equal(end_to_end, interp_pred), "end-to-end parity"
    assert np.array_equal(sharded, interp_pred), "sharded parity"

    # The acceptance ratio: single-core compiled vs interpreted, on the
    # same pre-extracted feature block.
    kernel_speedup = interp_s / default_s
    end_to_end_speedup = (extract_s + interp_s) / end_to_end_s

    def row(stage, seconds, baseline):
        return [
            stage,
            f"{seconds * 1e3:.2f}",
            f"{n_rows / seconds:,.0f}",
            f"{baseline / seconds:.2f}x",
        ]

    stage_rows = [
        row("route_rows (interpreted)", interp_s, interp_s),
        row("plan numpy backend", numpy_s, interp_s),
        row("plan default backend", default_s, interp_s),
        row(
            "scorer.score (extract+eval)",
            end_to_end_s,
            extract_s + interp_s,
        ),
        row(
            f"sharded pool (n_jobs={SHARD_JOBS})",
            sharded_s,
            extract_s + interp_s,
        ),
    ]
    text = render_table(
        ["stage", "wall ms", "rows/s", "speedup"],
        stage_rows,
        title=(
            f"Bulk re-score: {n_rows:,} rows through the CP-"
            f"{BENCH_THRESHOLD} tree ({model.n_leaves} leaves, "
            f"{model.n_nodes} nodes)"
        ),
    )
    text += (
        f"\nfeature extraction (shared by all paths): "
        f"{extract_s * 1e3:.2f} ms"
        f"\nnative kernel: {native_kernel_status()}"
        f"\ncpu cores available: {os.cpu_count()}"
        f"\nparity (all paths vs route_rows, predictions and leaf "
        f"ids): True"
        f"\nkernel speedup (plan default vs interpreted, "
        f"single core): {kernel_speedup:.2f}x"
        f"\nend-to-end speedup (scorer.score vs extract+route_rows): "
        f"{end_to_end_speedup:.2f}x"
        f"\nsharded-pool note: includes pool spin-up and artefact "
        f"pickling; on a single-core host this can only break even."
    )
    if emit_name is not None:
        from benchmarks.conftest import emit

        emit(emit_name, text)
    else:
        print(text)
    return kernel_speedup, end_to_end_speedup


def test_bulk_scoring(paper_dataset):
    kernel_speedup, end_to_end_speedup = run_bulk_bench(
        paper_dataset, n_rows=100_000, emit_name="bulk_scoring"
    )
    # ISSUE acceptance: >= 3x single-core over the interpreted walk on
    # the 100k-row network-wide re-score.
    assert kernel_speedup >= 3.0
    assert end_to_end_speedup >= 3.0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI check: small dataset, parity asserted, no "
        "artefact written and no speedup floor",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help="also write benchmarks/results/bulk_scoring.json "
        "(machine-readable, for benchmarks/compare.py)",
    )
    args = parser.parse_args(argv)

    from repro.roads import (
        QDTMRSyntheticGenerator,
        paper_scale_config,
        small_config,
    )

    if args.smoke:
        dataset = QDTMRSyntheticGenerator(
            small_config(n_segments=3000, n_towns=12)
        ).generate(seed=0)
        kernel_speedup, end_to_end_speedup = run_bulk_bench(
            dataset, n_rows=20_000, rounds=2
        )
        print(f"\nsmoke ok (kernel speedup {kernel_speedup:.2f}x)")
    else:
        dataset = QDTMRSyntheticGenerator(paper_scale_config()).generate(
            seed=2011
        )
        kernel_speedup, end_to_end_speedup = run_bulk_bench(
            dataset, n_rows=100_000, emit_name="bulk_scoring"
        )
        assert kernel_speedup >= 3.0 and end_to_end_speedup >= 3.0
    if args.emit_json:
        from benchmarks.conftest import emit_json

        emit_json(
            "bulk_scoring",
            {
                "kernel_speedup": {
                    "value": kernel_speedup, "better": "higher",
                },
                "end_to_end_speedup": {
                    "value": end_to_end_speedup, "better": "higher",
                },
            },
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
