"""Figure 1 — distribution of annual crash counts.

The paper's scatterplot shows, for each study year 2004–2007, the
number of segments at each per-year crash count: ~1,200–1,400 segments
at count 1, dropping exponentially, with the four year-series lying on
top of each other.

The benchmark times the per-year distribution extraction; the emitted
series is the synthetic Figure 1 (one column per year).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.reporting import render_series


def test_figure1(benchmark, paper_dataset):
    annual = benchmark(paper_dataset.annual_count_distribution)

    series = {
        str(year): {
            count: float(frequency)
            for count, frequency in histogram.items()
            if count <= 35
        }
        for year, histogram in annual.items()
    }
    text = render_series(
        series,
        x_label="year crash count",
        title="Figure 1: segments per annual crash count, by study year",
        decimals=0,
    )
    emit("figure1", text)

    # Shape: exponential decay within each year...
    for year, histogram in annual.items():
        assert histogram[1] > 3 * histogram.get(5, 1), year
        assert histogram[1] > 10 * histogram.get(15, 1), year
    # ...and year-on-year stability (max/min of count-1 frequencies).
    firsts = np.array([histogram[1] for histogram in annual.values()])
    assert firsts.max() / firsts.min() < 1.25
