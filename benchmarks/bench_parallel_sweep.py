"""Serial vs parallel full-sweep wall time (the sweep-engine bench).

The full study dispatches ~19 independent ``(threshold, model)`` fit
tasks (7 phase-1 trees, 6 phase-2 trees, 6 naive-Bayes CV runs); with
``n_jobs=N`` they run on a process pool.  The speedup ceiling is
min(N, cores, tasks-per-stage); on a single-core host the parallel
run only pays pickling overhead, so the emitted artefact records the
core count alongside the measured ratio.

What is asserted here is the engine's *contract*, not the hardware:
the ``n_jobs=4`` report must be bit-identical to the serial one, and
the threshold-dataset cache must have served the Bayes sweep from the
phase-2 builds.
"""

import math
import os
import time

from benchmarks.conftest import emit
from repro.core.reporting import render_table


def _report_values(report):
    values = []
    for phase in (report.phase1, report.phase2):
        for r in phase.results:
            values += [
                r.threshold,
                r.r_squared,
                r.npv,
                r.ppv,
                r.mcpv,
                r.kappa,
                r.misclassification_rate,
            ]
    for r in report.bayes:
        values += [r.threshold, r.assessment.roc_area, r.mcpv, r.kappa]
    values.append(report.selection.selected_threshold)
    values.append(report.clustering.anova.p_value)
    return values


def _identical(left, right):
    return len(left) == len(right) and all(
        a == b
        or (
            isinstance(a, float)
            and isinstance(b, float)
            and math.isnan(a)
            and math.isnan(b)
        )
        for a, b in zip(left, right)
    )


def test_parallel_sweep(benchmark, study):
    start = time.perf_counter()
    serial = study.run_full_study(n_jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        study.run_full_study, kwargs={"n_jobs": 4}, rounds=1, iterations=1
    )
    parallel_seconds = time.perf_counter() - start

    parity = _identical(_report_values(serial), _report_values(parallel))
    speedup = serial_seconds / parallel_seconds

    rows = [
        ["serial", 1, f"{serial_seconds:.2f}", "1.00x"],
        ["process", 4, f"{parallel_seconds:.2f}", f"{speedup:.2f}x"],
    ]
    text = render_table(
        ["backend", "n_jobs", "wall s", "speedup"],
        rows,
        title="Parallel sweep: full study wall time (paper scale)",
    )
    text += (
        f"\ncpu cores available: {os.cpu_count()}"
        f"\ntasks dispatched per run: {serial.timings.n_tasks}"
        f"\nparity (n_jobs=4 vs serial, all report values): {parity}"
        f"\nthreshold dataset cache: {serial.timings.cache_hits} hits, "
        f"{serial.timings.cache_misses} misses per run"
        f"\n\nserial per-stage breakdown:\n{serial.timings.render()}"
        f"\n\nprocess per-stage breakdown:\n{parallel.timings.render()}"
    )
    emit("parallel_sweep", text)

    # The engine's contract is hardware-independent: identical numbers,
    # and the Bayes sweep served entirely from cached CP-k datasets.
    assert parity
    assert serial.timings.cache_hits >= len(serial.bayes)
    # On a multi-core host the pool must actually help; a single core
    # can only break even, so gate the speedup assertion on the cores.
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5
