"""Shared benchmark fixtures.

Every bench runs against one paper-scale dataset (~20,000 segments,
~15,000 crash instances, ~15,400 zero-altered no-crash instances),
generated once per session with the canonical seed.  Seed 2011 was
chosen because its extreme tail is the closest to the paper's: 151
instances above the CP-64 threshold versus the paper's 174.

Each bench both *times* its pipeline stage (pytest-benchmark) and
*emits* the reproduced table / figure series: printed to stdout (run
with ``-s`` to watch) and written to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference stable artefacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import CrashPronenessStudy
from repro.roads import QDTMRSyntheticGenerator, paper_scale_config

BENCH_SEED = 2011
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_dataset():
    """The canonical paper-scale dataset."""
    return QDTMRSyntheticGenerator(paper_scale_config()).generate(
        seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def study(paper_dataset):
    return CrashPronenessStudy(paper_dataset, seed=BENCH_SEED, repeats=2)


@pytest.fixture(scope="session")
def phase1(study):
    """Phase-1 sweep, shared by the Table 3 and Figure 2 benches."""
    return study.run_phase1()


@pytest.fixture(scope="session")
def phase2(study):
    """Phase-2 sweep, shared by the Table 4 and Figure 2 benches."""
    return study.run_phase2()


@pytest.fixture(scope="session")
def bayes_sweep(study):
    """Naive-Bayes 10-fold sweep, shared by Table 5 and Figure 3."""
    return study.run_supporting_sweep("bayes", folds=10)


def emit(name: str, text: str) -> None:
    """Print a reproduced artefact and persist it under results/."""
    print(f"\n===== {name} =====\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
