"""Shared benchmark fixtures.

Every bench runs against one paper-scale dataset (~20,000 segments,
~15,000 crash instances, ~15,400 zero-altered no-crash instances),
generated once per session with the canonical seed.  Seed 2011 was
chosen because its extreme tail is the closest to the paper's: 151
instances above the CP-64 threshold versus the paper's 174.

Each bench both *times* its pipeline stage (pytest-benchmark) and
*emits* the reproduced table / figure series: printed to stdout (run
with ``-s`` to watch) and written to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference stable artefacts.

Perf-sensitive benches additionally persist a machine-readable
``benchmarks/results/<name>.json`` via :func:`emit_json` (script mode:
``--emit-json``); two such files from different builds are diffed by
``benchmarks/compare.py``, whose ``--max-regress`` flag turns the diff
into a CI exit gate.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.core import CrashPronenessStudy
from repro.roads import QDTMRSyntheticGenerator, paper_scale_config

BENCH_SEED = 2011
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def paper_dataset():
    """The canonical paper-scale dataset."""
    return QDTMRSyntheticGenerator(paper_scale_config()).generate(
        seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def study(paper_dataset):
    return CrashPronenessStudy(paper_dataset, seed=BENCH_SEED, repeats=2)


@pytest.fixture(scope="session")
def phase1(study):
    """Phase-1 sweep, shared by the Table 3 and Figure 2 benches."""
    return study.run_phase1()


@pytest.fixture(scope="session")
def phase2(study):
    """Phase-2 sweep, shared by the Table 4 and Figure 2 benches."""
    return study.run_phase2()


@pytest.fixture(scope="session")
def bayes_sweep(study):
    """Naive-Bayes 10-fold sweep, shared by Table 5 and Figure 3."""
    return study.run_supporting_sweep("bayes", folds=10)


def emit(name: str, text: str) -> None:
    """Print a reproduced artefact and persist it under results/."""
    print(f"\n===== {name} =====\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


#: Version of the ``results/<name>.json`` layout; compare.py refuses
#: to diff files whose versions disagree.
RESULT_SCHEMA_VERSION = 1


def host_fingerprint() -> dict:
    """Where a benchmark number came from (recorded, never compared)."""
    import numpy

    from repro.mining.tree.kernel import native_kernel_status

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy.__version__,
        "native_kernel": native_kernel_status(),
        "cpu_count": os.cpu_count(),
    }


def emit_json(name: str, metrics: dict) -> Path:
    """Persist machine-readable bench metrics for compare.py.

    ``metrics`` maps metric name to ``{"value": float, "better":
    "higher"|"lower"}`` — the direction tells the comparator which way
    a delta counts as a regression.  Written to
    ``benchmarks/results/<name>.json``.
    """
    for metric, entry in metrics.items():
        if entry.get("better") not in ("higher", "lower"):
            raise ValueError(
                f"metric {metric!r}: 'better' must be 'higher' or "
                f"'lower', got {entry.get('better')!r}"
            )
        float(entry["value"])  # must be a real number
    payload = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "bench": name,
        "host": host_fingerprint(),
        "metrics": metrics,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {len(metrics)} metric(s) -> {path}")
    return path
