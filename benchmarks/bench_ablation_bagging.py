"""Ablation — why the paper used a plain train/validation split.

"Thus the training/validation method was used because correlations
between the training and validation plots provided by this method are
good indicators of the raw model quality, an aspect that is obscured by
the use of high performance methods such as cross-validation, boosting,
bagging and so on."

This ablation fits a 20-tree bag at CP-8 and compares it with the
single tree on (a) headline metrics and (b) interpretability: the bag
gains a little AUC but multiplies the leaf count by the ensemble size
and loses the single rule set the paper's domain analysis needs.

Benchmark unit: the bagged fit.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import TARGET_COLUMN, assess_scores, build_threshold_dataset
from repro.core.reporting import render_table
from repro.evaluation import lift_table, train_valid_split
from repro.mining import (
    BaggedTreesClassifier,
    DecisionTreeClassifier,
    TreeConfig,
)

CONFIG = TreeConfig(min_leaf=100, min_split=250, max_leaves=64)


def _fit_bag(split):
    return BaggedTreesClassifier(
        n_estimators=20, config=CONFIG, seed=13
    ).fit(split.train, TARGET_COLUMN)


def test_ablation_bagging(benchmark, paper_dataset):
    threshold = 8
    dataset = build_threshold_dataset(
        paper_dataset.crash_instances, threshold
    )
    rng = np.random.default_rng(13)
    split = train_valid_split(
        dataset.table, rng, 0.6, stratify_by=TARGET_COLUMN
    )
    bag = benchmark.pedantic(
        _fit_bag, args=(split,), rounds=1, iterations=1
    )
    single = DecisionTreeClassifier(CONFIG).fit(split.train, TARGET_COLUMN)

    actual = build_threshold_dataset(split.valid, threshold).target_vector()
    rows = []
    results = {}
    for name, model, leaves in (
        ("single tree (paper)", single, single.n_leaves),
        ("bagged x20", bag, int(bag.mean_leaves() * bag.n_fitted_estimators)),
    ):
        scores = model.predict_proba(split.valid)
        assessment = assess_scores(actual, scores)
        lift = lift_table(actual, scores, n_bins=10)
        results[name] = (assessment, lift)
        rows.append(
            [
                name,
                assessment.mcpv,
                assessment.kappa,
                assessment.roc_area,
                lift.top_decile_lift(),
                leaves,
            ]
        )
    text = render_table(
        [
            "model",
            "MCPV",
            "Kappa",
            "ROC area",
            "top-decile lift",
            "total leaves",
        ],
        rows,
        title=f"Ablation: bagging vs the paper's single tree at CP-{threshold}",
    )
    single_scores = np.unique(single.predict_proba(split.valid)).size
    bag_scores = np.unique(bag.predict_proba(split.valid)).size
    text += (
        f"\n\ndistinct validation scores: single tree {single_scores} "
        f"(one per leaf - readable), bag {bag_scores} (smoothed - the "
        "raw model quality the paper wanted to see is obscured)"
    )
    emit("ablation_bagging", text)

    single_assessment, _ = results["single tree (paper)"]
    bag_assessment, _ = results["bagged x20"]
    # Bagging may rank a bit better but must not change the story...
    assert bag_assessment.roc_area >= single_assessment.roc_area - 0.02
    # ...while costing the single readable rule set.
    assert bag_scores > single_scores
