"""Compare two machine-readable benchmark result files.

``benchmarks/results/<name>.json`` files (written by
:func:`benchmarks.conftest.emit_json` / the script benches'
``--emit-json`` flag) carry ``{schema_version, bench, host, metrics}``
where each metric knows which direction is better.  This script diffs
a baseline against a candidate::

    python benchmarks/compare.py results/baseline.json results/pr.json \
        --max-regress 10

Without ``--max-regress`` it only prints the per-metric deltas.  With
it, any metric that regresses by more than PCT percent (in its own
"worse" direction) fails the comparison and the process exits 1 — the
CI perf gate.  Metrics present in only one file are reported but never
gate; host fingerprints are printed when they differ (a cross-host
diff is a smell, not an error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1


def load_result(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: schema_version {version!r} != {SCHEMA_VERSION} "
            f"(regenerate with this tree's emit_json)"
        )
    for key in ("bench", "host", "metrics"):
        if key not in payload:
            raise SystemExit(f"{path}: missing {key!r} block")
    return payload


def regression_pct(
    baseline: float, current: float, better: str
) -> float:
    """Percent change in the *worse* direction (negative = improved).

    A zero baseline with a worse current value is an infinite
    regression; zero-to-zero (or zero-to-better) is 0%.
    """
    worse = (
        current - baseline if better == "lower" else baseline - current
    )
    if baseline == 0:
        return float("inf") if worse > 0 else 0.0
    return 100.0 * worse / abs(baseline)


def compare(
    baseline: dict, current: dict, max_regress: float | None
) -> tuple[list[str], bool]:
    """All report lines plus whether the gate passed."""
    lines = []
    if baseline["bench"] != current["bench"]:
        lines.append(
            f"note: comparing different benches "
            f"({baseline['bench']!r} vs {current['bench']!r})"
        )
    if baseline["host"] != current["host"]:
        lines.append("note: host fingerprints differ")
        for key in sorted(set(baseline["host"]) | set(current["host"])):
            old = baseline["host"].get(key)
            new = current["host"].get(key)
            if old != new:
                lines.append(f"  host.{key}: {old!r} -> {new!r}")

    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    ok = True
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        if name not in cur_metrics:
            lines.append(f"  {name}: only in baseline (skipped)")
            continue
        if name not in base_metrics:
            value = cur_metrics[name]["value"]
            lines.append(f"  {name}: new metric, {value:g} (skipped)")
            continue
        old = float(base_metrics[name]["value"])
        new = float(cur_metrics[name]["value"])
        better = base_metrics[name].get("better", "lower")
        pct = regression_pct(old, new, better)
        verdict = ""
        if max_regress is not None and pct > max_regress:
            verdict = f"  REGRESSION (> {max_regress:g}% allowed)"
            ok = False
        direction = "regressed" if pct > 0 else "improved"
        lines.append(
            f"  {name}: {old:g} -> {new:g} "
            f"({abs(pct):.1f}% {direction}, better={better}){verdict}"
        )
    return lines, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--max-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if any shared metric regresses by more "
        "than PCT percent in its worse direction",
    )
    args = parser.parse_args(argv)

    baseline = load_result(args.baseline)
    current = load_result(args.current)
    lines, ok = compare(baseline, current, args.max_regress)
    print(f"bench {current['bench']}: {args.baseline} vs {args.current}")
    for line in lines:
        print(line)
    if not ok:
        print("FAIL: regression gate tripped", file=sys.stderr)
        return 1
    if args.max_regress is not None:
        print(f"OK: no metric regressed more than {args.max_regress:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
