"""Continuous-profiler overhead: the <5% acceptance gate (the bench).

The sampling profiler (:class:`repro.obs.SamplingProfiler`) is meant
to run *continuously* in production, so its cost must be measured, not
assumed.  This bench times one fixed CPU-bound workload — a full
network re-score through the CP tree, the hottest serving path — three
ways: unprofiled, under the default 19 Hz sampler, and under an
aggressive 97 Hz sampler.  Best-of-rounds wall clock keeps scheduler
noise out of the ratio.

Asserted: overhead at the default rate stays under 5%, and the
profiler actually captured samples while the workload ran (a sampler
that is cheap because it is dead proves nothing).  Artefacts:
``benchmarks/results/profiling.txt`` (human) and ``profiling.json``
(machine-readable, diffable with ``benchmarks/compare.py``).
"""

from __future__ import annotations

import time

from repro.core.deployment import CrashPronenessScorer
from repro.obs import SamplingProfiler

BENCH_THRESHOLD = 8
DEFAULT_HZ = 19.0
AGGRESSIVE_HZ = 97.0
MAX_OVERHEAD_PCT = 5.0


#: Target baseline wall-clock; long enough that a 19 Hz sampler takes
#: dozens of samples and a sub-5% delta is measurable above noise.
TARGET_SECONDS = 2.0


def _workload_seconds(scorer, table, repeats: int) -> float:
    t0 = time.perf_counter()
    for _ in range(repeats):
        scorer.score(table)
    return time.perf_counter() - t0


def _calibrate_repeats(scorer, table) -> int:
    """Repeats needed for a ~TARGET_SECONDS baseline on this host.

    One network re-score is ~1 ms under the native kernel, so the
    repeat count — not the table size — sets the measurement window.
    """
    per_pass = _workload_seconds(scorer, table, repeats=5) / 5
    return max(20, int(TARGET_SECONDS / per_pass))


def run_profiling_bench(
    dataset,
    repeats: int | None = None,
    rounds: int = 3,
    emit_name: str | None = None,
    emit_json_name: str | None = None,
):
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances, threshold=BENCH_THRESHOLD, seed=0
    )
    table = dataset.segment_table
    if repeats is None:
        repeats = _calibrate_repeats(scorer, table)

    def best_of(hz: float | None) -> tuple[float, dict | None]:
        best = float("inf")
        stats = None
        for _ in range(rounds):
            if hz is None:
                best = min(
                    best, _workload_seconds(scorer, table, repeats)
                )
                continue
            with SamplingProfiler(hz=hz) as profiler:
                elapsed = _workload_seconds(scorer, table, repeats)
            best = min(best, elapsed)
            stats = profiler.stats()
        return best, stats

    base_s, _ = best_of(None)
    runs = []
    for hz in (DEFAULT_HZ, AGGRESSIVE_HZ):
        elapsed, stats = best_of(hz)
        overhead_pct = 100.0 * (elapsed - base_s) / base_s
        runs.append(
            {
                "hz": hz,
                "seconds": elapsed,
                "overhead_pct": overhead_pct,
                "samples": stats["samples"],
                "distinct_stacks": stats["distinct_stacks"],
                "dropped_stacks": stats["dropped_stacks"],
            }
        )

    lines = [
        "continuous-profiler overhead bench",
        f"  workload: {repeats}x scorer.score over {table.n_rows:,} "
        f"segments (best of {rounds} rounds)",
        f"  baseline (no profiler): {base_s:.3f}s",
    ]
    for run in runs:
        lines.append(
            f"  {run['hz']:5.1f} Hz: {run['seconds']:.3f}s "
            f"({run['overhead_pct']:+.2f}% overhead, "
            f"{run['samples']} samples, "
            f"{run['distinct_stacks']} distinct stacks, "
            f"{run['dropped_stacks']} dropped)"
        )
    lines.append(
        f"  gate: default-rate overhead must stay < "
        f"{MAX_OVERHEAD_PCT:g}%"
    )
    text = "\n".join(lines)

    if emit_name is not None:
        from benchmarks.conftest import emit

        emit(emit_name, text)
    else:
        print(text)
    if emit_json_name is not None:
        from benchmarks.conftest import emit_json

        emit_json(
            emit_json_name,
            {
                "baseline_s": {"value": base_s, "better": "lower"},
                "overhead_pct_default_hz": {
                    "value": runs[0]["overhead_pct"], "better": "lower",
                },
                "overhead_pct_aggressive_hz": {
                    "value": runs[1]["overhead_pct"], "better": "lower",
                },
                "samples_default_hz": {
                    "value": runs[0]["samples"], "better": "higher",
                },
            },
        )

    # A sampler that slept through the workload proves nothing about
    # its cost; require real captures before trusting the ratio.
    assert runs[0]["samples"] > 0 and runs[1]["samples"] > 0
    assert runs[0]["overhead_pct"] < MAX_OVERHEAD_PCT, (
        f"default-rate profiling overhead "
        f"{runs[0]['overhead_pct']:.2f}% >= {MAX_OVERHEAD_PCT:g}%"
    )
    return base_s, runs


def test_profiling_overhead(paper_dataset):
    base_s, runs = run_profiling_bench(
        paper_dataset,
        emit_name="profiling",
        emit_json_name="profiling",
    )
    assert base_s > 0 and len(runs) == 2


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI check: small dataset, no artefacts, no "
        "overhead gate (shared-runner timing is too noisy)",
    )
    args = parser.parse_args(argv)

    from repro.roads import (
        QDTMRSyntheticGenerator,
        paper_scale_config,
        small_config,
    )

    if args.smoke:
        dataset = QDTMRSyntheticGenerator(
            small_config(n_segments=3000, n_towns=12)
        ).generate(seed=0)
        scorer = CrashPronenessScorer.train(
            dataset.crash_instances, threshold=BENCH_THRESHOLD, seed=0
        )
        with SamplingProfiler(hz=AGGRESSIVE_HZ) as profiler:
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.5:
                scorer.score(dataset.segment_table)
        stats = profiler.stats()
        assert stats["samples"] > 0, "profiler captured nothing"
        print(
            f"smoke ok ({stats['samples']} samples, "
            f"{stats['distinct_stacks']} distinct stacks)"
        )
        return 0
    dataset = QDTMRSyntheticGenerator(paper_scale_config()).generate(
        seed=2011
    )
    run_profiling_bench(
        dataset, emit_name="profiling", emit_json_name="profiling"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
