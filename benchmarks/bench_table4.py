"""Table 4 — phase 2 regression and decision trees (crash-only data).

Paper values:

    >2   R²=0.466  NPV=0.73  PPV=0.91  misc=12.86%
    >4   R²=0.594  NPV=0.79  PPV=0.92  misc=12.7%
    >8   R²=0.633  NPV=0.86  PPV=0.90  misc=12.2%   <- MCPV peak
    >16  R²=0.639  NPV=0.94  PPV=0.81  misc= 9.7%
    >32  R²=0.679  NPV=0.99  PPV=0.61  misc= 4.2%
    >64  R²=0.878  NPV=1.00  PPV=1.00  misc= 0.1%   (degenerate)

Benchmark unit: the CP-8 dataset build + both tree fits on crash-only
data.  The emitted table is the full synthetic Table 4.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import build_threshold_dataset
from repro.core.reporting import render_table


def _fit_unit(study, table):
    dataset = build_threshold_dataset(table, 8)
    return study._fit_trees_at(dataset, split_seed=99)


def test_table4(benchmark, study, paper_dataset, phase2):
    crash_only = paper_dataset.crash_instances
    benchmark.pedantic(
        _fit_unit, args=(study, crash_only), rounds=3, iterations=1
    )

    rows = [
        [
            f"> {r.threshold}",
            r.r_squared,
            r.regression_leaves,
            r.npv,
            r.ppv,
            f"{100 * r.misclassification_rate:.2f}%",
            r.decision_leaves,
        ]
        for r in phase2.results
    ]
    text = render_table(
        [
            "Target",
            "R-squared",
            "reg leaves",
            "NPV",
            "PPV",
            "misclass",
            "tree leaves",
        ],
        rows,
        title="Table 4: phase 2 trees on the crash-only dataset",
    )
    emit("table4", text)

    # Shape assertions:
    mcpv = phase2.mcpv_series()
    usable = {k: v for k, v in mcpv.items() if not np.isnan(v)}
    r2 = phase2.r_squared_series()
    # 1. MCPV peaks in the 4–16 band among non-degenerate thresholds.
    band = {k: v for k, v in usable.items() if k <= 32}
    peak = max(band, key=band.get)
    assert peak in (4, 8, 16)
    # 2. CP-2 is worse than the peak (low-count roads look like
    #    no-crash roads, and phase 2 has no no-crash class to absorb them).
    assert band[peak] > usable[2]
    # 3. R² rises from CP-2 into the band (paper: 0.466 -> 0.63).
    assert max(r2[k] for k in (4, 8, 16)) > r2[2]
    # 4. NPV approaches 1 at the top thresholds while PPV falls off
    #    from its low-band peak — the imbalance signature.
    npv = phase2.series("npv")
    ppv = phase2.series("ppv")
    top = max(k for k in npv if k <= 64)
    assert npv[top] > 0.9
    assert max(ppv[k] for k in (2, 4, 8)) >= ppv[32] - 0.02
