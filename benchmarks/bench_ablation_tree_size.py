"""Ablation — tree size (the paper's configuration study).

"During the configuration process, a series of modeling tests was
conducted on the data to determine a suitable tree size that did not
significantly truncate the tree."  This ablation sweeps the leaf budget
of the CP-8 decision tree and reports where the validation MCPV stops
improving — the point past which extra leaves only memorise.

Benchmark unit: one fit at the smallest budget.
"""

from benchmarks.conftest import emit
from repro.core import TARGET_COLUMN, assess_scores, build_threshold_dataset
from repro.core.reporting import render_table
from repro.evaluation import train_valid_split
from repro.mining import DecisionTreeClassifier, TreeConfig

LEAF_BUDGETS = (4, 8, 16, 32, 64, 160)


def _fit_with_budget(split, threshold, budget):
    config = TreeConfig(
        min_leaf=100, min_split=250, max_leaves=budget
    )
    model = DecisionTreeClassifier(config).fit(split.train, TARGET_COLUMN)
    actual = build_threshold_dataset(split.valid, threshold).target_vector()
    assessment = assess_scores(actual, model.predict_proba(split.valid))
    return model, assessment


def test_ablation_tree_size(benchmark, paper_dataset):
    import numpy as np

    threshold = 8
    dataset = build_threshold_dataset(
        paper_dataset.crash_instances, threshold
    )
    rng = np.random.default_rng(31)
    split = train_valid_split(
        dataset.table, rng, 0.6, stratify_by=TARGET_COLUMN
    )

    benchmark.pedantic(
        _fit_with_budget,
        args=(split, threshold, LEAF_BUDGETS[0]),
        rounds=3,
        iterations=1,
    )

    rows = []
    series = {}
    for budget in LEAF_BUDGETS:
        model, assessment = _fit_with_budget(split, threshold, budget)
        rows.append(
            [
                budget,
                model.n_leaves,
                assessment.mcpv,
                assessment.kappa,
                assessment.roc_area,
            ]
        )
        series[budget] = (model.n_leaves, assessment.mcpv)
    text = render_table(
        ["leaf budget", "leaves grown", "MCPV", "Kappa", "ROC area"],
        rows,
        title=f"Ablation: tree size at CP-{threshold}",
    )
    emit("ablation_tree_size", text)

    # A severely truncated tree underperforms; the curve saturates well
    # before the maximum budget (no significant truncation needed).
    smallest_mcpv = series[LEAF_BUDGETS[0]][1]
    best_mcpv = max(v for _n, v in series.values())
    assert best_mcpv > smallest_mcpv - 1e-9
    saturated = [
        budget
        for budget in LEAF_BUDGETS
        if series[budget][1] >= best_mcpv - 0.01
    ]
    assert min(saturated) < LEAF_BUDGETS[-1]
