"""Figure 2 — model efficiencies of phase 1 vs phase 2 decision trees.

The paper plots the MCPV statistic per threshold for both phases and
reads off the 4–8 crash band as the efficiency peak ("the best
combination results (near to the zero range) is between thresholds 4
and 8 crashes").

Benchmark unit: the threshold-selection rule over both phases' MCPV
curves.  Emitted: both MCPV series plus the selection verdict.
"""

from benchmarks.conftest import emit
from repro.core.reporting import render_series


def test_figure2(benchmark, study, phase1, phase2):
    selection = benchmark(study.select_threshold, phase1, phase2)

    text = render_series(
        {
            "phase 1 MCPV (crash + no-crash)": phase1.mcpv_series(),
            "phase 2 MCPV (crash only)": phase2.mcpv_series(),
        },
        x_label="crash-prone threshold",
        title="Figure 2: MCPV model efficiency, phase 1 vs phase 2",
    )
    text += "\n\nSelection: " + selection.describe()
    emit("figure2", text)

    # The paper's headline: the selected threshold falls in the 2–16
    # band near the crash/no-crash boundary (paper: between 4 and 8).
    assert selection.selected_threshold in (2, 4, 8, 16)
    assert 0 not in selection.plateau
