"""Ablation — the zero-altered counting set.

Phase 1 depends on the "imaginary set of non-crash instances"; this
ablation quantifies how its *size* affects the phase-1 model at the
selected threshold: the full ~15k-instance set vs a quarter-size set
vs none at all (which collapses phase 1 into phase 2).

Benchmark unit: the CP-4 phase-1 fit with the quarter-size set.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import CrashPronenessStudy, build_threshold_dataset
from repro.core.reporting import render_table
from repro.roads.attributes import attribute_names


def _phase1_at(study, combined, threshold):
    dataset = build_threshold_dataset(combined, threshold)
    return study._fit_trees_at(dataset, split_seed=17)


def _combined_with_cap(paper_dataset, cap, seed=0):
    shared = ["segment_id"] + attribute_names() + ["segment_crash_count"]
    crash = paper_dataset.crash_instances.select(shared)
    no_crash = paper_dataset.no_crash_instances.select(shared)
    if cap is not None and no_crash.n_rows > cap:
        rng = np.random.default_rng(seed)
        keep = np.sort(
            rng.choice(no_crash.n_rows, size=cap, replace=False)
        )
        no_crash = no_crash.take(keep)
    if cap == 0:
        return crash
    return crash.concat(no_crash)


def test_ablation_zero_altered(benchmark, study, paper_dataset):
    threshold = 4
    quarter = _combined_with_cap(
        paper_dataset, paper_dataset.n_no_crash_instances // 4
    )
    benchmark.pedantic(
        _phase1_at,
        args=(study, quarter, threshold),
        rounds=1,
        iterations=1,
    )

    variants = {
        "full zero-altered set": _combined_with_cap(paper_dataset, None),
        "quarter-size set": quarter,
        "no zero-altered set": _combined_with_cap(paper_dataset, 0),
    }
    results = {
        name: _phase1_at(study, table, threshold)
        for name, table in variants.items()
    }
    rows = [
        [
            name,
            table.n_rows,
            results[name].r_squared,
            results[name].npv,
            results[name].ppv,
            results[name].mcpv,
        ]
        for name, table in variants.items()
    ]
    text = render_table(
        ["variant", "instances", "R-squared", "NPV", "PPV", "MCPV"],
        rows,
        title=f"Ablation: zero-altered set size at CP-{threshold} (phase 1)",
    )
    emit("ablation_zero_altered", text)

    # The no-crash instances sharpen the negative class: with them the
    # CP-4 regression fit explains clearly more variance than without.
    assert (
        results["full zero-altered set"].r_squared
        > results["no zero-altered set"].r_squared
    )
    # A quarter of the set already recovers most of that benefit — the
    # value is in having credible negatives at all, not in their bulk.
    full = results["full zero-altered set"].mcpv
    part = results["quarter-size set"].mcpv
    assert part > results["no zero-altered set"].mcpv - 0.05
    assert abs(full - part) < 0.15
