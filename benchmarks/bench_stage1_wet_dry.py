"""Stage 1 — wet/dry crash differentiation (data understanding).

The paper's CRISP-DM data-understanding phase rests on its preliminary
study: "Attributes such as skid resistance and texture depth were found
to have strong relationship with roads having crashes, and wet & dry
roads were found to have differing distributions of crash with respect
to skid resistance".  This bench regenerates that finding on the
synthetic crash instances.

Benchmark unit: the full wet/dry analysis.
"""

from benchmarks.conftest import emit
from repro.core.wet_dry import wet_dry_analysis


def test_stage1_wet_dry(benchmark, paper_dataset):
    result = benchmark(
        wet_dry_analysis, paper_dataset.crash_instances
    )

    emit("stage1_wet_dry", result.describe())

    # The stage-1 findings, as shape:
    # 1. Wet crashes sit on lower-friction roads than dry crashes.
    assert result.wet_mean_f60 < result.dry_mean_f60
    # 2. The distributions differ decisively (KS and banded chi-square).
    assert result.distributions_differ(alpha=1e-6)
    # 3. The wet share falls monotonically-ish across friction bands.
    shares = result.wet_share_by_band
    assert shares[0] > shares[-1] + 0.1
    # 4. Wet crashes are a substantial minority overall.
    assert 0.15 < result.wet_share < 0.6
