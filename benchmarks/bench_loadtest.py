"""Serving load test: sustained mixed traffic under SLOs (the bench).

Spins up an in-process :class:`~repro.serving.ScoringService`, trains
one CP-8 scorer into a temp model directory, and drives the ``mixed``
workload profile (80% single scores, 15% batch, 5% model listings)
through :class:`~repro.loadtest.LoadTest` — warmup, measured window,
mid-run Prometheus scrape validation, client/server count parity, and
the ``benchmarks/slo/smoke.json`` thresholds.

Asserted, hardware-independent: zero request errors, exact count
parity, every exposition scrape valid, and the smoke SLOs (generous
bounds any working build clears).  The full pytest run writes
``benchmarks/results/loadtest.txt``; ``--smoke`` is the quick CI
variant (shorter window, no artefact).
"""

import tempfile
from pathlib import Path

from repro.core.deployment import CrashPronenessScorer
from repro.loadtest import LoadTest, SLOSpec
from repro.obs import Tracer
from repro.serving import ScoringService

BENCH_THRESHOLD = 8
SLO_PATH = Path(__file__).parent / "slo" / "smoke.json"


def _request_rows(dataset, scorer, n=256):
    expected = list(scorer.input_schema())
    table = dataset.segment_table
    return table.select(expected).to_rows(limit=min(n, table.n_rows))


def run_loadtest_bench(
    dataset, duration=5.0, rate=0.0, seed=7, emit_name=None
):
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances, threshold=BENCH_THRESHOLD, seed=0
    )
    rows = _request_rows(dataset, scorer)
    spec = SLOSpec.load(SLO_PATH)
    with tempfile.TemporaryDirectory() as model_dir:
        scorer.save(Path(model_dir) / "cp8.json")
        service = ScoringService(
            model_dir, port=0, tracer=Tracer(enabled=True)
        ).start()
        try:
            report = LoadTest(
                service.url,
                rows,
                service=service,
                profile="mixed",
                clients=4,
                duration=duration,
                rate=rate,
                warmup=1.0,
                seed=seed,
            ).run()
        finally:
            service.close()

    violations = spec.evaluate(report)
    text = report.render()
    text += (
        f"\nslo spec {spec.name!r}: {len(spec.rules)} rule(s), "
        f"{len(violations)} violation(s)"
    )
    for violation in violations:
        text += f"\nSLO VIOLATION: {violation.describe()}"

    if emit_name is not None:
        from benchmarks.conftest import emit

        emit(emit_name, text)
    else:
        print(text)

    # A fast run that lost requests or broke its exposition is not a
    # result.
    assert report.parity_ok, "client/server request counts disagree"
    assert report.total_errors == 0, "request errors under load"
    assert report.n_scrapes >= 1 and report.scrape_samples > 0
    assert not violations, [v.describe() for v in violations]
    return report


def test_loadtest(paper_dataset):
    report = run_loadtest_bench(
        paper_dataset, duration=5.0, emit_name="loadtest"
    )
    assert report.total_requests > 0


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI check: small dataset, short window",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="also write benchmarks/results/loadtest.txt",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help="also write benchmarks/results/loadtest.json "
        "(machine-readable, for benchmarks/compare.py)",
    )
    args = parser.parse_args(argv)

    from repro.roads import (
        QDTMRSyntheticGenerator,
        paper_scale_config,
        small_config,
    )

    emit_name = "loadtest" if (args.emit or not args.smoke) else None
    if args.smoke:
        dataset = QDTMRSyntheticGenerator(
            small_config(n_segments=2500, n_towns=12)
        ).generate(seed=0)
        report = run_loadtest_bench(
            dataset, duration=3.0, emit_name=emit_name
        )
        print(
            f"\nsmoke ok ({report.total_requests} requests, "
            f"{report.total_throughput_rps:.0f} req/s, parity OK)"
        )
    else:
        dataset = QDTMRSyntheticGenerator(paper_scale_config()).generate(
            seed=2011
        )
        report = run_loadtest_bench(
            dataset, duration=5.0, emit_name=emit_name
        )
    if args.emit_json:
        from benchmarks.conftest import emit_json

        metrics = {
            "throughput_rps": {
                "value": report.total_throughput_rps,
                "better": "higher",
            },
        }
        for summary in report.endpoints.values():
            key = summary.endpoint.replace(" ", "_").lower()
            metrics[f"{key}_p95_ms"] = {
                "value": summary.p95_ms,
                "better": "lower",
            }
        emit_json("loadtest", metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
