"""Columnar engine before/after: zero-copy kernels vs the object paths.

The columnar rewrite replaced the DataTable's per-row python loops and
copy-on-take semantics with contiguous numpy kernels and a binary
artefact cache.  This bench times both generations of each hot-path
kernel over the *same* instance table — the "before" implementations
are the pre-rewrite code transplanted verbatim (object loops,
per-unique filter scans, copy-per-take, per-cell ``float()`` CSV
parsing), so the ratios measure the rewrite and nothing else:

* ``filter``      — boolean mask to a new table (copy-per-column vs
  zero-copy fancy-index adoption);
* ``group_by``    — partition by crash count (one full-table mask scan
  per distinct value vs a single stable argsort);
* ``k-fold``      — stratified 10-fold assignment (per-fold
  concatenate+sort vs one int64 fold-code array);
* ``CP-k build``  — threshold-dataset target construction (python
  label list + per-value dict encode vs a vectorised comparison);
* ``to_rows``     — dict-per-row materialisation (per-cell loops vs
  one ``to_objects`` zip);
* ``CSV → table`` — per-cell ``float()`` loop vs the chunked
  vectorised reader, and the mmap-cached binary artefact re-load.

Asserted, hardware-independent: every before/after pair is
element-for-element identical, and (full mode, 1M rows) at least two
kernels clear the 5x acceptance floor while the mmap-cached load beats
re-parsing the CSV by >= 100x.  ``--smoke`` runs the parity checks on
a small table for CI; the full run writes
``benchmarks/results/datatable.txt``.
"""

import time
from pathlib import Path

import numpy as np

from repro.core.reporting import render_table
from repro.core.thresholds import (
    CRASH_COUNT_COLUMN,
    NEGATIVE_LABEL,
    POSITIVE_LABEL,
    build_threshold_dataset,
)
from repro.datatable import (
    CategoricalColumn,
    DataTable,
    NumericColumn,
    cached_read_csv,
    default_cache_path,
    read_csv,
    write_csv,
)
from repro.evaluation.validation import stratified_fold_codes

BENCH_THRESHOLD = 8
KFOLD_K = 10
TO_ROWS_CAP = 50_000  # both generations are O(n) python dicts; cap the stage


# -- pre-rewrite kernels, transplanted verbatim ---------------------------
#
# These reproduce the exact work the old code did: `take` fancy-indexed
# then *copied* (from_array/from_codes re-validated and defensively
# copied every hop), group_by rescanned the full table once per
# distinct value, k-fold built each fold by concatenate+sort, and the
# CSV reader called float() once per cell.


def legacy_filter(table, mask):
    """Old DataTable.filter: per-column fancy-index + defensive copy."""
    indices = np.flatnonzero(np.asarray(mask, dtype=bool))
    out = {}
    for name in table.column_names:
        col = table.column(name)
        if col.is_numeric:
            taken = np.asarray(col.values[indices], dtype=np.float64)
            out[name] = taken.copy()  # from_array always copied
        else:
            codes = np.asarray(col.codes[indices], dtype=np.int64)
            if codes.size and codes.max(initial=-1) >= len(col.labels):
                raise AssertionError("unreachable: codes validated")
            if codes.size and codes.min() < -1:
                raise AssertionError("unreachable: codes validated")
            out[name] = codes
    return out


def legacy_group_by(table, name):
    """Old DataTable.group_by: one full filter scan per distinct value."""
    col = table.column(name)
    groups = {}
    if col.is_numeric:
        values = col.values
        missing = np.isnan(values)
        for v in np.unique(values[~missing]):
            groups[float(v)] = legacy_filter(table, values == v)
        if missing.any():
            groups[None] = legacy_filter(table, missing)
    else:
        for code, label in enumerate(col.labels):
            mask = col.codes == code
            if mask.any():
                groups[label] = legacy_filter(table, mask)
        missing = col.codes == -1
        if missing.any():
            groups[None] = legacy_filter(table, missing)
    return groups


def legacy_stratified_kfold(y, k, rng):
    """Old stratified_kfold_indices: per-fold concatenate + sort."""
    folds = [[] for _ in range(k)]
    for value in np.unique(y):
        members = rng.permutation(np.flatnonzero(y == value))
        for fold_id, chunk in enumerate(np.array_split(members, k)):
            folds[fold_id].append(chunk)
    return [np.sort(np.concatenate(parts)) for parts in folds]


def legacy_threshold_target(counts, threshold):
    """Old CP-k target construction: label list + per-value dict encode."""
    positive = counts > threshold
    labels = [POSITIVE_LABEL if flag else NEGATIVE_LABEL for flag in positive]
    vocabulary = (NEGATIVE_LABEL, POSITIVE_LABEL)
    index = {label: code for code, label in enumerate(vocabulary)}
    codes = np.empty(len(labels), dtype=np.int64)
    for i, label in enumerate(labels):
        codes[i] = index[label]
    return codes


def legacy_to_rows(table):
    """Old to_rows over old to_objects (per-cell python loops)."""
    objects = {}
    for name in table.column_names:
        col = table.column(name)
        if col.is_numeric:
            objects[name] = [
                None if np.isnan(v) else float(v) for v in col.values
            ]
        else:
            objects[name] = [
                None if c == -1 else col.labels[c] for c in col.codes
            ]
    names = table.column_names
    return [
        {name: objects[name][i] for name in names}
        for i in range(table.n_rows)
    ]


def legacy_parse_csv(path):
    """Old read_csv: row-by-row append, per-cell float() probing."""
    import csv

    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        raw_columns = [[] for _ in header]
        for row in reader:
            for cell, column in zip(row, raw_columns):
                column.append(cell)
    data = {}
    for name, cells in zip(header, raw_columns):
        parsed = []
        numeric = True
        for cell in cells:
            if cell == "":
                parsed.append(None)
                continue
            try:
                parsed.append(float(cell))
            except ValueError:
                numeric = False
                break
        if not numeric:
            parsed = [None if cell == "" else cell for cell in cells]
        data[name] = parsed
    return DataTable.from_columns(data)


# -- harness --------------------------------------------------------------


def _best_of(fn, rounds):
    """(best wall seconds, last result) over ``rounds`` calls."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _tile_instances(table, n_rows):
    """Repeat the instance table up to ``n_rows`` rows."""
    reps = -(-n_rows // table.n_rows)
    indices = np.tile(np.arange(table.n_rows), reps)[:n_rows]
    return table.take(indices)


def _assert_group_parity(new_groups, old_groups, table):
    assert list(new_groups) == list(old_groups), "group key order"
    for key, group in new_groups.items():
        old = old_groups[key]
        for name in table.column_names:
            col = group.column(name)
            if col.is_numeric:
                assert np.array_equal(
                    col.values, old[name], equal_nan=True
                ), f"group {key!r} column {name!r}"
            else:
                assert np.array_equal(col.codes, old[name])


def run_datatable_bench(dataset, n_rows, rounds=3, label="paper scale"):
    base = dataset.combined_instances()
    table = _tile_instances(base, n_rows)
    counts = table.numeric(CRASH_COUNT_COLUMN)
    rng_seed = 2011

    # filter: keep segments above the median crash count (~half the rows)
    mask = counts > np.median(counts)
    old_filter_s, old_filtered = _best_of(
        lambda: legacy_filter(table, mask), max(1, rounds - 1)
    )
    new_filter_s, new_filtered = _best_of(lambda: table.filter(mask), rounds)
    for name in table.column_names:
        col = new_filtered.column(name)
        reference = old_filtered[name]
        if col.is_numeric:
            assert np.array_equal(col.values, reference, equal_nan=True)
        else:
            assert np.array_equal(col.codes, reference)

    # group_by: partition by crash count (tens of distinct values)
    old_group_s, old_groups = _best_of(
        lambda: legacy_group_by(table, CRASH_COUNT_COLUMN), 1
    )
    new_group_s, new_groups = _best_of(
        lambda: table.group_by(CRASH_COUNT_COLUMN), rounds
    )
    _assert_group_parity(new_groups, old_groups, table)

    # stratified k-fold assignment over the CP-8 target
    y = (counts > BENCH_THRESHOLD).astype(np.int64)
    old_fold_s, old_folds = _best_of(
        lambda: legacy_stratified_kfold(
            y, KFOLD_K, np.random.default_rng(rng_seed)
        ),
        max(1, rounds - 1),
    )
    new_fold_s, fold_codes = _best_of(
        lambda: stratified_fold_codes(
            y, KFOLD_K, np.random.default_rng(rng_seed)
        ),
        rounds,
    )
    for fold_id, old_fold in enumerate(old_folds):
        assert np.array_equal(
            np.flatnonzero(fold_codes == fold_id), old_fold
        ), f"fold {fold_id} partition"

    # CP-k build: the old python target loop vs the full vectorised
    # build (schema attach and table copy included — the comparison is
    # biased *against* the new path).
    old_cpk_s, old_codes = _best_of(
        lambda: legacy_threshold_target(counts, BENCH_THRESHOLD),
        max(1, rounds - 1),
    )
    new_cpk_s, cpk = _best_of(
        lambda: build_threshold_dataset(table, BENCH_THRESHOLD), rounds
    )
    assert np.array_equal(cpk.table.categorical("crash_prone").codes, old_codes)

    # to_rows: python dicts either way; capped, per-row loop vs zip
    head = table.head(min(TO_ROWS_CAP, table.n_rows))
    old_rows_s, old_rows = _best_of(lambda: legacy_to_rows(head), 1)
    new_rows_s, new_rows = _best_of(lambda: head.to_rows(), rounds)
    assert new_rows == old_rows

    stages = [
        ("filter (mask ~50%)", table.n_rows, old_filter_s, new_filter_s),
        (
            f"group_by ({len(new_groups)} groups)",
            table.n_rows,
            old_group_s,
            new_group_s,
        ),
        (
            f"stratified {KFOLD_K}-fold",
            table.n_rows,
            old_fold_s,
            new_fold_s,
        ),
        (f"CP-{BENCH_THRESHOLD} build", table.n_rows, old_cpk_s, new_cpk_s),
        ("to_rows", head.n_rows, old_rows_s, new_rows_s),
    ]
    speedups = {
        stage: before / after for stage, _, before, after in stages
    }
    rows = [
        [
            stage,
            f"{before * 1e3:.2f}",
            f"{after * 1e3:.2f}",
            f"{n / after:,.0f}",
            f"{before / after:.1f}x",
        ]
        for stage, n, before, after in stages
    ]
    text = render_table(
        ["kernel", "before ms", "after ms", "rows/s now", "speedup"],
        rows,
        title=(
            f"Columnar kernels, {label}: {table.n_rows:,} rows x "
            f"{table.n_columns} columns (before = pre-rewrite object "
            f"paths, single core, best-of-{rounds})"
        ),
    )
    return text, speedups


def run_io_bench(dataset, n_rows, tmp_dir, rounds=3, label="paper scale"):
    table = _tile_instances(dataset.combined_instances(), n_rows)
    csv_path = Path(tmp_dir) / f"instances_{n_rows}.csv"
    write_csv(table, csv_path)
    csv_mb = csv_path.stat().st_size / 1e6

    old_parse_s, old_table = _best_of(lambda: legacy_parse_csv(csv_path), 1)
    new_parse_s, new_table = _best_of(
        lambda: read_csv(csv_path), max(1, rounds - 1)
    )
    assert new_table.equals(old_table), "CSV reader parity"

    cache_path = default_cache_path(csv_path)
    cold_s, _ = _best_of(lambda: cached_read_csv(csv_path), 1)
    warm_s, warm_table = _best_of(lambda: cached_read_csv(csv_path), rounds)
    assert warm_table.equals(new_table), "mmap-cached parity"
    cache_mb = cache_path.stat().st_size / 1e6

    rows = [
        [
            "CSV parse (per-cell float loop)",
            f"{old_parse_s * 1e3:.2f}",
            f"{n_rows / old_parse_s:,.0f}",
            "1.0x",
        ],
        [
            "CSV parse (chunked vectorised)",
            f"{new_parse_s * 1e3:.2f}",
            f"{n_rows / new_parse_s:,.0f}",
            f"{old_parse_s / new_parse_s:.1f}x",
        ],
        [
            "cached read, cold (parse + write artefact)",
            f"{cold_s * 1e3:.2f}",
            f"{n_rows / cold_s:,.0f}",
            f"{old_parse_s / cold_s:.1f}x",
        ],
        [
            "cached read, warm (mmap artefact)",
            f"{warm_s * 1e3:.2f}",
            f"{n_rows / warm_s:,.0f}",
            f"{old_parse_s / warm_s:.1f}x",
        ],
    ]
    text = render_table(
        ["load path", "wall ms", "rows/s", "vs old parse"],
        rows,
        title=(
            f"Table loading, {label}: {n_rows:,} rows "
            f"(CSV {csv_mb:.1f} MB, artefact {cache_mb:.1f} MB)"
        ),
    )
    mmap_vs_parse = new_parse_s / warm_s
    text += (
        f"\nmmap-cached re-load vs vectorised CSV parse: "
        f"{mmap_vs_parse:.0f}x (floor: 100x at 1M rows)"
    )
    return text, mmap_vs_parse


def _run(dataset, scales, tmp_dir, rounds=3, emit_name=None):
    sections = []
    last_speedups = {}
    last_mmap = 0.0
    for label, n_rows in scales:
        kernel_text, last_speedups = run_datatable_bench(
            dataset, n_rows, rounds=rounds, label=label
        )
        io_text, last_mmap = run_io_bench(
            dataset, n_rows, tmp_dir, rounds=rounds, label=label
        )
        sections.append(kernel_text + "\n" + io_text)
    text = "\n\n".join(sections)
    text += (
        "\n\nhonest-numbers note: single core, best-of-N wall clock; "
        "'before' is the pre-rewrite implementation transplanted "
        "verbatim and parity-checked element-for-element against the "
        "new kernels on every run."
    )
    if emit_name is not None:
        from benchmarks.conftest import emit

        emit(emit_name, text)
    else:
        print(text)
    return last_speedups, last_mmap


def test_datatable_kernels(paper_dataset, benchmark, tmp_path_factory):
    tmp_dir = tmp_path_factory.mktemp("datatable-bench")
    speedups, mmap_vs_parse = benchmark.pedantic(
        _run,
        args=(
            paper_dataset,
            [
                ("paper scale", paper_dataset.combined_instances().n_rows),
                ("million-row", 1_000_000),
            ],
            tmp_dir,
        ),
        kwargs={"emit_name": "datatable"},
        rounds=1,
        iterations=1,
    )
    # ISSUE acceptance: >= 5x on at least two hot-path kernels at 1M
    # rows, and a millisecond-class mmap re-load >= 100x faster than
    # re-parsing the CSV.
    hot = [
        s
        for stage, s in speedups.items()
        if not stage.startswith("to_rows")
    ]
    assert sum(s >= 5.0 for s in hot) >= 2, speedups
    assert mmap_vs_parse >= 100.0


def main(argv=None):
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI check: small table, parity asserted, no "
        "speedup floors",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="also write benchmarks/results/datatable.txt",
    )
    parser.add_argument(
        "--emit-json",
        action="store_true",
        help="also write benchmarks/results/datatable.json "
        "(machine-readable, for benchmarks/compare.py)",
    )
    args = parser.parse_args(argv)

    from repro.roads import (
        QDTMRSyntheticGenerator,
        paper_scale_config,
        small_config,
    )

    emit_name = "datatable" if (args.emit or not args.smoke) else None
    with tempfile.TemporaryDirectory() as tmp_dir:
        if args.smoke:
            dataset = QDTMRSyntheticGenerator(
                small_config(n_segments=3000, n_towns=12)
            ).generate(seed=0)
            speedups, mmap_vs_parse = _run(
                dataset,
                [("smoke", 30_000)],
                tmp_dir,
                rounds=2,
                emit_name=emit_name,
            )
            print(
                "\nsmoke ok (parity on all kernels; best speedup "
                f"{max(speedups.values()):.1f}x)"
            )
        else:
            dataset = QDTMRSyntheticGenerator(
                paper_scale_config()
            ).generate(seed=2011)
            speedups, mmap_vs_parse = _run(
                dataset,
                [
                    ("paper scale", dataset.combined_instances().n_rows),
                    ("million-row", 1_000_000),
                ],
                tmp_dir,
                emit_name=emit_name,
            )
            hot = [
                s
                for stage, s in speedups.items()
                if not stage.startswith("to_rows")
            ]
            assert sum(s >= 5.0 for s in hot) >= 2, speedups
            assert mmap_vs_parse >= 100.0
    if args.emit_json:
        from benchmarks.conftest import emit_json

        metrics = {
            stage.replace(" ", "_") + "_speedup": {
                "value": speedup, "better": "higher",
            }
            for stage, speedup in speedups.items()
        }
        metrics["mmap_vs_parse_speedup"] = {
            "value": mmap_vs_parse, "better": "higher",
        }
        emit_json("datatable", metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
