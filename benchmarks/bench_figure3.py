"""Figure 3 — phase 2 Bayesian model efficiency curves.

The paper plots the Bayesian models' MCPV alongside Kappa across the
threshold range and notes: "The Kappa statistic shows a similar pattern
to our minimum class predictive value method with somewhat lower
efficiency values."

Benchmark unit: computing both series + their rank correlation from the
session-shared sweep.  Emitted: the MCPV and Kappa curves.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.reporting import render_series


def _series(bayes_sweep):
    mcpv = {r.threshold: r.assessment.mcpv for r in bayes_sweep}
    kappa = {r.threshold: r.assessment.kappa for r in bayes_sweep}
    # Correlation over the non-degenerate range (the paper flags the
    # top threshold's perfect scores as unreliable).
    shared = [
        k
        for k in sorted(mcpv)
        if k <= 32 and not (np.isnan(mcpv[k]) or np.isnan(kappa[k]))
    ]
    correlation = float(
        np.corrcoef(
            [mcpv[k] for k in shared], [kappa[k] for k in shared]
        )[0, 1]
    )
    return mcpv, kappa, correlation


def test_figure3(benchmark, bayes_sweep):
    mcpv, kappa, correlation = benchmark(_series, bayes_sweep)

    text = render_series(
        {"Bayes MCPV": mcpv, "Bayes Kappa": kappa},
        x_label="crash-prone threshold",
        title="Figure 3: phase 2 Bayesian model efficiency (MCPV and Kappa)",
    )
    text += f"\n\nMCPV-vs-Kappa correlation across thresholds: {correlation:.3f}"
    emit("figure3", text)

    # Paper: Kappa correlates with MCPV ("showed a degree of
    # correlation") and sits somewhat lower across the band where both
    # statistics are meaningful.
    assert correlation > 0.5
    for threshold in (2, 4, 8, 16):
        if not np.isnan(mcpv[threshold]):
            assert kappa[threshold] < mcpv[threshold]
