"""Serving-layer load benchmark (throughput + latency percentiles).

A load generator drives the in-process HTTP scoring service with
``POST /v1/score`` at several client concurrency levels, each worker
on its own keep-alive connection.  Per level it records throughput and
client-observed p50/p95/p99 latency, plus how well the engine's
micro-batcher coalesced the concurrent singles into shared DataTable
passes.

The result cache is disabled so the numbers measure the model path,
not dict lookups.  What is asserted is the serving *contract*, not the
hardware: every response must carry exactly the probability the scorer
computes offline, and concurrent load must produce model passes with
batch size > 1.
"""

import http.client
import json
import math
import threading
import time

from benchmarks.conftest import emit
from repro.core.deployment import CrashPronenessScorer
from repro.core.reporting import render_table
from repro.roads import QDTMRSyntheticGenerator, small_config
from repro.serving import ScoringService

CONCURRENCY_LEVELS = (1, 2, 4, 8, 16)
REQUESTS_PER_LEVEL = 400


def _percentile(ordered, q):
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


def _run_level(service, rows, concurrency, n_requests):
    """Drive the service with ``concurrency`` keep-alive workers."""
    latencies = []
    probabilities = {}
    errors = []
    lock = threading.Lock()
    per_worker = n_requests // concurrency

    def worker(worker_id):
        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=30
        )
        mine = []
        try:
            for i in range(per_worker):
                index = (worker_id * per_worker + i) % len(rows)
                payload = json.dumps({"row": rows[index]})
                start = time.perf_counter()
                connection.request(
                    "POST",
                    "/v1/score",
                    body=payload,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                body = json.loads(response.read())
                elapsed = time.perf_counter() - start
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}: {body}")
                mine.append((elapsed, index, body["probability"]))
        except Exception as exc:  # pragma: no cover - surfaced below
            with lock:
                errors.append(exc)
        finally:
            connection.close()
        with lock:
            for elapsed, index, probability in mine:
                latencies.append(elapsed)
                probabilities[index] = probability

    engine = service.engine("cp8")
    batches_before = len(engine.batch_sizes)
    threads = [
        threading.Thread(target=worker, args=(w,)) for w in range(concurrency)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    level_batches = engine.batch_sizes[batches_before:]
    ordered = sorted(latencies)
    return {
        "concurrency": concurrency,
        "requests": len(latencies),
        "wall": wall,
        "throughput": len(latencies) / wall,
        "p50": _percentile(ordered, 50),
        "p95": _percentile(ordered, 95),
        "p99": _percentile(ordered, 99),
        "max_batch": max(level_batches) if level_batches else 0,
        "mean_batch": (
            sum(level_batches) / len(level_batches) if level_batches else 0.0
        ),
        "probabilities": probabilities,
    }


def test_serving_load(benchmark, tmp_path_factory):
    dataset = QDTMRSyntheticGenerator(
        small_config(n_segments=6000, n_towns=18)
    ).generate(seed=2011)
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances, threshold=8, seed=2011
    )
    model_dir = tmp_path_factory.mktemp("serving-models")
    scorer.save(model_dir / "cp8.json")

    expected_inputs = list(scorer.input_schema())
    table = dataset.segment_table
    rows = table.select(expected_inputs).to_rows(limit=256)
    offline = [float(p) for p in scorer.score(table.head(256))]

    with ScoringService(
        model_dir, port=0, max_batch=32, max_wait_ms=2.0, cache_size=0
    ).start() as service:
        results = [
            _run_level(service, rows, level, REQUESTS_PER_LEVEL)
            for level in CONCURRENCY_LEVELS
            if level != 8
        ]
        # The benchmarked level rides through pytest-benchmark's timer.
        results.append(
            benchmark.pedantic(
                _run_level,
                args=(service, rows, 8, REQUESTS_PER_LEVEL),
                rounds=1,
                iterations=1,
            )
        )
        results.sort(key=lambda r: r["concurrency"])
        endpoint_metrics = service.metrics.summary()["POST /v1/score"]

    table_rows = [
        [
            r["concurrency"],
            r["requests"],
            f"{r['throughput']:.0f}",
            f"{1000 * r['p50']:.2f}",
            f"{1000 * r['p95']:.2f}",
            f"{1000 * r['p99']:.2f}",
            r["max_batch"],
            f"{r['mean_batch']:.2f}",
        ]
        for r in results
    ]
    text = render_table(
        ["clients", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms",
         "max batch", "mean batch"],
        table_rows,
        title="Serving load: POST /v1/score (micro-batch 32 / 2 ms, "
        "cache off)",
    )
    text += (
        f"\nserver-side POST /v1/score: {endpoint_metrics['count']} requests,"
        f" p50={1000 * endpoint_metrics['p50']:.2f}ms,"
        f" p99={1000 * endpoint_metrics['p99']:.2f}ms,"
        f" errors={endpoint_metrics['errors']}"
    )
    emit("serving", text)

    # Contract, not hardware: exact parity with offline scoring ...
    for r in results:
        for index, probability in r["probabilities"].items():
            assert probability == offline[index]
    # ... and observable micro-batching once clients overlap.
    assert max(r["max_batch"] for r in results if r["concurrency"] >= 8) > 1
