"""Supporting models — logistic regression, neural network, M5.

The paper: "Results from additional modeling using neural networks,
logistic regression and M5 algorithms show trends similar to the prior
models" and "Decision tree models showed better performance than the
other models."

Benchmark unit: a 10-fold logistic CV at CP-8.  Emitted: MCPV per
threshold for each supporting classifier plus the M5 R² series,
side-by-side with the phase-2 decision tree.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.reporting import render_series

SWEEP_THRESHOLDS = (2, 4, 8, 16, 32)


def test_supporting_models(benchmark, study, phase2):
    benchmark.pedantic(
        study.run_supporting_sweep,
        kwargs={"model": "logistic", "thresholds": (8,), "folds": 10},
        rounds=1,
        iterations=1,
    )

    logistic = study.run_supporting_sweep(
        "logistic", thresholds=SWEEP_THRESHOLDS, folds=10
    )
    neural = study.run_supporting_sweep(
        "neural", thresholds=SWEEP_THRESHOLDS, folds=5
    )
    m5 = study.run_m5_sweep(thresholds=SWEEP_THRESHOLDS)

    tree_mcpv = {
        k: v
        for k, v in phase2.mcpv_series().items()
        if k in SWEEP_THRESHOLDS
    }
    logistic_mcpv = {r.threshold: r.assessment.mcpv for r in logistic}
    neural_mcpv = {r.threshold: r.assessment.mcpv for r in neural}

    text = render_series(
        {
            "decision tree MCPV": tree_mcpv,
            "logistic MCPV": logistic_mcpv,
            "neural net MCPV": neural_mcpv,
            "M5 R^2": m5,
        },
        x_label="crash-prone threshold",
        title="Supporting models vs the phase 2 decision tree",
    )
    emit("supporting_models", text)

    # Thresholds where a model barely ever predicts the positive class
    # are in the paper's "unreliable" regime (a few duplicated rows of
    # the same extreme segment); exclude them from peak finding.
    def peak(results_or_series, sweep=None):
        if sweep is None:
            usable = {
                k: v
                for k, v in results_or_series.items()
                if not np.isnan(v)
            }
        else:
            usable = {}
            for row in sweep:
                cm = row.assessment.confusion
                degenerate = cm.predicted_positives < 0.02 * cm.total
                value = results_or_series[row.threshold]
                if not degenerate and not np.isnan(value):
                    usable[row.threshold] = value
        return max(usable, key=usable.get)

    # Similar trends: every supporting model peaks in the same low-mid
    # band as the trees (not at the extreme-imbalance top end).
    assert peak(logistic_mcpv, logistic) in (2, 4, 8, 16)
    assert peak(neural_mcpv, neural) in (2, 4, 8, 16)
    assert peak(m5) in (2, 4, 8, 16, 32)

    # Trees at least match the supporting models at their shared peak
    # band (paper: trees performed best).
    band = (4, 8, 16)
    tree_best = max(tree_mcpv[k] for k in band)
    assert tree_best >= max(logistic_mcpv[k] for k in band) - 0.03
