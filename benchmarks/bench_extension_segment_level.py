"""Extension — segment-level modelling (robustness of the threshold).

The paper models crash *instances*, so each segment's attribute row is
duplicated once per crash; it notes the resulting same-segment artefact
at CP-64.  This extension re-runs the phase-2 sweep with one row per
crash segment and checks that the headline finding — efficiency peaking
in the low-mid threshold band rather than at the boundary or the
extremes — survives the change of analysis unit.

Benchmark unit: the segment-level sweep.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.reporting import render_series


def test_extension_segment_level(benchmark, study, phase2):
    segment_phase = benchmark.pedantic(
        study.run_segment_level_sweep, rounds=1, iterations=1
    )

    text = render_series(
        {
            "instance-level MCPV (paper protocol)": phase2.mcpv_series(),
            "segment-level MCPV (extension)": segment_phase.mcpv_series(),
            "segment-level R^2": segment_phase.r_squared_series(),
        },
        x_label="crash-prone threshold",
        title="Extension: instance-level vs segment-level phase 2",
    )
    counts = {
        r.threshold: (r.n_non_prone, r.n_prone)
        for r in segment_phase.results
    }
    text += "\n\nsegment-level class counts: " + ", ".join(
        f"CP-{k}: {n}/{p}" for k, (n, p) in sorted(counts.items())
    )
    emit("extension_segment_level", text)

    mcpv = {
        k: v
        for k, v in segment_phase.mcpv_series().items()
        if not np.isnan(v)
    }
    # The finding survives: the usable peak sits in the low-mid band.
    band = {k: v for k, v in mcpv.items() if k <= 16}
    assert band, "no usable segment-level thresholds"
    peak = max(band, key=band.get)
    assert peak in (2, 4, 8, 16)
    # And the extreme thresholds do not dominate the band.
    top = [v for k, v in mcpv.items() if k >= 32]
    if top:
        assert max(band.values()) >= max(top) - 0.05
