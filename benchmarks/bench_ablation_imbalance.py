"""Ablation — imbalance handling and the failure of naive measures.

Two of the paper's methodological claims, quantified:

1. "Common model indicators such as r-squared and misclassification
   rates were often misleading" under extreme imbalance — shown by
   comparing misclassification/accuracy against MCPV/Kappa at CP-32.
2. Undersampling the majority class "was considered not necessary" —
   shown by fitting the same tree on an undersampled CP-32 set and
   checking that MCPV-based conclusions do not change materially.

Benchmark unit: the undersample + refit pipeline at CP-32.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import TARGET_COLUMN, assess_scores, build_threshold_dataset
from repro.core.reporting import render_table
from repro.evaluation import train_valid_split, undersample_majority
from repro.mining import DecisionTreeClassifier, TreeConfig

CONFIG = TreeConfig(min_leaf=60, min_split=150, max_leaves=160)


def _fit_and_assess(train, valid, threshold):
    model = DecisionTreeClassifier(CONFIG).fit(train, TARGET_COLUMN)
    actual = build_threshold_dataset(valid, threshold).target_vector()
    return assess_scores(actual, model.predict_proba(valid))


def _undersampled_run(paper_dataset, threshold, rng_seed):
    dataset = build_threshold_dataset(
        paper_dataset.crash_instances, threshold
    )
    rng = np.random.default_rng(rng_seed)
    split = train_valid_split(
        dataset.table, rng, 0.6, stratify_by=TARGET_COLUMN
    )
    y_train = build_threshold_dataset(
        split.train, threshold
    ).target_vector()
    balanced, _y = undersample_majority(split.train, y_train, rng)
    return _fit_and_assess(balanced, split.valid, threshold)


def test_ablation_imbalance(benchmark, paper_dataset):
    threshold = 32
    balanced = benchmark.pedantic(
        _undersampled_run,
        args=(paper_dataset, threshold, 5),
        rounds=1,
        iterations=1,
    )

    dataset = build_threshold_dataset(
        paper_dataset.crash_instances, threshold
    )
    rng = np.random.default_rng(5)
    split = train_valid_split(
        dataset.table, rng, 0.6, stratify_by=TARGET_COLUMN
    )
    raw = _fit_and_assess(split.train, split.valid, threshold)

    rows = [
        [
            name,
            a.accuracy,
            f"{100 * a.misclassification_rate:.2f}%",
            a.ppv,
            a.npv,
            a.mcpv,
            a.kappa,
        ]
        for name, a in (
            ("as-is (paper's choice)", raw),
            ("undersampled majority", balanced),
        )
    ]
    text = render_table(
        [
            "training data",
            "accuracy",
            "misclass",
            "PPV",
            "NPV",
            "MCPV",
            "Kappa",
        ],
        rows,
        title=f"Ablation: imbalance handling at CP-{threshold}",
    )
    majority_share = dataset.n_non_prone / dataset.total
    text += (
        f"\n\nmajority-class share: {majority_share:.3f} -> a constant "
        f"'non-prone' guesser scores accuracy {majority_share:.3f} with "
        "MCPV undefined"
    )
    emit("ablation_imbalance", text)

    # 1. Naive measures look excellent while MCPV tells the truth.
    assert raw.accuracy > 0.9
    assert raw.misclassification_rate < 0.1
    assert raw.mcpv < raw.accuracy - 0.05
    # 2. Undersampling shifts the operating point (recall up) but the
    #    MCPV story is not materially better — the paper's decision to
    #    skip it holds.
    assert balanced.sensitivity >= raw.sensitivity - 0.02
    assert not (balanced.mcpv > raw.mcpv + 0.10)
