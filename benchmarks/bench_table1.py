"""Table 1 — crash-prone threshold target values (phase 2 datasets).

Paper values (16,750 crash instances):

    CP-2   3,548 non-prone   13,202 prone
    CP-4   5,904             10,846
    CP-8   8,677              8,073
    CP-16 12,348              4,402
    CP-32 15,471              1,279
    CP-64 16,576                174

The benchmark times the construction of all six CP-k datasets from the
crash-instance table; the emitted table is the synthetic Table 1.
"""

from benchmarks.conftest import emit
from repro.core import PHASE2_THRESHOLDS, build_threshold_series, table1_rows
from repro.core.reporting import render_table

PAPER_ROWS = {
    2: (3548, 13202),
    4: (5904, 10846),
    8: (8677, 8073),
    16: (12348, 4402),
    32: (15471, 1279),
    64: (16576, 174),
}


def test_table1(benchmark, paper_dataset):
    crash_instances = paper_dataset.crash_instances

    datasets = benchmark(
        build_threshold_series, crash_instances, PHASE2_THRESHOLDS
    )

    rows = table1_rows(crash_instances)
    text = render_table(
        [
            "Target label",
            "threshold",
            "non-crash-prone",
            "crash-prone",
            "total",
            "paper non-prone",
            "paper prone",
        ],
        [
            [
                r["target_label"],
                f"> {r['threshold']}",
                r["non_crash_prone_instances"],
                r["crash_prone_instances"],
                r["total_instance_count"],
                PAPER_ROWS[r["threshold"]][0],
                PAPER_ROWS[r["threshold"]][1],
            ]
            for r in rows
        ],
        title="Table 1: crash-prone threshold target values (synthetic vs paper)",
    )
    emit("table1", text)

    # Shape assertions: monotone class drift and extreme top imbalance.
    non_prone = [d.n_non_prone for d in datasets]
    assert non_prone == sorted(non_prone)
    assert datasets[-1].imbalance_ratio > 20
    assert all(d.total == crash_instances.n_rows for d in datasets)
