"""Table 3 — phase 1 regression and decision trees (crash + no-crash).

Paper values (R², NPV, PPV, misclassification) peak at the CP-4
threshold:

    >0   R²=0.734  NPV=0.92  PPV=0.87  misc=10.46%
    >2   R²=0.752  NPV=0.94  PPV=0.88  misc= 9.75%
    >4   R²=0.762  NPV=0.94  PPV=0.90  misc= 8.35%   <- peak
    >8   R²=0.734  NPV=0.95  PPV=0.85  misc= 7.60%
    >16  R²=0.703  NPV=0.96  PPV=0.76  misc= 6.90%
    >32  R²=0.696  NPV=0.99  PPV=0.56  misc= 2.30%
    >64  R²=0.681  NPV=1.00  PPV=1.00  misc= 0%      (degenerate)

The benchmark times one representative per-threshold unit (building
the CP-4 dataset and fitting both trees); the emitted table is the full
synthetic Table 3 from the session-shared sweep.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import build_threshold_dataset
from repro.core.reporting import render_table


def _fit_unit(study, table):
    dataset = build_threshold_dataset(table, 4)
    return study._fit_trees_at(dataset, split_seed=99)


def test_table3(benchmark, study, paper_dataset, phase1):
    combined = paper_dataset.combined_instances()
    benchmark.pedantic(
        _fit_unit, args=(study, combined), rounds=3, iterations=1
    )

    rows = [
        [
            f"> {r.threshold}",
            r.r_squared,
            r.regression_leaves,
            r.npv,
            r.ppv,
            f"{100 * r.misclassification_rate:.2f}%",
            r.decision_leaves,
        ]
        for r in phase1.results
    ]
    text = render_table(
        [
            "Target",
            "R-squared",
            "reg leaves",
            "NPV",
            "PPV",
            "misclass",
            "tree leaves",
        ],
        rows,
        title="Table 3: phase 1 trees on the crash + no-crash dataset",
    )
    emit("table3", text)

    # Shape assertions (paper's qualitative structure):
    r2 = phase1.r_squared_series()
    mcpv = phase1.mcpv_series()
    usable = {k: v for k, v in mcpv.items() if not np.isnan(v)}
    # 1. The crash/no-crash boundary (>0) is NOT the best model.
    assert max(v for k, v in usable.items() if 2 <= k <= 8) > usable[0]
    # 2. R² peaks in the low-mid band, not at the boundary.
    assert max(r2[k] for k in (2, 4, 8)) >= r2[0]
    # 3. Misclassification (misleadingly) improves monotonically-ish
    #    toward the extreme-imbalance top end.
    misc = phase1.series("misclassification_rate")
    assert misc[max(misc)] < misc[0]
    # 4. NPV climbs toward 1 with the threshold.
    npv = phase1.series("npv")
    assert npv[max(npv)] > npv[0]
