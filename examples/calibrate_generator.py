"""Reproduce the generator calibration against the paper's Table 1.

Usage::

    python examples/calibrate_generator.py [--probe N] [--iterations N]

The synthetic crash process ships with calibrated defaults; this script
is the tool that produced them.  It re-runs the multi-start Nelder-Mead
fit of the zero-altered process parameters to the paper's class
marginals and prints the achieved vs target statistics, so anyone can
audit (or re-derive) the numbers baked into
:class:`repro.roads.CrashProcessParams`.
"""

from __future__ import annotations

import argparse

from repro.roads import (
    PAPER_TABLE1_TARGETS,
    CrashProcessParams,
    calibrate_crash_process,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probe", type=int, default=20000)
    parser.add_argument("--iterations", type=int, default=400)
    args = parser.parse_args()

    print("Calibrating the zero-altered crash process to Table 1 ...")
    print("(targets: instance-weighted count CDF, zero share, mean count)\n")
    report = calibrate_crash_process(
        base_params=CrashProcessParams(),
        n_probe=args.probe,
        max_iterations=args.iterations,
        free_parameters=(
            "hurdle_intercept",
            "count_log_mean",
            "count_dispersion",
        ),
    )

    targets = PAPER_TABLE1_TARGETS
    print(f"objective: {report.objective:.6f} "
          f"({report.n_evaluations} evaluations, "
          f"converged={report.converged})\n")
    print(f"{'statistic':<18}{'target':>10}{'achieved':>10}")
    print("-" * 38)
    print(f"{'zero share':<18}{targets.zero_share:>10.4f}"
          f"{report.achieved_zero_share:>10.4f}")
    print(f"{'mean count':<18}{targets.mean_count:>10.4f}"
          f"{report.achieved_mean_count:>10.4f}")
    for threshold in sorted(targets.weighted_cdf):
        print(
            f"{'P_w(<=' + str(threshold) + ')':<18}"
            f"{targets.weighted_cdf[threshold]:>10.4f}"
            f"{report.achieved_cdf[threshold]:>10.4f}"
        )

    print("\ncalibrated parameters:")
    for field in (
        "hurdle_intercept",
        "hurdle_slope",
        "count_log_mean",
        "count_z_gain",
        "count_offset",
        "count_dispersion",
        "background_rate",
        "background_dispersion",
        "z_noise_sd",
    ):
        print(f"  {field:<24}= {getattr(report.params, field)}")


if __name__ == "__main__":
    main()
