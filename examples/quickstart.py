"""Quickstart: generate a synthetic road-crash dataset and run the
full crash-proneness study.

Usage::

    python examples/quickstart.py [--seed N] [--segments N]

This is the 2-minute tour: a small network, all three modelling phases
through the CRISP-DM pipeline, and the selected crash-proneness
threshold — the paper's headline result, on your machine.
"""

from __future__ import annotations

import argparse

from repro import CrashPronenessStudy, QDTMRSyntheticGenerator, small_config
from repro.core.reporting import render_series, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--segments", type=int, default=6000)
    args = parser.parse_args()

    print("Generating synthetic QDTMR-style dataset ...")
    config = small_config(n_segments=args.segments, n_towns=18)
    dataset = QDTMRSyntheticGenerator(config).generate(seed=args.seed)
    print(
        f"  {dataset.segment_table.n_rows} road segments, "
        f"{dataset.n_crash_instances} crash instances, "
        f"{dataset.n_no_crash_instances} zero-altered no-crash instances"
    )

    print("\nRunning the three-phase study (CRISP-DM pipeline) ...")
    study = CrashPronenessStudy(dataset, seed=args.seed, repeats=2)
    report = study.run_full_study(n_clusters=16)

    print("\n--- pipeline log " + "-" * 40)
    print(report.pipeline_log)

    print()
    print(
        render_series(
            {
                "phase 1 MCPV": report.phase1.mcpv_series(),
                "phase 2 MCPV": report.phase2.mcpv_series(),
                "phase 2 R^2": report.phase2.r_squared_series(),
            },
            x_label="crash threshold",
            title="Model efficiency across crash-proneness thresholds",
        )
    )

    print("\n--- threshold selection " + "-" * 33)
    print(report.selection.describe())
    annual_rate = report.selection.selected_threshold / 4
    print(
        f"=> a road segment is crash prone above "
        f"{report.selection.selected_threshold} crashes per 4 years "
        f"(~{annual_rate:g}/year)"
    )

    print("\n--- phase 3 clustering " + "-" * 34)
    clustering = report.clustering
    print(
        render_table(
            ["band", "clusters"],
            list(clustering.band_counts().items()),
            title="Cluster crash-count bands",
        )
    )
    print(
        f"very-low-crash clusters (IQR within 0-4): "
        f"{clustering.n_very_low_crash_clusters}"
    )
    print(
        f"ANOVA on cluster means: F={clustering.anova.f_statistic:.1f}, "
        f"p={clustering.anova.p_value:.3g}"
    )
    verdict = (
        "supported"
        if clustering.supports_non_crash_prone_roads()
        else "not supported"
    )
    print(f"non-crash-prone road population: {verdict}")


if __name__ == "__main__":
    main()
