"""Attribute insights: the paper's future-work analysis, executed.

Usage::

    python examples/attribute_insights.py [--seed N]

"In addition to rule sets, the full range of attribute values
partitioned by cluster will be analyzed to develop attribute
correlations with the cluster groups, and distinguish correlations,
leading to new knowledge about causation of the particular road segment
types."  This example runs that analysis on the synthetic study:

1. attribute-vs-crash-count correlations (which condition measures
   matter, echoing the paper's F60 / texture-depth finding);
2. the decision tree's split-statistic feature importances;
3. per-cluster attribute signatures for the lowest- and highest-crash
   clusters of the phase-3 model.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import QDTMRSyntheticGenerator, small_config
from repro.core import (
    TARGET_COLUMN,
    attribute_crash_correlations,
    build_threshold_dataset,
    cluster_attribute_signatures,
    run_phase3_clustering,
    tree_feature_importance,
)
from repro.core.reporting import render_table
from repro.evaluation import train_valid_split
from repro.mining import DecisionTreeClassifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    print("Generating dataset ...")
    dataset = QDTMRSyntheticGenerator(
        small_config(n_segments=8000, n_towns=20)
    ).generate(seed=args.seed)
    crash = dataset.crash_instances

    # 1. attribute correlations with the crash count -------------------
    correlations = attribute_crash_correlations(crash)
    print("\n" + render_table(
        ["attribute", "kind", "pearson", "spearman", "eta^2", "strength"],
        [
            [
                c.attribute,
                c.kind,
                c.pearson,
                c.spearman,
                c.eta_squared,
                c.strength,
            ]
            for c in correlations[:10]
        ],
        title="Attribute correlations with segment crash count (top 10)",
    ))

    # 2. tree feature importance ------------------------------------------
    cp8 = build_threshold_dataset(crash, 8)
    rng = np.random.default_rng(args.seed)
    split = train_valid_split(cp8.table, rng, 0.6, stratify_by=TARGET_COLUMN)
    model = DecisionTreeClassifier().fit(split.train, TARGET_COLUMN)
    importance = tree_feature_importance(model.root)
    print("\n" + render_table(
        ["feature", "importance"],
        list(importance.items())[:10],
        title="CP-8 decision tree split importances (top 10)",
    ))

    # 3. cluster signatures ------------------------------------------------------
    print("\nClustering for signatures ...")
    analysis = run_phase3_clustering(crash, n_clusters=16, seed=args.seed)
    lowest = analysis.profiles[0]
    highest = analysis.profiles[-1]
    signatures = cluster_attribute_signatures(
        crash, analysis.assignment, top_per_cluster=5
    )
    for profile, label in (
        (lowest, "lowest-crash cluster"),
        (highest, "highest-crash cluster"),
    ):
        print(
            f"\n{label} (cluster {profile.cluster_id}: "
            f"median count {profile.median:g}, n={profile.n_instances}):"
        )
        for signature in signatures[profile.cluster_id]:
            print("  " + signature.describe())

    print(
        "\nReading: the low-crash clusters are marked by high skid"
        "\nresistance / texture and low distress; the high-crash cluster"
        "\nby the opposite — the attribute-level 'new knowledge about"
        "\ncausation' the paper's future work aims at."
    )


if __name__ == "__main__":
    main()
