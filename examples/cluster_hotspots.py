"""Cluster hotspot analysis: phase 3 mapped back onto the network.

Usage::

    python examples/cluster_hotspots.py [--seed N] [--clusters K]

Runs the paper's phase-3 clustering (simple k-means on road attributes
of crash instances), profiles each cluster's crash-count range
(Figure 4), then walks back through the road network to name the
*routes* that carry the high-band clusters — the "accident hotspot"
view road asset managers act on (cf. Anderson [7] in the paper).
"""

from __future__ import annotations

import argparse
from collections import Counter, defaultdict

import numpy as np

from repro import QDTMRSyntheticGenerator, small_config
from repro.core import run_phase3_clustering
from repro.core.reporting import render_box_ranges, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--clusters", type=int, default=24)
    args = parser.parse_args()

    print("Generating dataset ...")
    dataset = QDTMRSyntheticGenerator(
        small_config(n_segments=8000, n_towns=22)
    ).generate(seed=args.seed)
    crash = dataset.crash_instances

    print(f"Clustering {crash.n_rows} crash instances "
          f"into {args.clusters} clusters ...")
    analysis = run_phase3_clustering(
        crash, n_clusters=args.clusters, seed=args.seed
    )

    boxes = [
        (
            f"cluster {p.cluster_id:02d}",
            p.minimum,
            p.q1,
            p.median,
            p.q3,
            p.maximum,
        )
        for p in analysis.profiles
    ]
    print("\n" + render_box_ranges(
        boxes,
        title="Figure 4 analogue: crash-count ranges by cluster",
        axis_max=min(80.0, max(p.maximum for p in analysis.profiles)),
    ))
    print(
        f"\nANOVA on cluster means: F={analysis.anova.f_statistic:.1f}, "
        f"p={analysis.anova.p_value:.3g} "
        f"(eta^2={analysis.anova.eta_squared:.2f})"
    )
    print(f"band mix: {analysis.band_counts()}")

    # ---- map high-band clusters back onto routes ----------------------
    high_clusters = {
        p.cluster_id for p in analysis.profiles if p.band == "high"
    }
    if not high_clusters:
        print("\nNo high-band clusters in this run; try another seed.")
        return

    segment_ids = crash.numeric("segment_id").astype(int)
    in_high = np.isin(analysis.assignment, list(high_clusters))
    hotspot_segments = set(segment_ids[in_high])

    skeleton_by_id = {
        s.segment_id: s for s in dataset.network.skeletons
    }
    route_hits: Counter = Counter()
    route_kms: defaultdict = defaultdict(set)
    for segment_id in hotspot_segments:
        skeleton = skeleton_by_id.get(segment_id)
        if skeleton is None or skeleton.route_id < 0:
            continue
        route_hits[skeleton.route_id] += 1
        route_kms[skeleton.route_id].add(skeleton.chainage_km)

    rows = []
    for route_id, hits in route_hits.most_common(10):
        route = dataset.network.routes[route_id]
        start, end = dataset.network.route_endpoints(route)
        rows.append(
            [
                f"{start.name} - {end.name}",
                route.road_class,
                route.terrain,
                f"{route.length_km:.0f}",
                hits,
                len(route_kms[route_id]),
            ]
        )
    print("\n" + render_table(
        [
            "route",
            "class",
            "terrain",
            "length km",
            "hotspot segments",
            "distinct km marks",
        ],
        rows,
        title="Top crash-prone routes (segments in high-band clusters)",
    ))

    # ---- the Anderson-style spatial baseline, for contrast -----------
    from repro.roads import crash_kde, spatial_kmeans_hotspots

    surface = crash_kde(dataset, bandwidth_km=40, grid_size=50)
    kde_cells = surface.hotspot_cells(quantile=0.97)
    spatial = spatial_kmeans_hotspots(dataset, n_clusters=10, seed=args.seed)
    print("\n" + render_table(
        ["hotspot", "centre (x, y) km", "crashes", "radius km", "crashes/km^2"],
        [
            [
                f"spatial {c.cluster_id}",
                f"({c.centre_x:.0f}, {c.centre_y:.0f})",
                c.n_crashes,
                f"{c.radius_km:.0f}",
                f"{c.intensity:.2f}",
            ]
            for c in spatial[:5]
        ],
        title="Anderson-style spatial k-means hotspots (top 5 by intensity)",
    ))
    print(
        f"KDE surface: {len(kde_cells)} grid cells above the 97th "
        f"density percentile (bandwidth {surface.bandwidth_km:g} km)"
    )

    print(
        "\nAsset-management readout: the spatial baseline says *where*"
        "\ncrashes pile up (exposure); the attribute clusters say *which"
        "\nroad state* produces them — the paper's crash-prone population"
        "\nto prioritise for treatment."
    )


if __name__ == "__main__":
    main()
