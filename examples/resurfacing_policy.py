"""Decision-support what-if: scoring an ageing network.

Usage::

    python examples/resurfacing_policy.py [--seed N]

The paper's future-work section aims to "embed [the models] with a
strategic and operational decision support system".  This example
sketches that deployment:

1. Train the CP-8 crash-proneness tree on the current network.
2. Simulate the *same* network several maintenance-years later by
   shifting the latent deficiency distribution (seal age up, skid
   resistance down, ...).
3. Score every segment of the aged network with the trained model and
   report how many kilometres cross the crash-proneness line — the
   resurfacing backlog a road authority would budget against.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import QDTMRSyntheticGenerator, small_config
from repro.core import TARGET_COLUMN, build_threshold_dataset
from repro.core.reporting import render_table
from repro.evaluation import train_valid_split
from repro.mining import DecisionTreeClassifier
from repro.roads import SegmentAttributeSampler

THRESHOLD = 8  # the paper's selected crash-proneness band (4-8)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    print("Generating the current network ...")
    generator = QDTMRSyntheticGenerator(
        small_config(n_segments=7000, n_towns=20)
    )
    dataset = generator.generate(seed=args.seed)

    print(f"Training the CP-{THRESHOLD} decision tree ...")
    cp = build_threshold_dataset(dataset.crash_instances, THRESHOLD)
    rng = np.random.default_rng(args.seed)
    split = train_valid_split(cp.table, rng, 0.6, stratify_by=TARGET_COLUMN)
    model = DecisionTreeClassifier().fit(split.train, TARGET_COLUMN)
    valid_actual = build_threshold_dataset(
        split.valid, THRESHOLD
    ).target_vector()
    valid_scores = model.predict_proba(split.valid)
    from repro.core import assess_scores

    assessment = assess_scores(valid_actual, valid_scores)
    print(
        f"  validation MCPV={assessment.mcpv:.3f} "
        f"Kappa={assessment.kappa:.3f} ROC={assessment.roc_area:.3f}"
    )

    # ---- age the network ------------------------------------------------
    print("\nScoring maintenance scenarios ...")
    skeletons = [
        s
        for s in dataset.network.skeletons
        if s.segment_id in set(dataset.segment_table.numeric("segment_id").astype(int))
    ]
    scenarios = {
        "today (baseline)": 0.00,
        "deferred maintenance +5y": 0.08,
        "deferred maintenance +10y": 0.16,
        "neglect scenario": 0.28,
    }
    rows = []
    for name, shift in scenarios.items():
        sampler = SegmentAttributeSampler(deficiency_shift=shift)
        aged = sampler.sample(skeletons, np.random.default_rng(args.seed))
        scores = model.predict_proba(aged.table)
        prone_km = int((scores >= 0.5).sum())
        share = prone_km / aged.table.n_rows
        mean_f60 = float(
            np.nanmean(aged.table.numeric("skid_resistance_f60"))
        )
        rows.append(
            [
                name,
                aged.table.n_rows,
                f"{mean_f60:.3f}",
                prone_km,
                f"{100 * share:.1f}%",
            ]
        )
    print("\n" + render_table(
        [
            "scenario",
            "network km",
            "mean F60",
            "predicted crash-prone km",
            "share",
        ],
        rows,
        title=f"Crash-prone kilometres under ageing (CP-{THRESHOLD} model)",
    ))
    print(
        "\nEach deferred-maintenance step lowers skid resistance and"
        "\nraises distress, pushing more kilometres over the model's"
        "\ncrash-proneness line — the resurfacing backlog to budget for."
    )


if __name__ == "__main__":
    main()
