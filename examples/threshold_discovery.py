"""Threshold discovery: the paper's Tables 3 & 4 workflow in detail.

Usage::

    python examples/threshold_discovery.py [--paper-scale] [--seed N]

Walks the full threshold sweep the way an analyst would: build each
CP-k dataset, inspect its class balance (Table 1), fit the chi-square
decision tree and the F-test regression tree, read all Table 2
measures, and watch accuracy/misclassification diverge from MCPV/Kappa
as the imbalance grows.  Finishes with the rule set of the selected
model — the paper's reason for preferring trees.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CrashPronenessStudy,
    QDTMRSyntheticGenerator,
    paper_scale_config,
    small_config,
    table1_rows,
)
from repro.core import TARGET_COLUMN, build_threshold_dataset
from repro.core.reporting import render_table
from repro.evaluation import train_valid_split
from repro.mining import DecisionTreeClassifier, extract_rules, format_rules
from repro.mining.features import FeatureSet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    config = (
        paper_scale_config()
        if args.paper_scale
        else small_config(n_segments=6000, n_towns=18)
    )
    print("Generating dataset ...")
    dataset = QDTMRSyntheticGenerator(config).generate(seed=args.seed)

    print("\n" + render_table(
        ["label", "non-crash-prone", "crash-prone", "total"],
        [
            [
                r["target_label"],
                r["non_crash_prone_instances"],
                r["crash_prone_instances"],
                r["total_instance_count"],
            ]
            for r in table1_rows(dataset.crash_instances)
        ],
        title="Table 1 analogue: CP-k class balances (crash-only data)",
    ))

    study = CrashPronenessStudy(dataset, seed=args.seed, repeats=2)
    print("\nPhase 1 sweep (crash + zero-altered no-crash) ...")
    phase1 = study.run_phase1()
    print("Phase 2 sweep (crash only) ...")
    phase2 = study.run_phase2()

    for phase, title in ((phase1, "Table 3 analogue"), (phase2, "Table 4 analogue")):
        print("\n" + render_table(
            [
                "Target",
                "R2",
                "NPV",
                "PPV",
                "MCPV",
                "Kappa",
                "accuracy",
                "misclass",
                "leaves",
            ],
            [
                [
                    f"> {r.threshold}",
                    r.r_squared,
                    r.npv,
                    r.ppv,
                    r.mcpv,
                    r.kappa,
                    r.assessment.accuracy,
                    f"{100 * r.misclassification_rate:.1f}%",
                    r.decision_leaves,
                ]
                for r in phase.results
            ],
            title=f"{title} (phase {phase.phase})",
        ))

    selection = study.select_threshold(phase1, phase2)
    print("\n" + selection.describe())

    print(
        "\nNote how accuracy keeps 'improving' toward the top thresholds"
        "\nwhile MCPV and Kappa collapse — the paper's warning about"
        "\nassessment under extreme class imbalance."
    )

    # Refit the selected model and show its rules.
    k = selection.selected_threshold
    cp = build_threshold_dataset(dataset.crash_instances, k)
    rng = np.random.default_rng(args.seed)
    split = train_valid_split(cp.table, rng, 0.6, stratify_by=TARGET_COLUMN)
    model = DecisionTreeClassifier().fit(split.train, TARGET_COLUMN)
    features = FeatureSet(split.train, TARGET_COLUMN)
    rules = extract_rules(model.root, features)
    print(f"\nTop rules of the selected CP-{k} decision tree:")
    print(format_rules(rules, limit=8))


if __name__ == "__main__":
    main()
