"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column violates its declared schema."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of the wrong measurement level."""


class MissingColumnError(SchemaError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        msg = f"column {name!r} not found"
        if available:
            msg += f"; available columns: {', '.join(available)}"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return self.args[0]


class EmptyTableError(ReproError):
    """An operation that requires rows was applied to an empty table."""


class NotFittedError(ReproError):
    """``predict``/``transform`` was called before ``fit``."""

    def __init__(self, model_name: str = "model"):
        super().__init__(
            f"{model_name} is not fitted yet; call fit() before predicting"
        )


class FitError(ReproError):
    """Model fitting failed (degenerate data, no valid split, etc.)."""


class EvaluationError(ReproError):
    """A metric could not be computed from the given predictions."""


class CalibrationError(ReproError):
    """The synthetic data generator could not be calibrated to its targets."""


class ServingError(ReproError):
    """A model-serving request or registry operation could not be satisfied."""


class TreeCompileError(ReproError):
    """A fitted tree (or persisted plan) could not be lowered to the
    compiled scoring fast path; callers fall back to interpreted routing."""


class ConvergenceWarning(UserWarning):
    """An iterative fit stopped at its iteration cap before converging."""
