"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column violates its declared schema."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of the wrong measurement level."""


class MissingColumnError(SchemaError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        msg = f"column {name!r} not found"
        if available:
            msg += f"; available columns: {', '.join(available)}"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return self.args[0]


class EmptyTableError(ReproError):
    """An operation that requires rows was applied to an empty table."""


class ArtefactError(ReproError):
    """A binary table artefact could not be read (bad magic, malformed
    header, out-of-bounds block offsets) — the file is not served
    partially; loading fails atomically."""


class ArtefactVersionError(ArtefactError):
    """The artefact was written by an incompatible format version."""


class ArtefactIntegrityError(ArtefactError):
    """The artefact is truncated or its checksums do not match."""


class ConfigurationError(ReproError, ValueError):
    """A parameter carries an invalid value (bad k, ratio, backend, ...).

    Also a :class:`ValueError` so call sites that predate the hierarchy
    (and external code following numpy convention) keep working.
    """


class RowIndexError(ReproError, IndexError):
    """A row index or slice is out of range for the table."""


class StageNotFoundError(ReproError, KeyError):
    """A timing record lookup named a stage that was never timed."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"no stage named {name!r} was timed")

    def __str__(self) -> str:  # KeyError would repr() the args tuple
        return self.args[0]


class KernelBuildError(ReproError, RuntimeError):
    """The native scoring kernel could not be compiled or loaded."""


class AnalysisError(ReproError):
    """The static-analysis engine was misconfigured (bad rule id,
    unreadable baseline, missing path) — distinct from findings, which
    are results, not errors."""


class LockOrderViolation(AnalysisError):
    """The runtime lock-order sanitizer observed an acquisition that
    closes a cycle in the global lock-order graph — the dynamic
    counterpart of lint rule REP101."""


class ObservabilityError(ReproError):
    """A tracing/metrics artefact could not be read or rendered (bad
    span payload, malformed trace file, invalid Prometheus exposition)
    — never raised on the recording hot path, which must not fail
    requests."""


class ProfilerStateError(ObservabilityError, RuntimeError):
    """The sampling profiler was driven through an invalid lifecycle
    transition (e.g. started twice).

    Also a :class:`RuntimeError` so lifecycle-misuse call sites that
    predate the hierarchy keep catching it.
    """


class NotFittedError(ReproError):
    """``predict``/``transform`` was called before ``fit``."""

    def __init__(self, model_name: str = "model"):
        super().__init__(
            f"{model_name} is not fitted yet; call fit() before predicting"
        )


class FitError(ReproError):
    """Model fitting failed (degenerate data, no valid split, etc.)."""


class EvaluationError(ReproError):
    """A metric could not be computed from the given predictions."""


class CalibrationError(ReproError):
    """The synthetic data generator could not be calibrated to its targets."""


class ServingError(ReproError):
    """A model-serving request or registry operation could not be satisfied."""


class RoutingError(ReproError):
    """A route-risk query could not be answered (unknown town,
    disconnected pair, malformed path)."""


class TreeCompileError(ReproError):
    """A fitted tree (or persisted plan) could not be lowered to the
    compiled scoring fast path; callers fall back to interpreted routing."""


class ConvergenceWarning(UserWarning):
    """An iterative fit stopped at its iteration cap before converging."""
