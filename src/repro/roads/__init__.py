"""Synthetic QDTMR road & crash data substrate.

The paper's data is proprietary; this subpackage generates a synthetic
analogue with the same attribute families, the same zero-altered crash
process structure, and class marginals calibrated to the paper's
Table 1.  See DESIGN.md §2 for the substitution argument.
"""

from repro.roads.attributes import (
    ROAD_ATTRIBUTES,
    ROAD_CLASSES,
    AttributeGroup,
    RoadAttribute,
    attribute_names,
    modelling_schema,
    segment_schema,
)
from repro.roads.calibration import (
    PAPER_TABLE1_TARGETS,
    CalibrationReport,
    CalibrationTargets,
    calibrate_crash_process,
    weighted_count_cdf,
)
from repro.roads.crashes import (
    STUDY_YEARS,
    CrashOutcome,
    CrashProcess,
    CrashProcessParams,
)
from repro.roads.generator import (
    QDTMRSyntheticGenerator,
    RoadCrashDataset,
    SyntheticStudyConfig,
    paper_scale_config,
    small_config,
)
from repro.roads.hotspots import (
    KdeSurface,
    SpatialCluster,
    crash_coordinates,
    crash_kde,
    spatial_kmeans_hotspots,
)
from repro.roads.network import RoadNetwork, Route, SegmentSkeleton, Town
from repro.roads.segments import GeneratedSegments, SegmentAttributeSampler
from repro.roads.zero_altered import build_zero_altered_set

__all__ = [
    "AttributeGroup",
    "RoadAttribute",
    "ROAD_ATTRIBUTES",
    "ROAD_CLASSES",
    "attribute_names",
    "modelling_schema",
    "segment_schema",
    "RoadNetwork",
    "Route",
    "SegmentSkeleton",
    "Town",
    "GeneratedSegments",
    "SegmentAttributeSampler",
    "CrashProcess",
    "CrashProcessParams",
    "CrashOutcome",
    "STUDY_YEARS",
    "build_zero_altered_set",
    "QDTMRSyntheticGenerator",
    "RoadCrashDataset",
    "SyntheticStudyConfig",
    "paper_scale_config",
    "small_config",
    "calibrate_crash_process",
    "CalibrationTargets",
    "CalibrationReport",
    "PAPER_TABLE1_TARGETS",
    "weighted_count_cdf",
    "KdeSurface",
    "SpatialCluster",
    "crash_kde",
    "crash_coordinates",
    "spatial_kmeans_hotspots",
]
