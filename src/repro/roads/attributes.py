"""Road attribute vocabulary for the synthetic QDTMR-style dataset.

The paper groups the available road attributes into: structural
strength, functional design, surface properties, surface distress,
surface wear, traffic, roadway features / geometry, and crash
parameters, and selects its model inputs from *functional design,
surface properties, surface distress, surface wear and roadway
features* (Section 2).  This module declares the same attribute
families with realistic units and ranges, so the generated tables carry
a domain-faithful schema.

The two attributes the paper singles out as strongly related to crash
roads — skid resistance (F60) and texture depth — are both present, and
F60 is deliberately *sparse* (it limited the paper's usable crash set
to 16,750 of 42,388 crashes).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.datatable.schema import ColumnSpec, MeasurementLevel, Role, TableSchema

__all__ = [
    "AttributeGroup",
    "RoadAttribute",
    "ROAD_ATTRIBUTES",
    "ROAD_CLASSES",
    "SEAL_TYPES",
    "TERRAIN_TYPES",
    "REGIONS",
    "attribute_names",
    "modelling_schema",
    "segment_schema",
]


class AttributeGroup(Enum):
    """The paper's attribute families (Section 2)."""

    FUNCTIONAL_DESIGN = "functional design"
    SURFACE_PROPERTIES = "surface properties"
    SURFACE_DISTRESS = "surface distress"
    SURFACE_WEAR = "surface wear"
    ROADWAY_FEATURES = "roadway features"
    TRAFFIC = "traffic"
    CRASH = "crash parameters"
    IDENTIFIER = "identifier"


@dataclass(frozen=True)
class RoadAttribute:
    """One attribute of a 1 km road segment.

    ``low``/``high`` document the plausible physical range; the
    generator may exceed them slightly in the tails but models should
    treat them as the nominal domain.
    """

    name: str
    group: AttributeGroup
    level: MeasurementLevel
    description: str
    units: str = ""
    low: float | None = None
    high: float | None = None
    missing_rate: float = 0.0

    def spec(self, role: Role = Role.INPUT) -> ColumnSpec:
        return ColumnSpec(
            self.name, self.level, role, self.description, self.units
        )


ROAD_CLASSES = ("motorway", "highway", "arterial", "rural", "urban")
SEAL_TYPES = ("spray_seal", "asphalt", "concrete")
TERRAIN_TYPES = ("flat", "rolling", "mountainous")
REGIONS = ("south_east", "coastal", "inland", "northern")

_INTERVAL = MeasurementLevel.INTERVAL
_NOMINAL = MeasurementLevel.NOMINAL

ROAD_ATTRIBUTES: tuple[RoadAttribute, ...] = (
    # functional design ------------------------------------------------
    RoadAttribute(
        "road_class", AttributeGroup.FUNCTIONAL_DESIGN, _NOMINAL,
        "Functional classification of the route", "",
    ),
    RoadAttribute(
        "speed_limit", AttributeGroup.FUNCTIONAL_DESIGN, _INTERVAL,
        "Posted speed limit", "km/h", 50, 110,
    ),
    RoadAttribute(
        "lane_count", AttributeGroup.FUNCTIONAL_DESIGN, _INTERVAL,
        "Number of through lanes (both directions)", "lanes", 1, 6,
    ),
    RoadAttribute(
        "seal_width", AttributeGroup.FUNCTIONAL_DESIGN, _INTERVAL,
        "Sealed carriageway width", "m", 5.5, 24.0,
    ),
    # surface properties -------------------------------------------------
    RoadAttribute(
        "skid_resistance_f60", AttributeGroup.SURFACE_PROPERTIES, _INTERVAL,
        "Sideways-force friction at 60 km/h (SCRIM F60); sparse survey "
        "coverage, the limiting attribute of the study", "F60",
        0.15, 0.85, missing_rate=0.08,
    ),
    RoadAttribute(
        "texture_depth", AttributeGroup.SURFACE_PROPERTIES, _INTERVAL,
        "Sand-patch macrotexture depth", "mm", 0.2, 2.8,
        missing_rate=0.05,
    ),
    RoadAttribute(
        "seal_type", AttributeGroup.SURFACE_PROPERTIES, _NOMINAL,
        "Surfacing material", "",
    ),
    # surface distress -----------------------------------------------------
    RoadAttribute(
        "roughness_iri", AttributeGroup.SURFACE_DISTRESS, _INTERVAL,
        "International roughness index", "m/km", 0.8, 8.0,
    ),
    RoadAttribute(
        "rut_depth", AttributeGroup.SURFACE_DISTRESS, _INTERVAL,
        "Mean wheel-path rut depth", "mm", 0.0, 30.0,
    ),
    RoadAttribute(
        "cracking_pct", AttributeGroup.SURFACE_DISTRESS, _INTERVAL,
        "Cracked area share of the segment", "%", 0.0, 45.0,
        missing_rate=0.03,
    ),
    # surface wear -----------------------------------------------------------
    RoadAttribute(
        "seal_age", AttributeGroup.SURFACE_WEAR, _INTERVAL,
        "Years since last reseal", "years", 0.0, 28.0,
    ),
    RoadAttribute(
        "aggregate_loss_pct", AttributeGroup.SURFACE_WEAR, _INTERVAL,
        "Stripped / polished aggregate share", "%", 0.0, 35.0,
        missing_rate=0.04,
    ),
    # roadway features / geometry ----------------------------------------------
    RoadAttribute(
        "curvature", AttributeGroup.ROADWAY_FEATURES, _INTERVAL,
        "Aggregate horizontal curvature of the segment", "deg/km",
        0.0, 150.0,
    ),
    RoadAttribute(
        "gradient_pct", AttributeGroup.ROADWAY_FEATURES, _INTERVAL,
        "Mean absolute vertical gradient", "%", 0.0, 10.0,
    ),
    RoadAttribute(
        "intersection_density", AttributeGroup.ROADWAY_FEATURES, _INTERVAL,
        "Intersections and major accesses per km", "1/km", 0.0, 10.0,
    ),
    RoadAttribute(
        "terrain", AttributeGroup.ROADWAY_FEATURES, _NOMINAL,
        "Terrain classification", "",
    ),
    RoadAttribute(
        "region", AttributeGroup.ROADWAY_FEATURES, _NOMINAL,
        "QDTMR administrative region (synthetic analogue)", "",
    ),
    # traffic ------------------------------------------------------------------
    RoadAttribute(
        "aadt", AttributeGroup.TRAFFIC, _INTERVAL,
        "Annual average daily traffic", "veh/day", 80, 80000,
    ),
    RoadAttribute(
        "heavy_vehicle_pct", AttributeGroup.TRAFFIC, _INTERVAL,
        "Heavy vehicle share of AADT", "%", 2.0, 35.0,
    ),
)

_BY_NAME = {a.name: a for a in ROAD_ATTRIBUTES}


def attribute_names(group: AttributeGroup | None = None) -> list[str]:
    """Names of all attributes, optionally restricted to one group."""
    return [
        a.name
        for a in ROAD_ATTRIBUTES
        if group is None or a.group is group
    ]


def get_attribute(name: str) -> RoadAttribute:
    return _BY_NAME[name]


def segment_schema() -> TableSchema:
    """Schema of the raw segment table (id + every road attribute)."""
    specs = [
        ColumnSpec("segment_id", _INTERVAL, Role.ID, "Synthetic segment key"),
    ]
    specs.extend(a.spec() for a in ROAD_ATTRIBUTES)
    return TableSchema(specs)


def modelling_schema(target: str) -> TableSchema:
    """Schema for a modelling table: road attributes as inputs + target.

    ``target`` is the name of a binary / interval target column added by
    :mod:`repro.core.thresholds`.
    """
    specs = [a.spec() for a in ROAD_ATTRIBUTES]
    specs.append(
        ColumnSpec(
            target,
            MeasurementLevel.BINARY,
            Role.TARGET,
            "Crash-proneness class derived from the segment crash count",
        )
    )
    return TableSchema(specs)
