"""Calibration of the crash process against the paper's Table 1.

The proprietary QDTMR data cannot be redistributed, so the synthetic
process is instead *calibrated*: its free parameters are tuned until the
instance-weighted crash-count distribution matches the class marginals
the paper reports.  Table 1 gives, for each threshold k ∈ {2, 4, 8, 16,
32, 64}, how many of the 16,750 crash instances sit on segments with
≤ k crashes; together with the overall crash-free segment share and the
mean crash rate this pins down the count distribution's head, body and
tail.

The resulting parameters are baked into
:class:`~repro.roads.crashes.CrashProcessParams` defaults; this module
remains the reproducible tool that produced them (see
``examples/calibrate_generator.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.exceptions import CalibrationError
from repro.roads.crashes import CrashProcess, CrashProcessParams
from repro.roads.network import RoadNetwork
from repro.roads.segments import GeneratedSegments, SegmentAttributeSampler

__all__ = [
    "CalibrationTargets",
    "CalibrationReport",
    "PAPER_TABLE1_TARGETS",
    "weighted_count_cdf",
    "calibrate_crash_process",
]


@dataclass(frozen=True)
class CalibrationTargets:
    """What the calibrated process should reproduce.

    Attributes
    ----------
    weighted_cdf:
        threshold k → share of *crash instances* on segments with
        count ≤ k (Table 1's non-crash-prone shares).
    zero_share:
        Share of segments with zero crashes over the study window.
    mean_count:
        Mean 4-year crash count per segment.
    """

    weighted_cdf: dict[int, float]
    zero_share: float
    mean_count: float


#: Table 1 of the paper, normalised: non-crash-prone instances / 16,750,
#: plus the implied network-level facts (16,155 crash-free of ~20k
#: segments; 16,750 crashes over ~20k segments).
PAPER_TABLE1_TARGETS = CalibrationTargets(
    weighted_cdf={
        2: 3548 / 16750,
        4: 5904 / 16750,
        8: 8677 / 16750,
        16: 12348 / 16750,
        32: 15471 / 16750,
        64: 16576 / 16750,
    },
    zero_share=0.80,
    mean_count=16750 / 20000,
)


@dataclass
class CalibrationReport:
    """Outcome of a calibration run."""

    params: CrashProcessParams
    objective: float
    achieved_cdf: dict[int, float]
    achieved_zero_share: float
    achieved_mean_count: float
    n_evaluations: int
    converged: bool
    history: list[float] = field(default_factory=list)

    def summary_lines(self) -> list[str]:
        lines = [
            f"objective      : {self.objective:.6f}",
            f"zero share     : {self.achieved_zero_share:.4f}",
            f"mean count     : {self.achieved_mean_count:.4f}",
        ]
        for k, v in sorted(self.achieved_cdf.items()):
            lines.append(f"P_w(count<={k:>3}): {v:.4f}")
        return lines


def weighted_count_cdf(
    counts: np.ndarray, thresholds: tuple[int, ...]
) -> dict[int, float]:
    """Instance-weighted CDF of segment counts.

    Each segment contributes ``count`` instances (one per crash), so the
    share at threshold k is  Σ_{c≤k} c·n_c / Σ c·n_c  — exactly how the
    paper's Table 1 divides its 16,750 crash instances.
    """
    counts = np.asarray(counts)
    total = counts.sum()
    if total == 0:
        raise CalibrationError("no crashes simulated; cannot compute CDF")
    return {
        int(k): float(counts[counts <= k].sum() / total) for k in thresholds
    }


def _probe_segments(
    n_probe: int, seed: int
) -> GeneratedSegments:
    rng = np.random.default_rng(seed)
    n_towns = 12
    while True:
        network = RoadNetwork.generate(rng, n_towns=n_towns)
        if network.n_segments >= n_probe:
            break
        n_towns = int(n_towns * 1.6) + 2
    skeletons = network.skeletons[:n_probe]
    sampler = SegmentAttributeSampler(missing_values=False)
    return sampler.sample(skeletons, rng)


#: Calibratable parameters and whether they live on a log scale.
_LOG_SCALE = {
    "hurdle_intercept": False,
    "count_log_mean": False,
    "count_z_gain": True,
    "count_dispersion": True,
    "background_rate": True,
    "hurdle_slope": True,
    "z_noise_sd": True,
}

DEFAULT_FREE_PARAMETERS = (
    "hurdle_intercept",
    "count_log_mean",
    "count_dispersion",
    "hurdle_slope",
    "background_rate",
)


def calibrate_crash_process(
    targets: CalibrationTargets = PAPER_TABLE1_TARGETS,
    base_params: CrashProcessParams | None = None,
    n_probe: int = 20000,
    seed: int = 7,
    max_iterations: int = 400,
    free_parameters: tuple[str, ...] = DEFAULT_FREE_PARAMETERS,
) -> CalibrationReport:
    """Tune the crash process to the targets with multi-start Nelder–Mead.

    ``free_parameters`` chooses which :class:`CrashProcessParams` fields
    the optimiser may move (positive parameters are searched on a log
    scale); everything else stays at ``base_params``.  Each objective
    evaluation simulates the same probe network with the same inner
    seed, so the objective is deterministic in the decision variables.
    """
    base = base_params or CrashProcessParams()
    unknown = [p for p in free_parameters if p not in _LOG_SCALE]
    if unknown:
        raise CalibrationError(
            f"unknown calibration parameters: {unknown}; "
            f"choose from {sorted(_LOG_SCALE)}"
        )
    if not free_parameters:
        raise CalibrationError("free_parameters must not be empty")
    segments = _probe_segments(n_probe, seed)
    thresholds = tuple(sorted(targets.weighted_cdf))
    history: list[float] = []

    def build(x: np.ndarray) -> CrashProcessParams:
        overrides = {}
        for value, name in zip(x, free_parameters):
            overrides[name] = float(
                np.exp(value) if _LOG_SCALE[name] else value
            )
        return base.with_overrides(**overrides)

    def simulate(params: CrashProcessParams) -> np.ndarray:
        inner = np.random.default_rng(seed + 1)
        return CrashProcess(params).simulate(segments, inner).total_counts

    def objective(x: np.ndarray) -> float:
        counts = simulate(build(x))
        if not counts.any():
            return 1e6
        cdf = weighted_count_cdf(counts, thresholds)
        err = sum(
            (cdf[k] - targets.weighted_cdf[k]) ** 2 for k in thresholds
        )
        err += 4.0 * (float((counts == 0).mean()) - targets.zero_share) ** 2
        err += 1.0 * (float(counts.mean()) - targets.mean_count) ** 2
        history.append(err)
        return err

    x0 = np.array(
        [
            np.log(getattr(base, name))
            if _LOG_SCALE[name]
            else getattr(base, name)
            for name in free_parameters
        ]
    )
    # Nelder–Mead on a stochastic-looking (though deterministic) surface
    # collapses easily; run several jittered starts plus a polish pass
    # from the best, and keep the overall best point.
    start_rng = np.random.default_rng(seed + 2)
    starts = [x0] + [
        x0 + start_rng.normal(0.0, 0.6, size=x0.shape) for _ in range(7)
    ]
    result = None
    for start in starts:
        candidate = optimize.minimize(
            objective,
            start,
            method="Nelder-Mead",
            options={"maxiter": max_iterations, "xatol": 1e-3, "fatol": 1e-7},
        )
        if result is None or candidate.fun < result.fun:
            result = candidate
    polish = optimize.minimize(
        objective,
        result.x,
        method="Nelder-Mead",
        options={"maxiter": max_iterations, "xatol": 1e-4, "fatol": 1e-9},
    )
    if polish.fun < result.fun:
        result = polish
    params = build(result.x)
    counts = simulate(params)
    return CalibrationReport(
        params=params,
        objective=float(result.fun),
        achieved_cdf=weighted_count_cdf(counts, thresholds),
        achieved_zero_share=float((counts == 0).mean()),
        achieved_mean_count=float(counts.mean()),
        n_evaluations=len(history),
        converged=bool(result.success),
        history=history,
    )
