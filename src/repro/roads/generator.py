"""End-to-end synthetic QDTMR dataset generation.

:class:`SyntheticStudyConfig` + :class:`QDTMRSyntheticGenerator` tie the
substrate together: network → segment attributes → zero-altered crash
process → the three tables the study consumes:

``segment_table``
    One row per 1 km segment with observed attributes, the 4-year crash
    count and per-year counts (Figure 1 is read straight off this).
``crash_instances``
    One row **per crash** (the paper's unit of analysis: 16,750 crash
    instances), carrying the segment's road attributes, crash-level
    attributes (year, wet/dry, severity) and the segment's crash count.
``no_crash_instances``
    The zero-altered counting set (the paper's 16,155 imaginary
    non-crash instances).

``paper_scale_config()`` reproduces the paper's dataset sizes;
``small_config()`` is a fast variant for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datatable import (
    CategoricalColumn,
    DataTable,
    NumericColumn,
)
from repro.exceptions import CalibrationError
from repro.roads.attributes import attribute_names
from repro.roads.crashes import (
    STUDY_YEARS,
    CrashOutcome,
    CrashProcess,
    CrashProcessParams,
)
from repro.roads.network import RoadNetwork
from repro.roads.segments import GeneratedSegments, SegmentAttributeSampler
from repro.roads.zero_altered import build_zero_altered_set

__all__ = [
    "SyntheticStudyConfig",
    "RoadCrashDataset",
    "QDTMRSyntheticGenerator",
    "paper_scale_config",
    "small_config",
]


@dataclass(frozen=True)
class SyntheticStudyConfig:
    """Size and process parameters of one synthetic study.

    Attributes
    ----------
    n_segments:
        Target number of 1 km segments (the network is grown to at
        least this and truncated by uniform subsampling).
    n_towns:
        Towns in the generated network; scaled up automatically when
        too small to yield ``n_segments``.
    max_no_crash_instances:
        Cap on the zero-altered set (``None`` = all crash-free
        segments).  The paper used 16,155.
    crash_params:
        Parameters of the zero-altered crash process.
    missing_values:
        Inject survey-coverage missingness into observed attributes.
    require_f60:
        Drop crash instances whose segment lacks a skid-resistance
        reading, mirroring the paper's reduction from 42,388 to 16,750
        crashes ("crash selections were limited by the requirement to
        model the sparse skid resistance (F60) attribute").
    """

    n_segments: int = 20000
    n_towns: int = 40
    max_no_crash_instances: int | None = None
    crash_params: CrashProcessParams = field(default_factory=CrashProcessParams)
    missing_values: bool = True
    require_f60: bool = True


def paper_scale_config(**overrides) -> SyntheticStudyConfig:
    """Configuration matching the paper's dataset sizes (~20k segments,
    ~16.7k crash instances, ~16.2k no-crash instances)."""
    defaults = dict(
        n_segments=20000,
        n_towns=48,
        max_no_crash_instances=16155,
    )
    defaults.update(overrides)
    return SyntheticStudyConfig(**defaults)


def small_config(**overrides) -> SyntheticStudyConfig:
    """A fast, small configuration for tests and quick examples."""
    defaults = dict(
        n_segments=1500,
        n_towns=12,
        max_no_crash_instances=None,
    )
    defaults.update(overrides)
    return SyntheticStudyConfig(**defaults)


@dataclass
class RoadCrashDataset:
    """The complete synthetic study dataset."""

    config: SyntheticStudyConfig
    network: RoadNetwork
    segments: GeneratedSegments
    outcome: CrashOutcome
    segment_table: DataTable
    crash_instances: DataTable
    no_crash_instances: DataTable

    @property
    def n_crash_instances(self) -> int:
        return self.crash_instances.n_rows

    @property
    def n_no_crash_instances(self) -> int:
        return self.no_crash_instances.n_rows

    def combined_instances(self) -> DataTable:
        """The phase-1 table: crash + zero-altered no-crash instances.

        Only the columns shared by both sources are kept (road
        attributes, segment id and segment crash count); crash-level
        attributes exist only for real crashes.
        """
        shared = ["segment_id"] + attribute_names() + ["segment_crash_count"]
        return self.crash_instances.select(shared).concat(
            self.no_crash_instances.select(shared)
        )

    def annual_count_distribution(self) -> dict[int, dict[int, int]]:
        """year → {per-year crash count → number of segments}  (Figure 1).

        Zero counts are excluded (the figure plots roads *with* crashes).
        """
        result: dict[int, dict[int, int]] = {}
        for j, year in enumerate(STUDY_YEARS):
            counts = self.outcome.year_counts[:, j]
            values, freq = np.unique(counts[counts > 0], return_counts=True)
            result[year] = {int(v): int(f) for v, f in zip(values, freq)}
        return result


class QDTMRSyntheticGenerator:
    """Generates :class:`RoadCrashDataset` instances from a config."""

    def __init__(self, config: SyntheticStudyConfig | None = None):
        self.config = config or SyntheticStudyConfig()

    def generate(self, seed: int = 0) -> RoadCrashDataset:
        """Run the full pipeline deterministically from ``seed``."""
        cfg = self.config
        rng = np.random.default_rng(seed)
        network = self._grow_network(rng)
        skeletons = network.skeletons
        if len(skeletons) > cfg.n_segments:
            keep = np.sort(
                rng.choice(len(skeletons), size=cfg.n_segments, replace=False)
            )
            skeletons = [skeletons[i] for i in keep]

        sampler = SegmentAttributeSampler(missing_values=cfg.missing_values)
        segments = sampler.sample(skeletons, rng)
        process = CrashProcess(cfg.crash_params)
        outcome = process.simulate(segments, rng)

        segment_table = self._segment_table(segments, outcome)
        crash_instances = self._crash_instances(
            segments, outcome, process, rng
        )
        no_crash = build_zero_altered_set(
            segments, outcome, rng, cfg.max_no_crash_instances
        )
        return RoadCrashDataset(
            config=cfg,
            network=network,
            segments=segments,
            outcome=outcome,
            segment_table=segment_table,
            crash_instances=crash_instances,
            no_crash_instances=no_crash,
        )

    # -- internals ------------------------------------------------------
    def _grow_network(self, rng: np.random.Generator) -> RoadNetwork:
        """Grow the network until it has at least ``n_segments`` segments."""
        n_towns = self.config.n_towns
        for _attempt in range(6):
            network = RoadNetwork.generate(rng, n_towns=n_towns)
            if network.n_segments >= self.config.n_segments:
                return network
            n_towns = int(n_towns * 1.6) + 2
        raise CalibrationError(
            f"could not grow a network of {self.config.n_segments} segments "
            f"(reached {network.n_segments}); increase n_towns"
        )

    def _segment_table(
        self, segments: GeneratedSegments, outcome: CrashOutcome
    ) -> DataTable:
        table = segments.table.with_column(
            NumericColumn.from_array(
                "segment_crash_count",
                outcome.total_counts.astype(np.float64),
            )
        )
        for j, year in enumerate(STUDY_YEARS):
            table = table.with_column(
                NumericColumn.from_array(
                    f"crashes_{year}",
                    outcome.year_counts[:, j].astype(np.float64),
                )
            )
        return table

    def _crash_instances(
        self,
        segments: GeneratedSegments,
        outcome: CrashOutcome,
        process: CrashProcess,
        rng: np.random.Generator,
    ) -> DataTable:
        counts = outcome.total_counts
        seg_indices = np.repeat(np.arange(segments.n_segments), counts)
        base = segments.table.take(seg_indices)
        base = base.with_column(
            NumericColumn.from_array(
                "segment_crash_count",
                counts[seg_indices].astype(np.float64),
            )
        )
        crash_attrs = process.crash_attributes(segments, outcome, rng)
        base = base.with_column(
            NumericColumn.from_array(
                "crash_year",
                np.asarray(crash_attrs["crash_year"], dtype=np.float64),
            )
        )
        base = base.with_column(
            CategoricalColumn(
                "surface_condition",
                crash_attrs["surface_condition"],
                ("dry", "wet"),
            )
        )
        base = base.with_column(
            CategoricalColumn(
                "severity",
                crash_attrs["severity"],
                (
                    "property_damage",
                    "medical_treatment",
                    "hospitalisation_or_fatal",
                ),
            )
        )
        if self.config.require_f60:
            has_f60 = ~base.column("skid_resistance_f60").missing_mask()
            base = base.filter(has_f60)
        return base
