"""The zero-altered counting set: imaginary non-crash instances.

Phase 1 of the paper models crash vs no-crash, which requires negative
examples.  Following Shankar et al.'s zero-altered counting process,
the authors created "an imaginary set of non-crash instances with road
characteristics from the non-crash roads".  This module constructs that
set from the simulated network: one instance per crash-free segment
(optionally subsampled), carrying the segment's observed road
attributes and a crash count of zero.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable, NumericColumn
from repro.roads.crashes import CrashOutcome
from repro.roads.segments import GeneratedSegments

__all__ = ["build_zero_altered_set"]


def build_zero_altered_set(
    segments: GeneratedSegments,
    outcome: CrashOutcome,
    rng: np.random.Generator,
    max_instances: int | None = None,
) -> DataTable:
    """Instances for the crash-free segments.

    Parameters
    ----------
    segments:
        The generated segment attributes.
    outcome:
        The simulated crash history; segments with zero total crashes
        form the pool.
    rng:
        Used only when subsampling.
    max_instances:
        If given and smaller than the pool, a uniform subsample of that
        size is returned (the paper's 16,155 no-crash instances are a
        subset of the full crash-free network).

    Returns
    -------
    DataTable
        Observed road attributes + ``segment_id`` +
        ``segment_crash_count`` (all zero).
    """
    mask = outcome.total_counts == 0
    table = segments.table.filter(mask)
    if max_instances is not None and table.n_rows > max_instances:
        idx = rng.choice(table.n_rows, size=max_instances, replace=False)
        table = table.take(np.sort(idx))
    zeros = np.zeros(table.n_rows, dtype=np.float64)
    return table.with_column(
        NumericColumn.from_array("segment_crash_count", zeros)
    )
