"""Dress network skeletons with correlated road-condition attributes.

A single latent *deficiency* score per segment drives the condition
attributes the paper found predictive (skid resistance F60 down,
texture depth down, distress measures up, seal age up), while the
functional attributes (AADT, speed limit, lanes) derive from the
skeleton's road class and urbanisation.  Models never see the latent
score — they see the noisy attribute views of it — which is exactly the
setting the paper's trees operate in: crash-prone roads are attribute-
separable, but only through correlated, noisy surrogates.

Missing values are injected per-attribute at the rates declared in
:mod:`repro.roads.attributes` (F60 sparsest, as in the study).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import CategoricalColumn, DataTable, NumericColumn
from repro.exceptions import ConfigurationError
from repro.roads.attributes import (
    ROAD_ATTRIBUTES,
    SEAL_TYPES,
    segment_schema,
)
from repro.roads.network import SegmentSkeleton

__all__ = ["GeneratedSegments", "SegmentAttributeSampler"]

_CLASS_PARAMS = {
    # road_class: (deficiency beta a, b, aadt log-mean, aadt log-sd,
    #              speed, lanes, heavy%)
    "motorway": (1.6, 7.0, 10.3, 0.45, 110, 4, 14.0),
    "highway": (2.0, 5.5, 9.2, 0.55, 100, 2, 18.0),
    "arterial": (2.4, 4.5, 8.4, 0.6, 80, 2, 12.0),
    "rural": (2.6, 3.2, 6.6, 0.8, 100, 2, 16.0),
    "urban": (2.2, 4.0, 8.8, 0.7, 60, 2, 7.0),
}

_TERRAIN_CURVATURE = {"flat": 14.0, "rolling": 38.0, "mountainous": 85.0}
_TERRAIN_GRADIENT = {"flat": 1.0, "rolling": 3.2, "mountainous": 6.0}


@dataclass
class GeneratedSegments:
    """Attribute table plus the latent quantities the crash process needs.

    Attributes
    ----------
    table:
        One row per segment: ``segment_id`` + every road attribute,
        *with* injected missing values (what models see).
    deficiency:
        Latent condition deficiency in [0, 1] (hidden from models).
    exposure:
        Traffic exposure score derived from true AADT (hidden).
    true_values:
        Attribute → complete (no missing) value arrays, used by the
        crash process so that crash risk is a function of the real road,
        not of the survey coverage.
    """

    table: DataTable
    deficiency: np.ndarray
    exposure: np.ndarray
    true_values: dict[str, np.ndarray]

    @property
    def n_segments(self) -> int:
        return self.table.n_rows


class SegmentAttributeSampler:
    """Samples the attribute vector of every skeleton.

    Parameters
    ----------
    deficiency_shift:
        Added to the class-level mean deficiency; raising it ages the
        whole network (used by the what-if resurfacing example).
    missing_values:
        If False, no missingness is injected (useful for tests that
        check pure distributional facts).
    """

    def __init__(
        self, deficiency_shift: float = 0.0, missing_values: bool = True
    ):
        self.deficiency_shift = deficiency_shift
        self.missing_values = missing_values

    def sample(
        self, skeletons: list[SegmentSkeleton], rng: np.random.Generator
    ) -> GeneratedSegments:
        n = len(skeletons)
        if n == 0:
            raise ConfigurationError("cannot sample attributes for an empty network")
        road_class = np.array([s.road_class for s in skeletons])
        terrain = np.array([s.terrain for s in skeletons])
        region = np.array([s.region for s in skeletons])
        urbanisation = np.array([s.urbanisation for s in skeletons])

        # Latent deficiency per segment ------------------------------------
        deficiency = np.empty(n)
        for cls, (a, b, *_rest) in _CLASS_PARAMS.items():
            mask = road_class == cls
            if mask.any():
                deficiency[mask] = rng.beta(a, b, size=int(mask.sum()))
        if self.deficiency_shift:
            deficiency = np.clip(deficiency + self.deficiency_shift, 0.0, 1.0)

        # Functional design ---------------------------------------------------
        aadt = np.empty(n)
        speed = np.empty(n)
        lanes = np.empty(n)
        heavy = np.empty(n)
        for cls, (_a, _b, mu, sd, spd, lane, hv) in _CLASS_PARAMS.items():
            mask = road_class == cls
            if not mask.any():
                continue
            m = int(mask.sum())
            aadt[mask] = np.exp(rng.normal(mu, sd, size=m))
            speed[mask] = spd
            lanes[mask] = lane
            heavy[mask] = np.clip(rng.normal(hv, 4.0, size=m), 2.0, 35.0)
        aadt *= 1.0 + 1.8 * urbanisation
        aadt = np.clip(aadt, 80, 80000)
        speed = speed - np.round(urbanisation * 3.0) * 10.0
        speed = np.clip(speed, 50, 110)
        lanes = lanes + (aadt > 25000) + (aadt > 50000)
        seal_width = np.clip(
            3.2 * lanes + rng.normal(1.5, 0.8, size=n), 5.5, 24.0
        )

        # Surface properties (deficiency lowers friction and texture) --------
        base_f60 = 0.68 - 0.05 * (road_class == "urban")
        f60 = base_f60 - 0.38 * deficiency + rng.normal(0, 0.055, size=n)
        f60 = np.clip(f60, 0.15, 0.85)
        texture = 1.9 - 1.3 * deficiency + rng.normal(0, 0.22, size=n)
        texture = np.clip(texture, 0.2, 2.8)
        seal_type = np.where(
            np.isin(road_class, ("motorway", "urban")),
            np.where(rng.random(n) < 0.8, "asphalt", "concrete"),
            np.where(rng.random(n) < 0.75, "spray_seal", "asphalt"),
        )

        # Surface distress -----------------------------------------------------
        iri = 1.1 + 4.2 * deficiency + 0.5 * (terrain == "mountainous")
        iri = np.clip(iri + rng.normal(0, 0.5, size=n), 0.8, 8.0)
        rut = np.clip(
            1.5 + 19.0 * deficiency + rng.normal(0, 2.2, size=n), 0.0, 30.0
        )
        cracking = np.clip(
            42.0 * deficiency**2 + rng.normal(0, 3.0, size=n), 0.0, 45.0
        )

        # Surface wear ---------------------------------------------------------
        seal_age = np.clip(
            2.0 + 22.0 * deficiency + rng.normal(0, 2.5, size=n), 0.0, 28.0
        )
        agg_loss = np.clip(
            30.0 * deficiency + rng.normal(0, 3.5, size=n), 0.0, 35.0
        )

        # Roadway features -------------------------------------------------------
        curvature = np.array([_TERRAIN_CURVATURE[t] for t in terrain])
        curvature = np.clip(
            curvature * rng.lognormal(0.0, 0.5, size=n), 0.0, 150.0
        )
        gradient = np.array([_TERRAIN_GRADIENT[t] for t in terrain])
        gradient = np.clip(gradient * rng.lognormal(0.0, 0.4, size=n), 0.0, 10.0)
        intersections = np.clip(
            urbanisation * 6.5 + rng.exponential(0.4, size=n), 0.0, 10.0
        )

        true_values: dict[str, np.ndarray] = {
            "speed_limit": speed,
            "lane_count": lanes,
            "seal_width": seal_width,
            "skid_resistance_f60": f60,
            "texture_depth": texture,
            "roughness_iri": iri,
            "rut_depth": rut,
            "cracking_pct": cracking,
            "seal_age": seal_age,
            "aggregate_loss_pct": agg_loss,
            "curvature": curvature,
            "gradient_pct": gradient,
            "intersection_density": intersections,
            "aadt": aadt,
            "heavy_vehicle_pct": heavy,
        }

        # Observed (possibly missing) versions ---------------------------------
        columns = [
            NumericColumn.from_array(
                "segment_id",
                np.array([s.segment_id for s in skeletons], dtype=np.float64),
            )
        ]
        missing_rates = {a.name: a.missing_rate for a in ROAD_ATTRIBUTES}
        for attr in ROAD_ATTRIBUTES:
            if attr.name == "road_class":
                columns.append(CategoricalColumn("road_class", list(road_class)))
            elif attr.name == "seal_type":
                columns.append(
                    CategoricalColumn("seal_type", list(seal_type), SEAL_TYPES)
                )
            elif attr.name == "terrain":
                columns.append(CategoricalColumn("terrain", list(terrain)))
            elif attr.name == "region":
                columns.append(CategoricalColumn("region", list(region)))
            else:
                observed = true_values[attr.name].copy()
                rate = missing_rates.get(attr.name, 0.0)
                if self.missing_values and rate > 0:
                    observed[rng.random(n) < rate] = np.nan
                columns.append(NumericColumn.from_array(attr.name, observed))

        table = DataTable(columns, schema=segment_schema())
        exposure = np.log(aadt / 1000.0 + 1.0)
        return GeneratedSegments(
            table=table,
            deficiency=deficiency,
            exposure=exposure,
            true_values=true_values,
        )
