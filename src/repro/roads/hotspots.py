"""Spatial crash hotspot profiling (Anderson-style KDE baseline).

The paper's related work includes Anderson [7]: "Kernel density
estimation and K-means clustering to profile road accident hotspots."
This module implements that baseline against the synthetic network's
plane coordinates, so the attribute-driven phase-3 clusters can be
compared with what a purely *spatial* analysis finds:

* :func:`crash_kde` — a Gaussian kernel density surface of crash
  locations over a regular grid;
* :meth:`KdeSurface.hotspot_cells` — grid cells above a density
  quantile (Anderson's hotspot definition);
* :func:`spatial_kmeans_hotspots` — k-means on crash coordinates, with
  per-cluster crash totals and radii.

The comparison point for the paper: spatial hotspots find *where*
crashes concentrate (mostly high-exposure urban areas), whereas the
crash-proneness model explains *which road state* produces them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import EvaluationError
from repro.roads.generator import RoadCrashDataset

__all__ = [
    "KdeSurface",
    "crash_kde",
    "SpatialCluster",
    "spatial_kmeans_hotspots",
    "crash_coordinates",
]


def crash_coordinates(dataset: RoadCrashDataset) -> np.ndarray:
    """(n_crashes, 2) plane coordinates, one row per crash.

    Each crash sits at its segment's interpolated route position.
    """
    network = dataset.network
    ids = dataset.crash_instances.numeric("segment_id").astype(int)
    coordinates = np.empty((ids.shape[0], 2))
    for row, segment_id in enumerate(ids):
        skeleton = network.skeleton_of(int(segment_id))
        coordinates[row, 0] = skeleton.x
        coordinates[row, 1] = skeleton.y
    return coordinates


@dataclass
class KdeSurface:
    """A kernel density estimate over a regular grid."""

    xs: np.ndarray
    ys: np.ndarray
    density: np.ndarray  # (len(ys), len(xs))
    bandwidth_km: float
    n_points: int

    def hotspot_cells(self, quantile: float = 0.95) -> list[tuple[float, float, float]]:
        """(x, y, density) of grid cells above the density quantile,
        strongest first."""
        if not 0.0 < quantile < 1.0:
            raise EvaluationError(
                f"quantile must be in (0, 1), got {quantile}"
            )
        positive = self.density[self.density > 0]
        if positive.size == 0:
            return []
        cut = float(np.quantile(positive, quantile))
        rows, cols = np.nonzero(self.density >= cut)
        cells = [
            (
                float(self.xs[c]),
                float(self.ys[r]),
                float(self.density[r, c]),
            )
            for r, c in zip(rows, cols)
        ]
        cells.sort(key=lambda cell: -cell[2])
        return cells

    def density_at(self, x: float, y: float) -> float:
        """Nearest-cell density lookup."""
        col = int(np.clip(np.searchsorted(self.xs, x), 0, len(self.xs) - 1))
        row = int(np.clip(np.searchsorted(self.ys, y), 0, len(self.ys) - 1))
        return float(self.density[row, col])


def crash_kde(
    dataset: RoadCrashDataset,
    bandwidth_km: float = 25.0,
    grid_size: int = 60,
) -> KdeSurface:
    """Gaussian KDE of crash locations on a ``grid_size``² lattice."""
    if bandwidth_km <= 0:
        raise EvaluationError(
            f"bandwidth must be positive, got {bandwidth_km}"
        )
    if grid_size < 2:
        raise EvaluationError(f"grid_size must be >= 2, got {grid_size}")
    points = crash_coordinates(dataset)
    if points.shape[0] == 0:
        raise EvaluationError("no crashes to estimate a density from")
    pad = 2 * bandwidth_km
    xs = np.linspace(
        points[:, 0].min() - pad, points[:, 0].max() + pad, grid_size
    )
    ys = np.linspace(
        points[:, 1].min() - pad, points[:, 1].max() + pad, grid_size
    )
    # Separable Gaussian kernel evaluated against all points.
    dx = xs[None, :] - points[:, 0:1]          # (n, gx)
    dy = ys[None, :] - points[:, 1:2]          # (n, gy)
    kx = np.exp(-0.5 * (dx / bandwidth_km) ** 2)
    ky = np.exp(-0.5 * (dy / bandwidth_km) ** 2)
    density = ky.T @ kx                         # (gy, gx)
    density /= (
        points.shape[0] * 2 * np.pi * bandwidth_km**2
    )
    return KdeSurface(
        xs=xs,
        ys=ys,
        density=density,
        bandwidth_km=bandwidth_km,
        n_points=int(points.shape[0]),
    )


@dataclass(frozen=True)
class SpatialCluster:
    """A k-means crash hotspot in the plane."""

    cluster_id: int
    centre_x: float
    centre_y: float
    n_crashes: int
    radius_km: float
    """Root-mean-square distance of member crashes from the centre."""

    @property
    def intensity(self) -> float:
        """Crashes per km² of the cluster disc."""
        area = np.pi * max(self.radius_km, 1e-6) ** 2
        return self.n_crashes / area


def spatial_kmeans_hotspots(
    dataset: RoadCrashDataset,
    n_clusters: int = 12,
    seed: int = 0,
) -> list[SpatialCluster]:
    """K-means on crash coordinates, densest hotspots first."""
    points = crash_coordinates(dataset)
    if points.shape[0] < n_clusters:
        raise EvaluationError(
            f"cannot form {n_clusters} hotspots from "
            f"{points.shape[0]} crashes"
        )
    from repro.datatable import DataTable, NumericColumn
    from repro.mining import KMeans

    table = DataTable(
        [
            NumericColumn.from_array("x", points[:, 0]),
            NumericColumn.from_array("y", points[:, 1]),
        ]
    )
    model = KMeans(n_clusters=n_clusters, seed=seed)
    assignment = model.fit_predict(table)
    clusters: list[SpatialCluster] = []
    for cluster_id in range(n_clusters):
        members = points[assignment == cluster_id]
        if members.shape[0] == 0:
            continue
        centre = members.mean(axis=0)
        radius = float(
            np.sqrt(((members - centre) ** 2).sum(axis=1).mean())
        )
        clusters.append(
            SpatialCluster(
                cluster_id=cluster_id,
                centre_x=float(centre[0]),
                centre_y=float(centre[1]),
                n_crashes=int(members.shape[0]),
                radius_km=radius,
            )
        )
    clusters.sort(key=lambda c: -c.intensity)
    return clusters
