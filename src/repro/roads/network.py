"""Synthetic road network builder.

The QDTMR study area is a state-wide network of sealed roads surveyed
in 1 km segments.  We synthesise an analogous network: towns are placed
on a plane, connected by a spanning backbone plus shortcut links, and
each link becomes a *route* with a functional class, terrain and region.
Routes are then sliced into 1 km :class:`SegmentSkeleton` records that
carry only the topological facts (class, terrain, region, urbanisation);
:mod:`repro.roads.segments` later dresses the skeletons with correlated
condition attributes.

networkx is used for the graph construction so the network object stays
queryable (e.g. the hotspot example maps crash-prone segments back onto
routes between named towns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.exceptions import ConfigurationError
from repro.roads.attributes import REGIONS, ROAD_CLASSES, TERRAIN_TYPES

__all__ = ["Town", "Route", "SegmentSkeleton", "RoadNetwork"]


@dataclass(frozen=True)
class Town:
    """A node of the network: a population centre."""

    town_id: int
    name: str
    x: float
    y: float
    population: int


@dataclass(frozen=True)
class Route:
    """One edge of the network: a sealed road between two towns."""

    route_id: int
    start: int
    end: int
    road_class: str
    terrain: str
    region: str
    length_km: float


@dataclass(frozen=True)
class SegmentSkeleton:
    """Topological identity of one 1 km segment before attributes."""

    segment_id: int
    route_id: int
    chainage_km: float
    road_class: str
    terrain: str
    region: str
    urbanisation: float
    """0 = deep rural, 1 = town centre; drives AADT and intersections."""
    x: float = 0.0
    y: float = 0.0
    """Plane coordinates (km) interpolated along the route; used by the
    KDE hotspot baseline."""


def _class_for(pop_a: int, pop_b: int, rng: np.random.Generator) -> str:
    """Pick a functional class from the populations of the end towns."""
    smaller = min(pop_a, pop_b)
    larger = max(pop_a, pop_b)
    if larger >= 200_000 and smaller >= 50_000:
        return str(rng.choice(["motorway", "highway"], p=[0.4, 0.6]))
    if larger >= 50_000:
        return str(rng.choice(["highway", "arterial"], p=[0.55, 0.45]))
    if larger >= 10_000:
        return str(rng.choice(["arterial", "rural"], p=[0.5, 0.5]))
    return "rural"


@dataclass
class RoadNetwork:
    """A generated network of towns, routes and 1 km segments."""

    towns: list[Town] = field(default_factory=list)
    routes: list[Route] = field(default_factory=list)
    graph: nx.Graph = field(default_factory=nx.Graph)
    _skeletons: list[SegmentSkeleton] = field(default_factory=list)
    # Lookup indexes, built once on first use and rebuilt only if the
    # backing list has grown (generation appends; nothing mutates after).
    _route_index: dict[int, Route] | None = field(
        default=None, repr=False, compare=False
    )
    _town_index: dict[int, Town] | None = field(
        default=None, repr=False, compare=False
    )
    _town_names: dict[str, Town] | None = field(
        default=None, repr=False, compare=False
    )
    _skeleton_index: dict[int, SegmentSkeleton] | None = field(
        default=None, repr=False, compare=False
    )

    # -- construction -------------------------------------------------
    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        n_towns: int = 40,
        extent_km: float = 1000.0,
        shortcut_fraction: float = 0.35,
    ) -> "RoadNetwork":
        """Generate a connected network.

        Parameters
        ----------
        rng:
            Source of randomness; the network is a pure function of it.
        n_towns:
            Number of population centres.
        extent_km:
            Side length of the square study area.
        shortcut_fraction:
            Extra edges (as a fraction of ``n_towns``) added on top of
            the minimum spanning tree to create alternative routes.
        """
        if n_towns < 2:
            raise ConfigurationError(f"need at least 2 towns, got {n_towns}")
        net = cls()
        xs = rng.uniform(0, extent_km, size=n_towns)
        ys = rng.uniform(0, extent_km, size=n_towns)
        # Log-normal town sizes: a few cities, many small towns.
        pops = np.round(np.exp(rng.normal(9.5, 1.6, size=n_towns))).astype(int)
        pops = np.clip(pops, 500, 2_500_000)
        for i in range(n_towns):
            net.towns.append(
                Town(i, f"town_{i:03d}", float(xs[i]), float(ys[i]), int(pops[i]))
            )
            net.graph.add_node(i, town=net.towns[-1])

        # Backbone: Euclidean minimum spanning tree.
        complete = nx.Graph()
        for i in range(n_towns):
            for j in range(i + 1, n_towns):
                dist = math.hypot(xs[i] - xs[j], ys[i] - ys[j])
                complete.add_edge(i, j, weight=dist)
        backbone = nx.minimum_spanning_tree(complete)
        edges = list(backbone.edges(data=True))

        # Shortcuts: prefer short links between large towns.
        candidates = [
            (u, v, data["weight"])
            for u, v, data in complete.edges(data=True)
            if not backbone.has_edge(u, v) and data["weight"] < extent_km * 0.45
        ]
        scores = np.array(
            [math.log(pops[u] * pops[v]) / (d + 1.0) for u, v, d in candidates]
        )
        n_extra = int(round(n_towns * shortcut_fraction))
        if candidates and n_extra > 0:
            order = np.argsort(-scores)[:n_extra]
            for k in order:
                u, v, d = candidates[int(k)]
                edges.append((u, v, {"weight": d}))

        for u, v, data in edges:
            net._add_route(u, v, data["weight"], extent_km, rng)
        net._build_skeletons(rng)
        return net

    def _add_route(
        self,
        u: int,
        v: int,
        euclid_km: float,
        extent_km: float,
        rng: np.random.Generator,
    ) -> None:
        terrain = str(
            rng.choice(TERRAIN_TYPES, p=[0.45, 0.38, 0.17])
        )
        winding = {"flat": 1.08, "rolling": 1.18, "mountainous": 1.38}[terrain]
        length = max(2.0, euclid_km * winding * rng.uniform(0.95, 1.1))
        mid_x = (self.towns[u].x + self.towns[v].x) / 2
        mid_y = (self.towns[u].y + self.towns[v].y) / 2
        region = REGIONS[
            (mid_x > extent_km / 2) + 2 * (mid_y > extent_km / 2)
        ]
        road_class = _class_for(
            self.towns[u].population, self.towns[v].population, rng
        )
        route = Route(
            route_id=len(self.routes),
            start=u,
            end=v,
            road_class=road_class,
            terrain=terrain,
            region=region,
            length_km=float(length),
        )
        self.routes.append(route)
        self.graph.add_edge(u, v, route=route, weight=length)

    def _build_skeletons(self, rng: np.random.Generator) -> None:
        segment_id = 0
        for route in self.routes:
            n_segments = max(1, int(route.length_km))
            for k in range(n_segments):
                chainage = float(k)
                # Urbanisation decays with distance from either end town.
                from_ends = min(k, n_segments - 1 - k)
                urban = math.exp(-from_ends / 6.0)
                pop_scale = math.log10(
                    max(
                        self.towns[route.start].population,
                        self.towns[route.end].population,
                    )
                ) / 7.0
                urbanisation = min(1.0, urban * pop_scale * rng.uniform(0.8, 1.2))
                if route.road_class == "urban":
                    urbanisation = max(urbanisation, 0.6)
                fraction = (k + 0.5) / n_segments
                start_town = self.towns[route.start]
                end_town = self.towns[route.end]
                self._skeletons.append(
                    SegmentSkeleton(
                        segment_id=segment_id,
                        route_id=route.route_id,
                        chainage_km=chainage,
                        road_class=route.road_class,
                        terrain=route.terrain,
                        region=route.region,
                        urbanisation=float(urbanisation),
                        x=start_town.x + fraction * (end_town.x - start_town.x),
                        y=start_town.y + fraction * (end_town.y - start_town.y),
                    )
                )
                segment_id += 1
        # A state network also has in-town ("urban") street segments that
        # are not between-town routes; add a block of those.
        n_urban = int(len(self._skeletons) * 0.18)
        for _ in range(n_urban):
            town = self.towns[int(rng.integers(len(self.towns)))]
            spread = 1.0 + math.log10(town.population)
            self._skeletons.append(
                SegmentSkeleton(
                    segment_id=segment_id,
                    route_id=-1,
                    chainage_km=0.0,
                    road_class="urban",
                    terrain=str(rng.choice(TERRAIN_TYPES, p=[0.7, 0.25, 0.05])),
                    region=REGIONS[int(rng.integers(len(REGIONS)))],
                    urbanisation=float(
                        min(1.0, 0.5 + math.log10(town.population) / 14.0)
                    ),
                    x=town.x + float(rng.normal(0.0, spread)),
                    y=town.y + float(rng.normal(0.0, spread)),
                )
            )
            segment_id += 1

    # -- queries ---------------------------------------------------------
    @property
    def skeletons(self) -> list[SegmentSkeleton]:
        return list(self._skeletons)

    @property
    def n_segments(self) -> int:
        return len(self._skeletons)

    def _routes_by_id(self) -> dict[int, Route]:
        index = self._route_index
        if index is None or len(index) != len(self.routes):
            index = {route.route_id: route for route in self.routes}
            self._route_index = index
        return index

    def _towns_by_id(self) -> dict[int, Town]:
        index = self._town_index
        if index is None or len(index) != len(self.towns):
            index = {town.town_id: town for town in self.towns}
            self._town_index = index
        return index

    def _towns_by_name(self) -> dict[str, Town]:
        index = self._town_names
        if index is None or len(index) != len(self.towns):
            index = {town.name: town for town in self.towns}
            self._town_names = index
        return index

    def _skeletons_by_id(self) -> dict[int, SegmentSkeleton]:
        index = self._skeleton_index
        if index is None or len(index) != len(self._skeletons):
            index = {s.segment_id: s for s in self._skeletons}
            self._skeleton_index = index
        return index

    def route_of(self, skeleton: SegmentSkeleton) -> Route | None:
        if skeleton.route_id < 0:
            return None
        return self._routes_by_id()[skeleton.route_id]

    def route_endpoints(self, route: Route) -> tuple[Town, Town]:
        towns = self._towns_by_id()
        return towns[route.start], towns[route.end]

    def town_named(self, ref: str | int) -> Town:
        """Resolve a town by name (``town_007``) or integer id."""
        if isinstance(ref, bool):
            raise ConfigurationError(f"not a town reference: {ref!r}")
        if isinstance(ref, int):
            town = self._towns_by_id().get(ref)
        else:
            index = self._towns_by_name()
            town = index.get(str(ref))
            if town is None and str(ref).isdigit():
                town = self._towns_by_id().get(int(ref))
        if town is None:
            raise ConfigurationError(
                f"unknown town {ref!r} "
                f"(network has {len(self.towns)} towns: "
                f"{self.towns[0].name}..{self.towns[-1].name})"
                if self.towns
                else f"unknown town {ref!r} (network has no towns)"
            )
        return town

    def skeleton_of(self, segment_id: int) -> SegmentSkeleton | None:
        return self._skeletons_by_id().get(int(segment_id))

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def total_length_km(self) -> float:
        return sum(r.length_km for r in self.routes)

    def __repr__(self) -> str:
        classes = {c: 0 for c in ROAD_CLASSES}
        for s in self._skeletons:
            classes[s.road_class] += 1
        mix = ", ".join(f"{c}={n}" for c, n in classes.items() if n)
        return (
            f"RoadNetwork({len(self.towns)} towns, {len(self.routes)} routes, "
            f"{self.n_segments} segments: {mix})"
        )
