"""Zero-altered crash counting process.

Shankar, Milton & Mannering's zero-altered probability framework — the
paper's stated inspiration — treats a road segment's crash count as a
two-regime process: a *hurdle* decides whether the segment generates
structural (road-caused) crashes at all, and a count distribution then
produces how many.  On top of that, every trafficked segment collects a
small number of *background* crashes (driver behaviour, weather, ...)
that are nearly independent of road condition.

That decomposition is precisely what makes the paper's finding come out:

* Segments whose only crashes are background crashes have *good* road
  attributes — they look like no-crash roads, so low crash-count roads
  cluster with non-crash-prone roads.
* Segments past the hurdle have attribute-driven counts — they are what
  the trees can actually separate — so model efficiency rises as the
  threshold moves the background-dominated segments into the negative
  class, and falls again once the positive class starves.

Counts are distributed over the four study years (2004–2007) with a
near-uniform multinomial, matching Figure 1's year-on-year stability,
and each crash is given wet/dry and severity attributes whose rates
depend on skid resistance (as the authors' prior wet/dry study found).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.roads.segments import GeneratedSegments

__all__ = ["CrashProcessParams", "CrashOutcome", "CrashProcess", "STUDY_YEARS"]

STUDY_YEARS = (2004, 2005, 2006, 2007)


@dataclass(frozen=True)
class CrashProcessParams:
    """Parameters of the zero-altered crash process.

    The defaults were produced by :mod:`repro.roads.calibration`
    against the class marginals of Table 1 of the paper (see
    EXPERIMENTS.md); they give, at the paper's scale of ~20k segments,
    roughly 16.7k crashes on ~4k segments with ~16k crash-free segments.

    Attributes
    ----------
    w_deficiency, w_exposure, w_curvature, w_intersections:
        Weights of the structural propensity score ``z``.
    z_noise_sd:
        Unobserved heterogeneity; bounds achievable model accuracy.
    hurdle_intercept, hurdle_slope:
        Logistic hurdle P(structural regime | z).
    count_log_mean, count_z_gain:
        Structural count mean  μ = exp(count_log_mean + count_z_gain·z).
    count_offset:
        Minimum crash count of a segment in the structural regime
        (counts below it only arise from background crashes, which is
        what makes low-count roads resemble no-crash roads).
    count_dispersion:
        Negative-binomial shape (gamma-Poisson mixing); smaller = heavier
        tail.  The tail produces the paper's >64-crash segments.
    background_rate:
        Base background crashes per segment over the 4-year window.
    background_exposure_gain:
        Exponent tying background crashes to traffic exposure.
    background_dispersion:
        Gamma-mixing shape of the background regime; values below ~1
        give a tail of "unlucky" good roads collecting several
        behavioural crashes, which is what blurs the CP-2 boundary.
    year_weights:
        Relative crash weight of each study year.
    """

    w_deficiency: float = 1.0
    w_exposure: float = 0.55
    w_curvature: float = 0.30
    w_intersections: float = 0.25
    z_noise_sd: float = 0.25
    hurdle_intercept: float = -6.5099
    hurdle_slope: float = 3.0
    count_log_mean: float = 1.6022
    count_z_gain: float = 0.10
    count_offset: int = 6
    count_dispersion: float = 0.5859
    background_rate: float = 0.3222
    background_exposure_gain: float = 0.30
    background_dispersion: float = 0.30
    year_weights: tuple[float, ...] = (0.26, 0.25, 0.25, 0.24)

    def with_overrides(self, **kwargs) -> "CrashProcessParams":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass
class CrashOutcome:
    """Simulated crash history of every segment.

    Attributes
    ----------
    total_counts:
        4-year crash count per segment.
    year_counts:
        (n_segments, 4) counts per study year.
    structural_counts / background_counts:
        The two regime components (diagnostics; their sum is
        ``total_counts``).
    propensity:
        The latent structural score ``z`` (diagnostics only).
    """

    total_counts: np.ndarray
    year_counts: np.ndarray
    structural_counts: np.ndarray
    background_counts: np.ndarray
    propensity: np.ndarray
    params: CrashProcessParams = field(default_factory=CrashProcessParams)

    @property
    def n_segments(self) -> int:
        return self.total_counts.shape[0]

    @property
    def n_crashes(self) -> int:
        return int(self.total_counts.sum())

    def crash_segment_mask(self) -> np.ndarray:
        return self.total_counts > 0

    def count_histogram(self) -> dict[int, int]:
        """count value → number of segments with that 4-year count."""
        values, freq = np.unique(self.total_counts, return_counts=True)
        return {int(v): int(f) for v, f in zip(values, freq)}


class CrashProcess:
    """Simulates the zero-altered crash process over generated segments."""

    def __init__(self, params: CrashProcessParams | None = None):
        self.params = params or CrashProcessParams()

    # -- latent score -------------------------------------------------
    def propensity(
        self, segments: GeneratedSegments, rng: np.random.Generator
    ) -> np.ndarray:
        """Structural crash propensity z (standardised linear score)."""
        p = self.params
        curv = segments.true_values["curvature"]
        inter = segments.true_values["intersection_density"]
        parts = [
            p.w_deficiency * _standardise(segments.deficiency),
            p.w_exposure * _standardise(segments.exposure),
            p.w_curvature * _standardise(np.log1p(curv)),
            p.w_intersections * _standardise(inter),
        ]
        z = np.sum(parts, axis=0)
        z = _standardise(z)
        if p.z_noise_sd > 0:
            z = z + rng.normal(0.0, p.z_noise_sd, size=z.shape[0])
        return z

    # -- counts -------------------------------------------------------------
    def simulate(
        self, segments: GeneratedSegments, rng: np.random.Generator
    ) -> CrashOutcome:
        """Draw the 4-year crash history for every segment."""
        p = self.params
        n = segments.n_segments
        z = self.propensity(segments, rng)

        # Structural regime: hurdle, then shifted negative binomial.
        hurdle_prob = _sigmoid(p.hurdle_intercept + p.hurdle_slope * z)
        active = rng.random(n) < hurdle_prob
        mu = np.exp(p.count_log_mean + p.count_z_gain * z)
        # Gamma-Poisson mixture == negative binomial with mean mu,
        # shape count_dispersion.
        lam = rng.gamma(
            shape=p.count_dispersion, scale=mu / p.count_dispersion, size=n
        )
        structural = np.where(active, p.count_offset + rng.poisson(lam), 0)

        # Background regime: thin gamma-mixed Poisson tied to exposure
        # only.  The gamma mixing gives a small population of "unlucky"
        # good roads with several behavioural crashes.
        exposure_mult = np.exp(
            p.background_exposure_gain * _standardise(segments.exposure)
        )
        bg_mean = p.background_rate * exposure_mult
        bg_lam = rng.gamma(
            shape=p.background_dispersion,
            scale=bg_mean / p.background_dispersion,
            size=n,
        )
        background = rng.poisson(bg_lam)

        total = structural + background
        year_counts = self._split_years(total, rng)
        return CrashOutcome(
            total_counts=total.astype(np.int64),
            year_counts=year_counts,
            structural_counts=structural.astype(np.int64),
            background_counts=background.astype(np.int64),
            propensity=z,
            params=p,
        )

    def _split_years(
        self, total: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        weights = np.asarray(self.params.year_weights, dtype=np.float64)
        if weights.shape != (len(STUDY_YEARS),) or (weights <= 0).any():
            raise ConfigurationError(
                f"year_weights must be {len(STUDY_YEARS)} positive values"
            )
        probs = weights / weights.sum()
        return rng.multinomial(total, probs)

    # -- crash-level attributes -----------------------------------------------
    def crash_attributes(
        self,
        segments: GeneratedSegments,
        outcome: CrashOutcome,
        rng: np.random.Generator,
    ) -> dict[str, list]:
        """Per-crash attributes, expanded to one entry per crash.

        Wet-surface probability rises as skid resistance falls (the
        authors' prior study found differing wet/dry distributions with
        respect to F60); severity is drawn from speed environment.
        """
        f60 = segments.true_values["skid_resistance_f60"]
        speed = segments.true_values["speed_limit"]
        years: list[float] = []
        wet: list[str] = []
        severity: list[str] = []
        for seg_index in range(outcome.n_segments):
            for year_index, year in enumerate(STUDY_YEARS):
                count = int(outcome.year_counts[seg_index, year_index])
                if count == 0:
                    continue
                p_wet = float(np.clip(0.75 - 0.85 * f60[seg_index], 0.05, 0.75))
                sev_high = float(np.clip((speed[seg_index] - 50) / 120, 0.05, 0.5))
                for _ in range(count):
                    years.append(float(year))
                    wet.append("wet" if rng.random() < p_wet else "dry")
                    roll = rng.random()
                    if roll < sev_high:
                        severity.append("hospitalisation_or_fatal")
                    elif roll < sev_high + 0.35:
                        severity.append("medical_treatment")
                    else:
                        severity.append("property_damage")
        return {
            "crash_year": years,
            "surface_condition": wet,
            "severity": severity,
        }


def _standardise(values: np.ndarray) -> np.ndarray:
    sd = values.std()
    if sd == 0:
        return np.zeros_like(values)
    return (values - values.mean()) / sd


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out
