"""Command-line interface.

``repro-study`` exposes the library's main workflows without writing
Python:

* ``generate`` — synthesise a dataset and write its tables as CSV;
* ``study`` — run the three-phase crash-proneness study and print the
  paper-style tables;
* ``calibrate`` — re-derive the crash-process calibration;
* ``train`` — train and save a deployable crash-proneness scorer;
* ``score`` — score a segment CSV with a saved scorer (table, JSON or
  CSV output; ``--bulk`` shards the pass across a process pool);
* ``serve`` — serve a directory of scorers over HTTP (``--routes``
  additionally enables the ``/v1/route/*`` route-risk endpoints,
  ``--profile`` the continuous sampling profiler + ``GET
  /debug/profile``, ``--slo SPEC`` live SLO burn-rate tracking);
* ``profile`` — run a ``study`` or ``score`` workload under the
  sampling profiler and print the hottest stacks (``--out`` writes a
  collapsed flamegraph file);
* ``top`` — watch a live server's windowed request rates, latency
  percentiles and SLO burn rates (``--once`` for scripts);
* ``routes`` — the route-risk subsystem: ``build`` a risk graph,
  ``query`` safest-vs-shortest routes between towns, ``precompute``
  popular pairs into the route store, ``top-risk`` report;
* ``loadtest`` — generate deterministic load against a scoring service
  (self-hosted or ``--url``), report per-endpoint throughput and
  latency percentiles, cross-check client/server request counts, and
  gate the exit code on declarative ``--slo`` specs;
* ``wetdry`` — the stage-1 wet/dry differentiation analysis;
* ``trace`` — inspect ``--trace-out`` span files (waterfall rendering);
* ``lint`` — run the project's static-analysis rules (file rules
  REP001–REP005 plus whole-program concurrency rules REP101–REP104;
  ``--graph`` dumps the call graph + lock model, ``--sarif`` emits
  SARIF, ``--changed`` lints only files touched vs a git ref).

Observability: ``study``, ``score`` and ``serve`` accept
``--trace-out PATH`` (``-`` for stdout) to record every span of the
run as JSON lines — rendered afterwards with ``repro-study trace
show PATH``.  ``serve`` additionally takes ``--access-log PATH|-``
for one structured JSON line per HTTP request.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.core import CrashPronenessStudy
from repro.core.deployment import CrashPronenessScorer
from repro.core.reporting import render_series, render_table
from repro.core.wet_dry import wet_dry_analysis
from repro.datatable import cached_read_csv, read_csv, write_csv
from repro.roads import (
    QDTMRSyntheticGenerator,
    calibrate_crash_process,
    paper_scale_config,
    small_config,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Road crash proneness prediction (EDBT 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a dataset to CSV")
    gen.add_argument("out_dir", type=Path)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--paper-scale", action="store_true")
    gen.add_argument("--segments", type=int, default=6000)

    study = sub.add_parser("study", help="run the three-phase study")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--paper-scale", action="store_true")
    study.add_argument("--segments", type=int, default=6000)
    study.add_argument("--clusters", type=int, default=32)
    study.add_argument("--repeats", type=int, default=1)
    study.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep workers: 1 = serial (default), N = process pool of N, "
        "0 = all cores; results are identical for every value",
    )
    study.add_argument(
        "--timings",
        action="store_true",
        help="print per-stage wall times, task counts and cache stats",
    )
    study.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record spans of the run as JSON lines to PATH "
        "('-' for stdout); inspect with 'repro-study trace show'",
    )

    cal = sub.add_parser("calibrate", help="re-derive the calibration")
    cal.add_argument("--probe", type=int, default=20000)
    cal.add_argument("--iterations", type=int, default=400)

    train = sub.add_parser("train", help="train and save a scorer")
    train.add_argument("model_path", type=Path)
    train.add_argument("--threshold", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--paper-scale", action="store_true")
    train.add_argument("--segments", type=int, default=6000)

    score = sub.add_parser("score", help="score a segment CSV")
    score.add_argument("model_path", type=Path)
    score.add_argument("segments_csv", type=Path)
    score.add_argument("--top", type=int, default=20)
    score.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write every segment's score to this CSV "
        "(rank, segment_id, probability, crash_prone)",
    )
    score.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    score.add_argument(
        "--no-cache",
        action="store_true",
        help="parse the CSV directly instead of using the sidecar "
        ".rpdt binary cache",
    )
    score.add_argument(
        "--bulk",
        action="store_true",
        help="shard the scoring pass across a process pool "
        "(identical output, lower wall clock on big files)",
    )
    score.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="bulk workers: 0 = all cores (default), N = pool of N; "
        "only used with --bulk",
    )
    score.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record spans of the scoring pass as JSON lines to PATH "
        "('-' for stdout)",
    )

    serve = sub.add_parser("serve", help="serve scorers over HTTP")
    serve.add_argument("model_dir", type=Path)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch size cap per model pass",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="how long an open micro-batch waits for more requests",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU result cache capacity in rows (0 disables)",
    )
    serve.add_argument(
        "--bulk-jobs",
        type=int,
        default=1,
        help="worker processes for sharded /v1/score/batch requests "
        "(1 disables sharding, 0 = all cores)",
    )
    serve.add_argument(
        "--bulk-threshold",
        type=int,
        default=2048,
        help="minimum batch rows before a request shards across "
        "the bulk process pool",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="refuse request bodies above this size with HTTP 413 "
        "(0 disables the limit)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record request/engine spans as JSON lines to PATH "
        "('-' for stdout)",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="write one structured JSON line per HTTP request to PATH "
        "('-' for stdout)",
    )
    serve.add_argument(
        "--routes",
        action="store_true",
        help="enable the /v1/route/* route-risk endpoints (builds a "
        "synthetic study network on startup)",
    )
    serve.add_argument(
        "--route-segments",
        type=int,
        default=2000,
        help="segments of the route network (only with --routes)",
    )
    serve.add_argument(
        "--route-seed",
        type=int,
        default=7,
        help="seed of the route network (only with --routes)",
    )
    serve.add_argument(
        "--route-clusters",
        type=int,
        default=8,
        help="spatial hotspot clusters for route risk (only with "
        "--routes; 0 disables hotspot geometry)",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="run the continuous sampling profiler and expose "
        "GET /debug/profile (collapsed flamegraph stacks)",
    )
    serve.add_argument(
        "--profile-hz",
        type=float,
        default=19.0,
        help="profiler sampling rate in Hz (only with --profile)",
    )
    serve.add_argument(
        "--slo",
        action="append",
        type=Path,
        default=[],
        metavar="SPEC",
        help="SLO spec file (JSON; repeatable): track live burn rates "
        "and error budgets, exposed in both /metrics formats",
    )

    profile = sub.add_parser(
        "profile",
        help="capture a sampling profile (collapsed flamegraph) of a run",
    )
    profile_sub = profile.add_subparsers(
        dest="profile_command", required=True
    )

    def _profile_common(p):
        p.add_argument("--hz", type=float, default=19.0,
                       help="sampling rate in Hz")
        p.add_argument("--top", type=int, default=15,
                       help="hottest stacks to print")
        p.add_argument("--out", type=Path, default=None,
                       help="write the full collapsed profile to this "
                       "file (flamegraph.pl / speedscope input)")
        p.add_argument("--span", default=None,
                       help="only keep samples taken under this span "
                       "name (e.g. engine.score_rows)")

    pstudy = profile_sub.add_parser(
        "study", help="profile the three-phase study"
    )
    pstudy.add_argument("--seed", type=int, default=0)
    pstudy.add_argument("--paper-scale", action="store_true")
    pstudy.add_argument("--segments", type=int, default=6000)
    pstudy.add_argument("--clusters", type=int, default=32)
    pstudy.add_argument("--repeats", type=int, default=1)
    pstudy.add_argument("--jobs", type=int, default=1)
    _profile_common(pstudy)

    pscore = profile_sub.add_parser(
        "score", help="profile a scoring pass over a segment CSV"
    )
    pscore.add_argument("model_path", type=Path)
    pscore.add_argument("segments_csv", type=Path)
    pscore.add_argument("--bulk", action="store_true",
                        help="profile the process-sharded bulk path")
    pscore.add_argument("--jobs", type=int, default=0,
                        help="bulk workers (only with --bulk)")
    _profile_common(pscore)

    top = sub.add_parser(
        "top",
        help="live windowed rates of a running server (like top(1))",
    )
    top.add_argument("url", help="server base URL (e.g. http://127.0.0.1:8080)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds (watch mode)")
    top.add_argument("--window", default="1m",
                     choices=("1m", "5m", "1h"),
                     help="which rolling window to show")

    routes = sub.add_parser(
        "routes",
        help="route-risk queries over the scored road network",
    )
    routes_sub = routes.add_subparsers(dest="routes_command", required=True)

    def _routes_common(p, model=True):
        if model:
            p.add_argument("model_path", type=Path,
                           help="saved scorer artefact (repro-study train)")
        p.add_argument("--segments", type=int, default=2000,
                       help="segments of the synthetic study network")
        p.add_argument("--seed", type=int, default=7,
                       help="network seed (same seed, same network)")
        p.add_argument("--clusters", type=int, default=8,
                       help="spatial hotspot clusters (0 disables)")
        p.add_argument("--jobs", type=int, default=1,
                       help="process shards for the segment-scoring pass")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    rb = routes_sub.add_parser(
        "build", help="score the network and report the risk graph"
    )
    _routes_common(rb)

    rq = routes_sub.add_parser(
        "query", help="safest vs shortest route between two towns"
    )
    _routes_common(rq)
    rq.add_argument("origin", help="origin town (e.g. town_003)")
    rq.add_argument("destination", help="destination town")
    rq.add_argument("--alpha", type=float, default=None,
                    help="risk weight in [0,1] (default 0.3)")
    rq.add_argument("--k", type=int, default=3,
                    help="alternative routes to weigh (1-8)")

    rp = routes_sub.add_parser(
        "precompute", help="warm the route store with popular pairs"
    )
    _routes_common(rp)
    rp.add_argument("--pairs", type=int, default=16,
                    help="popular town pairs to precompute")
    rp.add_argument("--alpha", type=float, default=None,
                    help="risk weight in [0,1] (default 0.3)")
    rp.add_argument("--k", type=int, default=3,
                    help="alternative routes per pair (1-8)")

    rt = routes_sub.add_parser(
        "top-risk", help="the network's riskiest routes, worst first"
    )
    _routes_common(rt)
    rt.add_argument("--top", type=int, default=10,
                    help="how many routes to report")

    load = sub.add_parser(
        "loadtest",
        help="load-test a scoring service and gate on SLOs",
    )
    load.add_argument(
        "model_dir",
        type=Path,
        nargs="?",
        default=None,
        help="model directory to self-host (omit with --url)",
    )
    load.add_argument(
        "--url",
        default=None,
        help="target an already-running service instead of self-hosting",
    )
    load.add_argument(
        "--profile",
        default="mixed",
        help="workload mix: mixed | score | batch | browse | routes",
    )
    load.add_argument("--duration", type=float, default=5.0,
                      help="measured window in seconds")
    load.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="open-loop offered load in req/s (0 = closed loop)",
    )
    load.add_argument(
        "--arrival",
        choices=("fixed", "poisson"),
        default="poisson",
        help="open-loop arrival process (only used with --rate)",
    )
    load.add_argument("--clients", type=int, default=4,
                      help="concurrent keep-alive connections")
    load.add_argument("--warmup", type=float, default=1.0,
                      help="warmup seconds before the measured window")
    load.add_argument("--seed", type=int, default=7,
                      help="workload-schedule seed (same seed, same requests)")
    load.add_argument("--model", default=None,
                      help="model name to score against (default: the only one)")
    load.add_argument("--batch-size", type=int, default=16,
                      help="rows per /v1/score/batch request")
    load.add_argument("--segments", type=int, default=2000,
                      help="synthetic segments to draw payload rows from")
    load.add_argument(
        "--slo",
        action="append",
        type=Path,
        default=[],
        metavar="SPEC",
        help="SLO spec file (JSON; repeatable); any violation exits 1",
    )
    load.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")
    load.add_argument("--slowest", type=int, default=5,
                      help="how many slowest requests to report")
    load.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the self-hosted server's spans as JSON lines "
        "('-' for stdout; ignored with --url)",
    )
    load.add_argument(
        "--sanitize-locks",
        action="store_true",
        help="wrap the self-hosted run in the runtime lock-order "
        "sanitizer and cross-check the static lock model; any observed "
        "cycle or model gap fails the run (ignored with --url)",
    )

    wet = sub.add_parser("wetdry", help="wet/dry crash differentiation")
    wet.add_argument("--seed", type=int, default=0)
    wet.add_argument("--segments", type=int, default=6000)

    trace = sub.add_parser("trace", help="inspect --trace-out span files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    show = trace_sub.add_parser(
        "show", help="render a trace file as per-trace waterfalls"
    )
    show.add_argument("trace_file", type=Path)
    show.add_argument(
        "--width",
        type=int,
        default=32,
        help="bar width of the waterfall rendering",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project static-analysis rules (REP001-REP005)",
    )
    add_lint_arguments(lint)
    return parser


@contextmanager
def _cli_tracer(trace_out: str | None):
    """Activate tracing for one CLI run when ``--trace-out`` was given.

    Installs an enabled tracer (streaming to a JSON-lines sink) as the
    process-wide default, so every instrumentation site in the library
    records into it — including threads the command spawns.  Restores
    the previous default and closes the sink afterwards.
    """
    if trace_out is None:
        yield None
        return
    from repro.obs import JsonlSpanSink, Tracer, set_default_tracer

    sink = JsonlSpanSink(trace_out)
    tracer = Tracer(enabled=True, sink=sink)
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)
        n_spans = sink.n_spans
        sink.close()
        if str(trace_out) != "-":
            print(
                f"wrote {n_spans} spans -> {trace_out}", file=sys.stderr
            )


def _make_dataset(args):
    if getattr(args, "paper_scale", False):
        config = paper_scale_config()
    else:
        config = small_config(n_segments=args.segments, n_towns=18)
    return QDTMRSyntheticGenerator(config).generate(seed=args.seed)


def _cmd_generate(args) -> int:
    dataset = _make_dataset(args)
    args.out_dir.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.segment_table, args.out_dir / "segments.csv")
    write_csv(dataset.crash_instances, args.out_dir / "crash_instances.csv")
    write_csv(
        dataset.no_crash_instances, args.out_dir / "no_crash_instances.csv"
    )
    print(
        f"wrote {dataset.segment_table.n_rows} segments, "
        f"{dataset.n_crash_instances} crash instances and "
        f"{dataset.n_no_crash_instances} no-crash instances "
        f"to {args.out_dir}/"
    )
    return 0


def _cmd_study(args) -> int:
    dataset = _make_dataset(args)
    study = CrashPronenessStudy(
        dataset, seed=args.seed, repeats=args.repeats
    )
    with _cli_tracer(args.trace_out):
        report = study.run_full_study(
            n_clusters=args.clusters, n_jobs=args.jobs
        )
    for phase, label in ((report.phase1, "Phase 1"), (report.phase2, "Phase 2")):
        print(render_table(
            ["Target", "R2", "NPV", "PPV", "MCPV", "misclass", "leaves"],
            [
                [
                    f"> {r.threshold}",
                    r.r_squared,
                    r.npv,
                    r.ppv,
                    r.mcpv,
                    f"{100 * r.misclassification_rate:.1f}%",
                    r.decision_leaves,
                ]
                for r in phase.results
            ],
            title=f"{label} tree models",
        ))
        print()
    print(render_series(
        {
            "bayes MCPV": {
                r.threshold: r.assessment.mcpv for r in report.bayes
            },
            "bayes Kappa": {
                r.threshold: r.assessment.kappa for r in report.bayes
            },
        },
        x_label="threshold",
        title="Naive Bayes sweep (10-fold CV)",
    ))
    print()
    print(report.selection.describe())
    clustering = report.clustering
    print(
        f"phase 3: {clustering.n_very_low_crash_clusters} very-low-crash "
        f"clusters of {clustering.n_clusters}; ANOVA "
        f"p={clustering.anova.p_value:.3g}"
    )
    if args.timings and report.timings is not None:
        print()
        print(report.timings.render())
    return 0


def _cmd_calibrate(args) -> int:
    report = calibrate_crash_process(
        n_probe=args.probe,
        max_iterations=args.iterations,
        free_parameters=(
            "hurdle_intercept",
            "count_log_mean",
            "count_dispersion",
        ),
    )
    print("\n".join(report.summary_lines()))
    return 0


def _cmd_train(args) -> int:
    dataset = _make_dataset(args)
    scorer = CrashPronenessScorer.train(
        dataset.crash_instances,
        threshold=args.threshold,
        seed=args.seed,
        metadata={"source": "synthetic", "segments": dataset.segment_table.n_rows},
    )
    scorer.save(args.model_path)
    print(f"saved {scorer.describe()} -> {args.model_path}")
    return 0


def _cmd_score(args) -> int:
    scorer = CrashPronenessScorer.load(args.model_path)
    # The sidecar binary cache makes repeated scoring runs over the
    # same extract skip the CSV parse (mmap load, checksum-invalidated).
    if args.no_cache:
        table = read_csv(args.segments_csv)
    else:
        table = cached_read_csv(args.segments_csv)
    with _cli_tracer(args.trace_out):
        if args.bulk:
            from repro.serving.bulk import score_table_sharded

            probabilities = score_table_sharded(
                scorer, table, n_jobs=args.jobs
            )
        else:
            probabilities = scorer.score(table)
    ranked_all = scorer.treatment_list(table, probabilities=probabilities)
    ranked = ranked_all[: args.top] if args.top is not None else ranked_all
    if args.out is not None:
        from repro.datatable import DataTable

        write_csv(
            DataTable.from_columns(
                {
                    "rank": [s.rank for s in ranked_all],
                    "segment_id": [s.segment_id for s in ranked_all],
                    "probability": [s.probability for s in ranked_all],
                    "crash_prone": [int(s.crash_prone) for s in ranked_all],
                }
            ),
            args.out,
        )
        print(
            f"wrote {len(ranked_all)} scored segments -> {args.out}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(
            {
                "model": scorer.describe(),
                "threshold": scorer.threshold,
                "n_segments": table.n_rows,
                "expected_prone_km": float(probabilities.sum()),
                "results": [
                    {
                        "rank": s.rank,
                        "segment_id": s.segment_id,
                        "probability": s.probability,
                        "crash_prone": s.crash_prone,
                    }
                    for s in ranked
                ],
            },
            indent=2,
        ))
        return 0
    print(scorer.describe())
    print(render_table(
        ["rank", "segment_id", "P(crash prone)", "flag"],
        [
            [s.rank, s.segment_id, s.probability, "PRONE" if s.crash_prone else ""]
            for s in ranked
        ],
        title=f"Top {len(ranked)} treatment candidates",
    ))
    print(
        f"expected crash-prone km across the file: "
        f"{probabilities.sum():.0f}"
    )
    return 0


def _route_planner(segments: int, seed: int, clusters: int, n_jobs: int = 1):
    """A RoutePlanner over a freshly generated synthetic network."""
    from repro.routing import RoutePlanner

    config = small_config(n_segments=segments, n_towns=18)
    dataset = QDTMRSyntheticGenerator(config).generate(seed=seed)
    return RoutePlanner(dataset, n_clusters=clusters, n_jobs=n_jobs)


def _cmd_serve(args) -> int:
    from repro.serving import ScoringService

    route_planner = None
    if args.routes:
        route_planner = _route_planner(
            args.route_segments, args.route_seed, args.route_clusters
        )
    burn_engine = None
    if args.slo:
        from repro.obs import SLOBurnEngine

        burn_engine = SLOBurnEngine.from_paths(args.slo)
    with _cli_tracer(args.trace_out) as tracer:
        profiler = None
        if args.profile:
            from repro.obs import SamplingProfiler, Tracer

            # The profiler attributes samples to the tracer the service
            # runs under; without --trace-out, attach to an enabled
            # tracer anyway so span attribution works.
            if tracer is None:
                tracer = Tracer(enabled=True)
            profiler = SamplingProfiler(hz=args.profile_hz, tracer=tracer)
            profiler.start()
        service = ScoringService(
            args.model_dir,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            cache_size=args.cache_size,
            bulk_jobs=args.bulk_jobs,
            bulk_threshold=args.bulk_threshold,
            max_body_bytes=args.max_body_bytes,
            tracer=tracer,
            access_log=args.access_log,
            route_planner=route_planner,
            burn_engine=burn_engine,
            profiler=profiler,
        )
        names = ", ".join(service.registry.names()) or "none"
        print(f"serving {len(service.registry)} scorer(s) [{names}]")
        print(f"listening on http://{args.host}:{args.port}")
        endpoints = (
            "endpoints: GET /healthz | GET /models | "
            "GET /metrics[?format=prometheus] | "
            "POST /v1/score | POST /v1/score/batch"
        )
        if profiler is not None:
            endpoints += " | GET /debug/profile[?format=json]"
            print(
                f"profiling: sampling every thread at "
                f"{args.profile_hz:g} Hz"
            )
        if burn_engine is not None:
            print(
                "slo tracking: "
                + ", ".join(burn_engine.spec_names)
            )
        if route_planner is not None:
            endpoints += (
                " | GET /v1/route/towns | POST /v1/route/score | "
                "POST /v1/route/safest"
            )
            stats = route_planner.stats()
            print(
                f"routing: {stats['towns']} towns, {stats['routes']} "
                f"routes, {stats['clusters']} hotspot clusters "
                f"(seed {args.route_seed})"
            )
        print(endpoints)
        try:
            service.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
            print(service.metrics.render())
        finally:
            if profiler is not None:
                profiler.stop()
            service.close()
    return 0


def _cmd_profile(args) -> int:
    """Run a study/score workload under the sampling profiler."""
    from repro.obs import SamplingProfiler, Tracer, set_default_tracer

    tracer = Tracer(enabled=True)
    profiler = SamplingProfiler(hz=args.hz, tracer=tracer)
    previous = set_default_tracer(tracer)
    try:
        with profiler:
            if args.profile_command == "study":
                dataset = _make_dataset(args)
                study = CrashPronenessStudy(
                    dataset, seed=args.seed, repeats=args.repeats
                )
                study.run_full_study(
                    n_clusters=args.clusters, n_jobs=args.jobs
                )
            else:  # score
                scorer = CrashPronenessScorer.load(args.model_path)
                table = cached_read_csv(args.segments_csv)
                if args.bulk:
                    from repro.serving.bulk import score_table_sharded

                    score_table_sharded(scorer, table, n_jobs=args.jobs)
                else:
                    scorer.score(table)
    finally:
        set_default_tracer(previous)
    stats = profiler.stats()
    collapsed = profiler.render_collapsed(args.span)
    if args.out is not None:
        args.out.write_text(
            collapsed + ("\n" if collapsed else ""), encoding="utf-8"
        )
        print(
            f"wrote {len(collapsed.splitlines())} folded stacks -> "
            f"{args.out}",
            file=sys.stderr,
        )
    print(
        f"profiled {stats['elapsed_seconds']:.2f}s at {stats['hz']:g} Hz: "
        f"{stats['samples']} samples, {stats['distinct_stacks']} distinct "
        f"stacks, {stats['dropped_stacks']} dropped"
    )
    span_note = f" under span {args.span!r}" if args.span else ""
    lines = collapsed.splitlines()
    if not lines:
        print(f"no samples captured{span_note}")
        return 0
    print(f"\nhottest stacks{span_note} (self samples, leaf frame):")
    for line in lines[: args.top]:
        stack, _, count = line.rpartition(" ")
        leaf = stack.rsplit(";", 1)[-1]
        print(f"  {int(count):6d}  {leaf}  [{stack.count(';') + 1} frames]")
    span_self = {
        name: n
        for name, n in profiler.self_time_by_span().items()
        if name
    }
    if span_self:
        total = stats["samples"] or 1
        print()
        print(render_table(
            ["span", "self samples", "self seconds", "share"],
            [
                [
                    name,
                    n,
                    f"{n / stats['hz']:.2f}",
                    f"{100.0 * n / total:.1f}%",
                ]
                for name, n in sorted(
                    span_self.items(), key=lambda kv: -kv[1]
                )
            ],
            title="Self time by active span",
        ))
    return 0


def _cmd_top(args) -> int:
    """One-shot or watch view of a live server's windowed rates."""
    import time as time_mod
    import urllib.request

    base = args.url.rstrip("/")

    def snapshot() -> str:
        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            payload = json.loads(resp.read())
        windows = payload.get("windows", {})
        rows = []
        for endpoint in sorted(windows):
            w = windows[endpoint].get(args.window)
            if w is None:
                continue
            def _ms(v):
                return f"{1000.0 * v:.1f}" if v is not None else "-"
            rows.append(
                [
                    endpoint,
                    w["count"],
                    f"{w['rate']:.1f}",
                    f"{100.0 * w['error_rate']:.1f}%",
                    _ms(w["p50"]),
                    _ms(w["p95"]),
                    _ms(w["p99"]),
                    _ms(w["max"]),
                    w["slowest_trace_id"] or "-",
                ]
            )
        if not rows:
            return f"no traffic inside the last {args.window} yet"
        text = render_table(
            ["endpoint", "reqs", "req/s", "err", "p50 ms", "p95 ms",
             "p99 ms", "max ms", "slowest trace"],
            rows,
            title=f"{base} — last {args.window}",
        )
        slo = payload.get("slo")
        if slo and slo.get("rules"):
            burn_lines = ["slo burn rates:"]
            for rule in slo["rules"]:
                burn_lines.append(
                    f"  {rule['slo']}/{rule['rule']} {rule['endpoint']}: "
                    f"fast={rule['fast_burn_rate']:.2f} "
                    f"slow={rule['slow_burn_rate']:.2f} "
                    f"budget_remaining={rule['budget_remaining']:.1%}"
                )
            text += "\n" + "\n".join(burn_lines)
        return text

    if args.once:
        print(snapshot())
        return 0
    try:
        while True:
            print(snapshot())
            print()
            time_mod.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_routes(args) -> int:
    import time

    from repro.core.deployment import payload_checksum

    scorer = CrashPronenessScorer.load(args.model_path)
    payload = scorer.to_dict()
    checksum = payload.get("checksum") or payload_checksum(payload)
    planner = _route_planner(
        args.segments, args.seed, args.clusters, n_jobs=args.jobs
    )

    if args.routes_command == "build":
        t0 = time.perf_counter()
        graph = planner.graph_for(scorer, checksum)
        build_s = time.perf_counter() - t0
        info = dict(graph.describe())
        info["clusters"] = len(planner.clusters)
        info["build_seconds"] = round(build_s, 4)
        if args.json:
            print(json.dumps(info, indent=2))
            return 0
        print(f"risk graph for artefact {checksum[:12]}…")
        for key, value in info.items():
            print(f"  {key}: {value}")
        return 0

    if args.routes_command == "query":
        result = planner.plan_safest(
            scorer,
            checksum,
            args.origin,
            args.destination,
            alpha=args.alpha,
            k=args.k,
        )
        if args.json:
            print(json.dumps(result, indent=2))
            return 0
        safest, shortest = result["safest"], result["shortest"]
        print(
            f"{result['origin']} -> {result['destination']} "
            f"(alpha={result['alpha']}, k={result['k']})"
        )
        for label, plan in (("safest", safest), ("shortest", shortest)):
            print(
                f"  {label:9s} {' -> '.join(plan['towns'])}  "
                f"[{plan['length_km']:.1f} km, "
                f"{plan['expected_crashes']:.2f} expected crashes, "
                f"worst segment {plan['worst_segment_probability']:.3f}, "
                f"{plan['hotspot_crossings']} hotspot crossing(s)]"
            )
        print(
            f"  taking the safest route trades "
            f"{result['extra_length_km']:.1f} extra km for "
            f"{result['risk_reduction']:.2f} fewer expected crashes"
        )
        return 0

    if args.routes_command == "precompute":
        t0 = time.perf_counter()
        n = planner.precompute(
            scorer,
            checksum,
            alpha=args.alpha,
            k=args.k,
            limit=args.pairs,
        )
        elapsed = time.perf_counter() - t0
        stats = planner.stats()["store"]
        print(
            f"precomputed {n} plans for {args.pairs} pairs in "
            f"{elapsed:.2f}s ({n / max(elapsed, 1e-9):.0f} plans/s); "
            f"store holds {stats['entries']} entrie(s)"
        )
        return 0

    # top-risk
    rows = planner.top_risk_routes(scorer, checksum, limit=args.top)
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(render_table(
        ["route", "from", "to", "km", "E[crashes]", "worst", "hotspot"],
        [
            [
                r["route_id"],
                r["from"],
                r["to"],
                f"{r['length_km']:.1f}",
                f"{r['expected_crashes']:.2f}",
                f"{r['worst_segment_probability']:.3f}",
                r["hotspot_segments"],
            ]
            for r in rows
        ],
        title=f"Top {len(rows)} risk routes (artefact {checksum[:12]}…)",
    ))
    return 0


def _loadtest_dataset(args):
    """The deterministic synthetic dataset payloads are drawn from."""
    config = small_config(n_segments=args.segments, n_towns=18)
    return QDTMRSyntheticGenerator(config).generate(seed=args.seed)


def _loadtest_rows(dataset, input_schema) -> list[dict]:
    """Schema-shaped payload rows from a synthetic dataset."""
    table = dataset.segment_table
    expected = list(input_schema)
    n = min(table.n_rows, 512)
    return table.select(expected).to_rows(limit=n)


def _pairs_from_towns(towns: list[dict], limit: int = 32) -> list[tuple[str, str]]:
    """Popular town pairs (by population product) from a towns listing
    — the ``GET /v1/route/towns`` payload or ``RoutePlanner.towns()``."""
    ranked = sorted(
        towns, key=lambda t: (-t["population"], t["town_id"])
    )[:24]
    pairs = [
        (a, b) for i, a in enumerate(ranked) for b in ranked[i + 1:]
    ]
    pairs.sort(
        key=lambda p: (
            -(p[0]["population"] * p[1]["population"]),
            p[0]["town_id"],
            p[1]["town_id"],
        )
    )
    return [(a["name"], b["name"]) for a, b in pairs[:limit]]


def _cmd_loadtest(args) -> int:
    from repro.loadtest import LoadTest, SLOSpec
    from repro.loadtest.profiles import get_profile

    if (args.model_dir is None) == (args.url is None):
        print(
            "loadtest needs exactly one target: a model_dir to "
            "self-host, or --url for a running service",
            file=sys.stderr,
        )
        return 2
    # Load the SLO specs before spending minutes generating load.
    specs = [SLOSpec.load(path) for path in args.slo]
    profile = get_profile(args.profile)
    dataset = _loadtest_dataset(args)

    monitor = None
    sanitizer = None
    if args.sanitize_locks and args.model_dir is None:
        print(
            "--sanitize-locks is ignored with --url: the sanitizer can "
            "only instrument a self-hosted service",
            file=sys.stderr,
        )
    if args.sanitize_locks and args.model_dir is not None:
        from repro.analysis import sanitize_locks

        # Enter before the service is constructed so every lock the
        # serving stack creates is instrumented from birth.
        sanitizer = sanitize_locks(strict=True)
        monitor = sanitizer.__enter__()
    service = None
    pairs = None
    try:
        if args.model_dir is not None:
            from repro.obs import JsonlSpanSink, Tracer
            from repro.serving import ScoringService

            route_planner = None
            if profile.needs_pairs():
                # Route traffic against a self-hosted service: enable
                # routing over the same dataset the payload rows come
                # from (same --seed/--segments).
                from repro.routing import RoutePlanner

                route_planner = RoutePlanner(dataset)
                pairs = _pairs_from_towns(route_planner.towns())
            sink = (
                JsonlSpanSink(args.trace_out)
                if args.trace_out is not None
                else None
            )
            tracer = Tracer(enabled=True, sink=sink)
            burn_engine = None
            if specs:
                from repro.obs import SLOBurnEngine

                # Self-hosted targets track the same SLOs server-side,
                # so the report's burn-rate block mirrors --slo gating.
                burn_engine = SLOBurnEngine(specs)
            service = ScoringService(
                args.model_dir,
                port=0,
                tracer=tracer,
                route_planner=route_planner,
                burn_engine=burn_engine,
            ).start()
            url = service.url
            names = service.registry.names()
            entry = service.registry.get(
                args.model if args.model is not None else
                (names[0] if names else "<empty>")
            )
            input_schema = entry.scorer.input_schema()
            print(
                f"self-hosting {len(service.registry)} scorer(s) "
                f"at {url}",
                file=sys.stderr,
            )
        else:
            import urllib.request

            url = args.url
            with urllib.request.urlopen(
                url.rstrip("/") + "/models", timeout=10
            ) as response:
                models = json.loads(response.read())["models"]
            by_name = {m["name"]: m for m in models}
            name = args.model or (
                models[0]["name"] if len(models) == 1 else None
            )
            if name is None or name not in by_name:
                available = ", ".join(sorted(by_name)) or "none"
                print(
                    f"pick a --model (available: {available})",
                    file=sys.stderr,
                )
                return 2
            input_schema = by_name[name]["inputs"]
            if profile.needs_pairs():
                # The target decides its own network; ask it for towns.
                with urllib.request.urlopen(
                    url.rstrip("/") + "/v1/route/towns", timeout=10
                ) as response:
                    towns = json.loads(response.read())["towns"]
                pairs = _pairs_from_towns(towns)

        rows = _loadtest_rows(dataset, input_schema)
        test = LoadTest(
            url,
            rows,
            service=service,
            profile=args.profile,
            clients=args.clients,
            duration=args.duration,
            rate=args.rate,
            arrival=args.arrival,
            warmup=args.warmup,
            seed=args.seed,
            model=args.model,
            batch_size=args.batch_size,
            slowest_k=args.slowest,
            pairs=pairs,
        )
        report = test.run()
    finally:
        if service is not None:
            service.close()
            if args.trace_out is not None:
                n_spans = service.tracer.sink.n_spans
                service.tracer.sink.close()
                if str(args.trace_out) != "-":
                    print(
                        f"wrote {n_spans} spans -> {args.trace_out}",
                        file=sys.stderr,
                    )
        if sanitizer is not None:
            sanitizer.__exit__(None, None, None)

    sanitizer_problems: list[str] = []
    if monitor is not None:
        print(monitor.summary(), file=sys.stderr)
        sanitizer_problems = list(monitor.violations)
        if Path("src/repro").is_dir():
            from repro.analysis import build_project, model_gaps

            _contexts, _graph, lock_model = build_project(["src"])
            sanitizer_problems.extend(model_gaps(monitor, lock_model))
        for problem in sanitizer_problems:
            print(f"SANITIZER: {problem}", file=sys.stderr)

    violations = []
    for spec in specs:
        violations.extend(spec.evaluate(report))
    if args.json:
        payload = report.to_dict()
        payload["slo"] = {
            "specs": [spec.name for spec in specs],
            "violations": [v.describe() for v in violations],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        for violation in violations:
            print(f"SLO VIOLATION: {violation.describe()}")
    if not report.parity_ok:
        print(
            "FAIL: client/server request counts disagree — requests "
            "were lost",
            file=sys.stderr,
        )
        return 1
    if violations:
        print(
            f"FAIL: {len(violations)} SLO violation(s)", file=sys.stderr
        )
        return 1
    if sanitizer_problems:
        print(
            f"FAIL: {len(sanitizer_problems)} lock-sanitizer problem(s)",
            file=sys.stderr,
        )
        return 1
    if monitor is not None:
        print(
            "PASS: lock sanitizer observed no cycles; order graph "
            "consistent with the static model",
            file=sys.stderr,
        )
    if specs:
        print(
            f"PASS: {sum(len(s.rules) for s in specs)} SLO rule(s) held",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import read_spans, render_waterfall

    spans = read_spans(args.trace_file)
    try:
        print(render_waterfall(spans, width=args.width))
    except BrokenPipeError:
        # `trace show ... | head` closing the pipe early is normal use,
        # not an error.  Detach stdout so interpreter shutdown doesn't
        # raise a second time flushing the dead pipe.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_wetdry(args) -> int:
    dataset = _make_dataset(args)
    result = wet_dry_analysis(dataset.crash_instances)
    print(result.describe())
    verdict = (
        "differ" if result.distributions_differ() else "do not differ"
    )
    print(f"\n=> wet and dry crash F60 distributions {verdict}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "study": _cmd_study,
    "calibrate": _cmd_calibrate,
    "train": _cmd_train,
    "score": _cmd_score,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
    "top": _cmd_top,
    "routes": _cmd_routes,
    "loadtest": _cmd_loadtest,
    "wetdry": _cmd_wetdry,
    "trace": _cmd_trace,
    "lint": run_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
