"""repro — reproduction of "Road Crash Proneness Prediction using Data
Mining" (Nayak, Emerson, Weligamage & Piyatrapoomi, EDBT 2011).

Subpackages
-----------
``repro.datatable``
    Columnar table substrate (typed columns, missing-value masks).
``repro.roads``
    Synthetic QDTMR-style road network, segment attributes and the
    zero-altered crash process, calibrated to the paper's Table 1.
``repro.mining``
    From-scratch algorithms: chi-square decision trees, F-test
    regression trees, M5 model trees, naive Bayes, logistic regression,
    neural networks, simple k-means.
``repro.evaluation``
    Table 2 measures (incl. MCPV and Kappa), ROC, validation protocols,
    imbalance handling, ANOVA.
``repro.core``
    The paper's methodology: CP-k threshold datasets, phase 1–3
    orchestration, the MCPV threshold-selection rule, CRISP-DM
    pipeline, and report rendering.
``repro.parallel``
    The sweep-execution engine: serial / process backends with
    per-task seed derivation (parallel output is bit-identical to
    serial), threshold dataset caching and per-stage timings.
``repro.serving``
    The deployment layer: versioned scorer registry with hot reload,
    a validating / micro-batching / caching scoring engine, and a
    concurrent JSON-over-HTTP service with request metrics.
``repro.analysis``
    Project-specific static analysis (``repro-study lint``): AST rules
    for determinism, lock hygiene, numeric safety, exception hygiene
    and resource hygiene, with justified inline suppressions and a
    fingerprint baseline.
``repro.obs``
    Observability: span tracing propagated across the process pool and
    micro-batch queue, JSONL sinks, waterfalls, Prometheus exposition.
``repro.loadtest``
    Deterministic load generation (closed / open loop, workload
    profiles) with declarative SLO gating.
``repro.routing``
    Route-risk serving: the road network lowered into a risk-weighted
    graph, safest-vs-shortest queries, and a precomputed route store
    content-addressed to the scorer artefact.

Quick start
-----------
>>> from repro import QDTMRSyntheticGenerator, CrashPronenessStudy, small_config
>>> dataset = QDTMRSyntheticGenerator(small_config()).generate(seed=0)
>>> report = CrashPronenessStudy(dataset).run_full_study()
>>> report.selection.selected_threshold in (2, 4, 8, 16)
True
"""

from repro.core import (
    CrashPronenessStudy,
    PhaseResult,
    StudyReport,
    ThresholdSelection,
    build_threshold_dataset,
    select_best_threshold,
    table1_rows,
)
from repro.datatable import DataTable
from repro.evaluation import BinaryConfusion, kappa, mcpv
from repro.mining import (
    DecisionTreeClassifier,
    KMeans,
    LogisticRegressionClassifier,
    M5ModelTree,
    NaiveBayesClassifier,
    NeuralNetworkClassifier,
    RegressionTree,
    TreeConfig,
)
from repro.parallel import (
    StageTimings,
    SweepExecutor,
    ThresholdDatasetCache,
)
from repro.roads import (
    QDTMRSyntheticGenerator,
    RoadCrashDataset,
    SyntheticStudyConfig,
    paper_scale_config,
    small_config,
)
from repro.serving import ScorerRegistry, ScoringEngine, ScoringService

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DataTable",
    "QDTMRSyntheticGenerator",
    "RoadCrashDataset",
    "SyntheticStudyConfig",
    "paper_scale_config",
    "small_config",
    "CrashPronenessStudy",
    "StudyReport",
    "PhaseResult",
    "ThresholdSelection",
    "build_threshold_dataset",
    "select_best_threshold",
    "table1_rows",
    "DecisionTreeClassifier",
    "RegressionTree",
    "M5ModelTree",
    "TreeConfig",
    "NaiveBayesClassifier",
    "LogisticRegressionClassifier",
    "NeuralNetworkClassifier",
    "KMeans",
    "BinaryConfusion",
    "mcpv",
    "kappa",
    "SweepExecutor",
    "ThresholdDatasetCache",
    "StageTimings",
    "ScorerRegistry",
    "ScoringEngine",
    "ScoringService",
]
