"""Simple k-means clustering.

Phase 3 of the paper: "deploying clustering using the optimal model of
eight crashes per road segment ... used simple k-means as the method,
configured to provide 32 clusters."  Lloyd's algorithm with k-means++
seeding over the standardised :class:`MatrixEncoder` encoding; empty
clusters are re-seeded from the points farthest from their centroids.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import ConfigurationError, FitError, NotFittedError
from repro.mining.features import FeatureSet
from repro.mining.preprocessing import MatrixEncoder

__all__ = ["KMeans"]


class KMeans:
    """Simple k-means over a modelling table.

    Unlike the supervised models, k-means does not take a target; call
    :meth:`fit` with the table and (optionally) the columns to cluster
    on.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the paper used 32).
    max_iterations / tolerance:
        Lloyd iteration limits (centroid shift under ``tolerance``
        stops early).
    n_init:
        Independent k-means++ restarts; the lowest-inertia run wins.
    seed:
        Seeding randomness; fitting is deterministic given it.
    """

    def __init__(
        self,
        n_clusters: int = 32,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        n_init: int = 3,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ConfigurationError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.n_init = n_init
        self.seed = seed
        self._encoder: MatrixEncoder | None = None
        self._input_names: list[str] | None = None
        self._vocabularies: dict[str, tuple[str, ...]] = {}
        self.centroids: np.ndarray | None = None
        self.inertia: float = float("nan")
        self.n_iterations = 0

    # -- fitting ---------------------------------------------------------
    def fit(
        self,
        table: DataTable,
        include: list[str] | None = None,
    ) -> "KMeans":
        """Cluster the table rows; returns self."""
        features = self._feature_set(table, include)
        self._input_names = features.input_names
        self._vocabularies = features.vocabularies()
        self._encoder = MatrixEncoder(standardise=True).fit(features)
        x = self._encoder.transform(features)
        if x.shape[0] < self.n_clusters:
            raise FitError(
                f"cannot form {self.n_clusters} clusters from "
                f"{x.shape[0]} rows"
            )
        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        best_centroids: np.ndarray | None = None
        best_iterations = 0
        for _restart in range(self.n_init):
            centroids, inertia, iterations = self._lloyd(x, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_centroids = centroids
                best_iterations = iterations
        assert best_centroids is not None
        self.centroids = best_centroids
        self.inertia = float(best_inertia)
        self.n_iterations = best_iterations
        return self

    @staticmethod
    def _feature_set(
        table: DataTable, include: list[str] | None
    ) -> FeatureSet:
        # Reuse FeatureSet's input resolution by giving it a throwaway
        # constant "target" that is excluded from the inputs.
        from repro.datatable import NumericColumn

        dummy_name = "__kmeans_dummy_target__"
        augmented = table.with_column(
            NumericColumn.from_array(dummy_name, np.zeros(table.n_rows))
        )
        return FeatureSet(augmented, dummy_name, include)

    def _kmeanspp(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = x.shape[0]
        centroids = np.empty((self.n_clusters, x.shape[1]))
        first = int(rng.integers(n))
        centroids[0] = x[first]
        closest_sq = ((x - centroids[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0:
                centroids[k:] = x[rng.integers(n, size=self.n_clusters - k)]
                break
            probs = closest_sq / total
            pick = int(rng.choice(n, p=probs))
            centroids[k] = x[pick]
            dist_sq = ((x - centroids[k]) ** 2).sum(axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
        return centroids

    def _lloyd(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float, int]:
        centroids = self._kmeanspp(x, rng)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = _pairwise_sq(x, centroids)
            assignment = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = assignment == k
                if members.any():
                    new_centroids[k] = x[members].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = int(distances.min(axis=1).argmax())
                    new_centroids[k] = x[worst]
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tolerance:
                break
        distances = _pairwise_sq(x, centroids)
        inertia = float(distances.min(axis=1).sum())
        return centroids, inertia, iterations

    # -- assignment ----------------------------------------------------------
    def predict(self, table: DataTable) -> np.ndarray:
        """Cluster index per row."""
        if self.centroids is None:
            raise NotFittedError("KMeans")
        assert self._encoder is not None and self._input_names is not None
        features = self._feature_set(table, self._input_names)
        features = features.aligned_to(self._vocabularies)
        x = self._encoder.transform(features)
        return _pairwise_sq(x, self.centroids).argmin(axis=1)

    def fit_predict(
        self, table: DataTable, include: list[str] | None = None
    ) -> np.ndarray:
        return self.fit(table, include).predict(table)

    def cluster_sizes(self, assignment: np.ndarray) -> np.ndarray:
        return np.bincount(assignment, minlength=self.n_clusters)


def _pairwise_sq(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n_rows, n_clusters)."""
    x_sq = (x**2).sum(axis=1, keepdims=True)
    c_sq = (centroids**2).sum(axis=1)
    cross = x @ centroids.T
    return np.maximum(x_sq - 2 * cross + c_sq, 0.0)
