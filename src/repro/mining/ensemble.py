"""Bagged tree ensembles.

The paper deliberately avoided "high performance methods such as
cross-validation, boosting, bagging and so on" because they obscure the
raw model quality that the threshold sweep reads.  This module
implements the option they declined — bootstrap-aggregated chi-square
trees with out-of-bag scoring — so the ablation bench can quantify what
bagging would have changed (and verify that the *threshold story* is
what matters, not the ensemble).
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import ConfigurationError, FitError
from repro.mining.base import BinaryClassifier
from repro.mining.features import FeatureSet
from repro.mining.tree.decision_tree import DecisionTreeClassifier
from repro.mining.tree.growth import TreeConfig

__all__ = ["BaggedTreesClassifier"]


class BaggedTreesClassifier(BinaryClassifier):
    """Bootstrap-aggregated chi-square decision trees.

    Parameters
    ----------
    n_estimators:
        Number of bootstrap trees.
    config:
        Growth configuration shared by the member trees.
    seed:
        Bootstrap sampling seed; fitting is deterministic given it.

    Attributes
    ----------
    oob_scores_:
        Out-of-bag probability per training row (NaN for rows that were
        in every bootstrap sample), set by :meth:`fit`.
    """

    def __init__(
        self,
        n_estimators: int = 25,
        config: TreeConfig | None = None,
        seed: int = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ConfigurationError(
                f"n_estimators must be >= 1, got {n_estimators}"
            )
        self.n_estimators = n_estimators
        self.config = config or TreeConfig()
        self.seed = seed
        self.estimators: list[DecisionTreeClassifier] = []
        self.oob_scores_: np.ndarray | None = None

    def _fit(self, features: FeatureSet) -> None:
        y, labels = features.binary_target()
        self.class_labels = labels
        if y.min() == y.max():
            raise FitError("bagging requires both classes in training data")
        n = features.n_rows
        rng = np.random.default_rng(self.seed)
        self.estimators = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        table = features.table
        target = features.target_name
        include = features.input_names
        for _round in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            in_bag = np.zeros(n, dtype=bool)
            in_bag[sample] = True
            boot_table = table.take(sample)
            boot_y = y[sample]
            if boot_y.min() == boot_y.max():
                continue  # degenerate bootstrap; skip this round
            tree = DecisionTreeClassifier(self.config).fit(
                boot_table, target, include=include
            )
            self.estimators.append(tree)
            out = ~in_bag
            if out.any():
                oob_sum[out] += tree.predict_proba(table.take(np.flatnonzero(out)))
                oob_count[out] += 1
        if not self.estimators:
            raise FitError(
                "every bootstrap sample was single-class; cannot bag"
            )
        with np.errstate(invalid="ignore"):
            self.oob_scores_ = np.where(
                oob_count > 0, oob_sum / np.maximum(oob_count, 1), np.nan
            )

    def predict_proba(self, table: DataTable) -> np.ndarray:
        self._require_fitted()
        scores = np.zeros(table.n_rows)
        for tree in self.estimators:
            scores += tree.predict_proba(table)
        return scores / len(self.estimators)

    @property
    def n_fitted_estimators(self) -> int:
        self._require_fitted()
        return len(self.estimators)

    def mean_leaves(self) -> float:
        """Average member-tree size (the interpretability cost)."""
        self._require_fitted()
        return float(
            np.mean([tree.n_leaves for tree in self.estimators])
        )
