"""From-scratch data-mining algorithms used by the study.

Production models: chi-square decision trees and F-test regression
trees.  Supporting models: naive Bayes, logistic regression, neural
network, M5 model tree.  Phase 3: simple k-means.
"""

from repro.mining.base import BinaryClassifier, Model, Regressor
from repro.mining.ensemble import BaggedTreesClassifier
from repro.mining.features import Feature, FeatureSet
from repro.mining.kmeans import KMeans
from repro.mining.logistic import LogisticRegressionClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.neural import NeuralNetworkClassifier
from repro.mining.preprocessing import (
    EqualFrequencyDiscretiser,
    MatrixEncoder,
    standardise_matrix,
)
from repro.mining.tree import (
    DecisionTreeClassifier,
    M5ModelTree,
    RegressionTree,
    TreeConfig,
    extract_rules,
    format_rules,
)

__all__ = [
    "Model",
    "BinaryClassifier",
    "Regressor",
    "Feature",
    "FeatureSet",
    "MatrixEncoder",
    "EqualFrequencyDiscretiser",
    "standardise_matrix",
    "DecisionTreeClassifier",
    "RegressionTree",
    "M5ModelTree",
    "TreeConfig",
    "extract_rules",
    "format_rules",
    "NaiveBayesClassifier",
    "LogisticRegressionClassifier",
    "NeuralNetworkClassifier",
    "BaggedTreesClassifier",
    "KMeans",
]
