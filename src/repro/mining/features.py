"""Feature-view extraction from :class:`~repro.datatable.DataTable`.

Tree models consume columns natively (numeric thresholds, categorical
branches, missing as its own branch); matrix models (naive Bayes,
logistic regression, neural networks, k-means) consume an encoded
numeric matrix.  :class:`FeatureSet` is the shared first step: it
resolves which columns are model inputs and exposes them with their
measurement level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import (
    CategoricalColumn,
    DataTable,
    NumericColumn,
)
from repro.exceptions import FitError, MissingColumnError, SchemaError

__all__ = ["Feature", "FeatureSet"]

#: Columns never used as model inputs even without a schema.
_DEFAULT_EXCLUDED = frozenset(
    {"segment_id", "segment_crash_count", "crash_year"}
)


@dataclass(frozen=True)
class Feature:
    """One model input: name + kind + the column payload."""

    name: str
    is_numeric: bool
    values: np.ndarray
    """float64 values for numeric features; int64 codes for categorical."""
    labels: tuple[str, ...] = ()

    @property
    def n_levels(self) -> int:
        if self.is_numeric:
            raise SchemaError(f"numeric feature {self.name!r} has no levels")
        return len(self.labels)

    def missing_mask(self) -> np.ndarray:
        if self.is_numeric:
            return np.isnan(self.values)
        return self.values == -1


class FeatureSet:
    """The resolved inputs (X) and target (y) of one modelling table.

    Parameters
    ----------
    table:
        Source data.
    target:
        Target column name.  Must exist; may be numeric (regression /
        interval targets) or categorical (classification).
    include:
        Explicit list of input column names.  Default: the table
        schema's INPUT columns if a schema is attached, else every
        column except the target and the well-known bookkeeping columns
        (segment id, raw crash count, crash year).
    """

    def __init__(
        self,
        table: DataTable,
        target: str,
        include: list[str] | None = None,
    ):
        if table.n_rows == 0:
            raise FitError("cannot build features from an empty table")
        if target not in table:
            raise MissingColumnError(target, tuple(table.column_names))
        names = self._resolve_inputs(table, target, include)
        if not names:
            raise FitError("no input columns resolved for modelling")
        self.table = table
        self.target_name = target
        self.features: list[Feature] = []
        for name in names:
            col = table.column(name)
            if isinstance(col, NumericColumn):
                self.features.append(Feature(name, True, col.values))
            else:
                assert isinstance(col, CategoricalColumn)
                self.features.append(
                    Feature(name, False, col.codes, col.labels)
                )
        self._target_column = table.column(target)

    @staticmethod
    def _resolve_inputs(
        table: DataTable, target: str, include: list[str] | None
    ) -> list[str]:
        if include is not None:
            for name in include:
                if name not in table:
                    raise MissingColumnError(name, tuple(table.column_names))
            if target in include:
                raise SchemaError(
                    f"target {target!r} cannot also be an input"
                )
            return list(include)
        if table.schema is not None:
            names = [
                n
                for n in table.schema.input_names()
                if n != target and n in table
            ]
            if names:
                return names
        return [
            n
            for n in table.column_names
            if n != target and n not in _DEFAULT_EXCLUDED
        ]

    # -- target views -----------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @property
    def n_features(self) -> int:
        return len(self.features)

    @property
    def input_names(self) -> list[str]:
        return [f.name for f in self.features]

    def binary_target(self) -> tuple[np.ndarray, tuple[str, str]]:
        """Target as 0/1 ints plus the (negative, positive) label pair.

        Categorical targets must have exactly two observed levels;
        numeric targets must contain only the values {0, 1}.
        """
        col = self._target_column
        if isinstance(col, CategoricalColumn):
            present = [
                label
                for code, label in enumerate(col.labels)
                if (col.codes == code).any()
            ]
            if len(present) != 2:
                raise FitError(
                    f"binary target {self.target_name!r} has "
                    f"{len(present)} observed levels: {present}"
                )
            if col.missing_mask().any():
                raise FitError(
                    f"target {self.target_name!r} contains missing values"
                )
            negative, positive = present
            y = (col.codes == col.labels.index(positive)).astype(np.int64)
            return y, (negative, positive)
        values = col.values
        if np.isnan(values).any():
            raise FitError(
                f"target {self.target_name!r} contains missing values"
            )
        uniques = np.unique(values)
        if not np.isin(uniques, (0.0, 1.0)).all() or uniques.size != 2:
            raise FitError(
                f"numeric binary target {self.target_name!r} must take "
                f"exactly the values 0 and 1, found {uniques[:5]}"
            )
        return values.astype(np.int64), ("0", "1")

    def interval_target(self) -> np.ndarray:
        """Target as float values (binary targets coerce to 0.0 / 1.0).

        This is the paper's "target configured as interval" pathway for
        regression trees.
        """
        col = self._target_column
        if isinstance(col, NumericColumn):
            if np.isnan(col.values).any():
                raise FitError(
                    f"target {self.target_name!r} contains missing values"
                )
            return col.values.astype(np.float64)
        y, _labels = self.binary_target()
        return y.astype(np.float64)

    def subset(self, indices: np.ndarray) -> "FeatureSet":
        """FeatureSet over a row subset (shares column resolution)."""
        return FeatureSet(
            self.table.take(indices), self.target_name, self.input_names
        )

    # -- vocabulary alignment ----------------------------------------------
    def vocabularies(self) -> dict[str, tuple[str, ...]]:
        """name → label tuple for every categorical feature."""
        return {
            f.name: f.labels for f in self.features if not f.is_numeric
        }

    def aligned_to(
        self, vocabularies: dict[str, tuple[str, ...]]
    ) -> "FeatureSet":
        """Remap categorical codes into another table's vocabularies.

        Categorical codes are table-local; a model fitted on one table
        must translate another table's codes into its own vocabulary
        before comparing against stored split groups.  Labels unseen at
        fit time get an out-of-range code (``len(labels)``): they are
        neither a known level nor missing, so trees route them to the
        largest branch and matrix encoders emit an all-zero block.
        """
        aligned = FeatureSet.__new__(FeatureSet)
        aligned.table = self.table
        aligned.target_name = self.target_name
        aligned._target_column = self._target_column
        aligned.features = []
        for feature in self.features:
            target_labels = vocabularies.get(feature.name)
            if (
                feature.is_numeric
                or target_labels is None
                or target_labels == feature.labels
            ):
                aligned.features.append(feature)
                continue
            if not feature.labels:
                # Every value is missing: the local vocabulary is empty,
                # so there is nothing to remap — only the label tuple
                # needs to switch to the target's.
                aligned.features.append(
                    Feature(feature.name, False, feature.values, target_labels)
                )
                continue
            index = {label: code for code, label in enumerate(target_labels)}
            unseen = len(target_labels)
            remap = np.array(
                [index.get(label, unseen) for label in feature.labels],
                dtype=np.int64,
            )
            codes = feature.values
            new_codes = np.where(
                codes == -1, -1, remap[np.clip(codes, 0, None)]
            )
            aligned.features.append(
                Feature(feature.name, False, new_codes, target_labels)
            )
        return aligned
