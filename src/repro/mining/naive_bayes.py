"""Naive Bayes classifier (Gaussian + categorical likelihoods).

One of the paper's supporting models (Table 5): WEKA-style naive Bayes
with Gaussian likelihoods for interval attributes and Laplace-smoothed
multinomial likelihoods for nominal attributes.  Missing values are
simply skipped in both training and scoring — the naive-Bayes
equivalent of "missing as valid data", and exactly WEKA's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import ConfigurationError, FitError
from repro.mining.base import BinaryClassifier
from repro.mining.features import FeatureSet

__all__ = ["NaiveBayesClassifier"]

_MIN_VARIANCE = 1e-9


@dataclass
class _GaussianLikelihood:
    name: str
    means: np.ndarray      # (2,)
    variances: np.ndarray  # (2,)


@dataclass
class _CategoricalLikelihood:
    name: str
    log_probs: np.ndarray  # (2, n_levels)


class NaiveBayesClassifier(BinaryClassifier):
    """Binary naive Bayes.

    Parameters
    ----------
    laplace:
        Additive smoothing for categorical likelihoods.
    variance_floor:
        Minimum per-class variance for Gaussian likelihoods (guards
        against zero-variance attributes in small or pure classes).
    """

    def __init__(self, laplace: float = 1.0, variance_floor: float = 1e-4):
        super().__init__()
        if laplace <= 0:
            raise ConfigurationError(f"laplace must be positive, got {laplace}")
        self.laplace = laplace
        self.variance_floor = variance_floor
        self._log_priors: np.ndarray | None = None
        self._likelihoods: list[object] = []

    def _fit(self, features: FeatureSet) -> None:
        y, labels = features.binary_target()
        self.class_labels = labels
        counts = np.array([(y == 0).sum(), (y == 1).sum()], dtype=np.float64)
        if (counts == 0).any():
            raise FitError(
                "naive Bayes requires both classes in the training data"
            )
        self._log_priors = np.log(counts / counts.sum())
        self._likelihoods = []
        for feature in features.features:
            if feature.is_numeric:
                self._likelihoods.append(
                    self._fit_gaussian(feature.name, feature.values, y)
                )
            else:
                self._likelihoods.append(
                    self._fit_categorical(
                        feature.name, feature.values, feature.n_levels, y
                    )
                )

    def _fit_gaussian(
        self, name: str, values: np.ndarray, y: np.ndarray
    ) -> _GaussianLikelihood:
        means = np.zeros(2)
        variances = np.ones(2)
        overall = values[~np.isnan(values)]
        overall_mean = float(overall.mean()) if overall.size else 0.0
        for cls in (0, 1):
            x = values[(y == cls) & ~np.isnan(values)]
            if x.size == 0:
                means[cls] = overall_mean
                variances[cls] = 1.0
            else:
                means[cls] = float(x.mean())
                variances[cls] = max(
                    float(x.var()), self.variance_floor, _MIN_VARIANCE
                )
        return _GaussianLikelihood(name, means, variances)

    def _fit_categorical(
        self, name: str, codes: np.ndarray, n_levels: int, y: np.ndarray
    ) -> _CategoricalLikelihood:
        log_probs = np.zeros((2, max(n_levels, 1)))
        for cls in (0, 1):
            mask = (y == cls) & (codes >= 0)
            counts = np.bincount(
                codes[mask], minlength=max(n_levels, 1)
            ).astype(np.float64)
            smoothed = counts + self.laplace
            log_probs[cls] = np.log(smoothed / smoothed.sum())
        return _CategoricalLikelihood(name, log_probs)

    # -- scoring -------------------------------------------------------------
    def predict_proba(self, table: DataTable) -> np.ndarray:
        self._require_fitted()
        assert self._log_priors is not None
        features = self._features_for(table)
        by_name = {f.name: f for f in features.features}
        n = features.n_rows
        log_joint = np.tile(self._log_priors, (n, 1))  # (n, 2)
        for likelihood in self._likelihoods:
            feature = by_name[likelihood.name]
            if isinstance(likelihood, _GaussianLikelihood):
                x = feature.values.astype(np.float64)
                present = ~np.isnan(x)
                for cls in (0, 1):
                    var = likelihood.variances[cls]
                    mean = likelihood.means[cls]
                    contrib = -0.5 * (
                        np.log(2 * np.pi * var)
                        + (x[present] - mean) ** 2 / var
                    )
                    log_joint[present, cls] += contrib
            else:
                codes = feature.values
                valid = (codes >= 0) & (
                    codes < likelihood.log_probs.shape[1]
                )
                rows = np.flatnonzero(valid)
                for cls in (0, 1):
                    log_joint[rows, cls] += likelihood.log_probs[
                        cls, codes[rows]
                    ]
        # Normalise in log space.
        peak = log_joint.max(axis=1, keepdims=True)
        probs = np.exp(log_joint - peak)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]
