"""A single-hidden-layer neural network classifier.

The paper's neural networks are the SAS Enterprise Miner default:
a multilayer perceptron with one hidden layer, trained to a logistic
output.  This implementation uses tanh hidden units, a sigmoid output,
full-batch gradient descent with momentum and a cross-entropy loss —
small, deterministic (seeded) and entirely numpy.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import ConfigurationError, FitError
from repro.mining.base import BinaryClassifier
from repro.mining.features import FeatureSet
from repro.mining.preprocessing import MatrixEncoder

__all__ = ["NeuralNetworkClassifier"]


class NeuralNetworkClassifier(BinaryClassifier):
    """MLP with one tanh hidden layer and a sigmoid output unit.

    Parameters
    ----------
    hidden_units:
        Width of the hidden layer.
    learning_rate / momentum / epochs:
        Full-batch gradient-descent schedule.
    l2:
        Weight decay.
    seed:
        Initial-weight seed; fitting is deterministic given it.
    """

    def __init__(
        self,
        hidden_units: int = 8,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        epochs: int = 300,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        super().__init__()
        if hidden_units < 1:
            raise ConfigurationError(f"hidden_units must be >= 1, got {hidden_units}")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self._encoder: MatrixEncoder | None = None
        self._w1: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._w2: np.ndarray | None = None
        self._b2: float = 0.0
        self.loss_history: list[float] = []

    def _fit(self, features: FeatureSet) -> None:
        y, labels = features.binary_target()
        self.class_labels = labels
        if y.min() == y.max():
            raise FitError("neural network requires both classes to train")
        self._encoder = MatrixEncoder().fit(features)
        x = self._encoder.transform(features)
        target = y.astype(np.float64)
        n, p = x.shape
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(p)
        w1 = rng.normal(0.0, scale, size=(p, self.hidden_units))
        b1 = np.zeros(self.hidden_units)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(self.hidden_units),
                        size=self.hidden_units)
        b2 = 0.0
        v_w1 = np.zeros_like(w1)
        v_b1 = np.zeros_like(b1)
        v_w2 = np.zeros_like(w2)
        v_b2 = 0.0
        self.loss_history = []
        for _epoch in range(self.epochs):
            hidden = np.tanh(x @ w1 + b1)
            logits = hidden @ w2 + b2
            output = _sigmoid(logits)
            eps = 1e-12
            loss = -float(
                np.mean(
                    target * np.log(output + eps)
                    + (1 - target) * np.log(1 - output + eps)
                )
            )
            self.loss_history.append(loss)
            delta_out = (output - target) / n
            grad_w2 = hidden.T @ delta_out + self.l2 * w2
            grad_b2 = float(delta_out.sum())
            delta_hidden = np.outer(delta_out, w2) * (1.0 - hidden**2)
            grad_w1 = x.T @ delta_hidden + self.l2 * w1
            grad_b1 = delta_hidden.sum(axis=0)
            v_w1 = self.momentum * v_w1 - self.learning_rate * grad_w1
            v_b1 = self.momentum * v_b1 - self.learning_rate * grad_b1
            v_w2 = self.momentum * v_w2 - self.learning_rate * grad_w2
            v_b2 = self.momentum * v_b2 - self.learning_rate * grad_b2
            w1 += v_w1
            b1 += v_b1
            w2 += v_w2
            b2 += v_b2
        self._w1, self._b1, self._w2, self._b2 = w1, b1, w2, b2

    def predict_proba(self, table: DataTable) -> np.ndarray:
        self._require_fitted()
        assert self._encoder is not None and self._w1 is not None
        assert self._w2 is not None and self._b1 is not None
        features = self._features_for(table)
        x = self._encoder.transform(features)
        hidden = np.tanh(x @ self._w1 + self._b1)
        return _sigmoid(hidden @ self._w2 + self._b2)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out
