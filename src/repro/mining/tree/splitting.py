"""Split-search statistics for the tree family.

The paper's two production tree configurations are:

* decision trees "using the chi-square test on a Boolean target", and
* regression trees "using the f-test on a target configured as
  interval".

Both tests are implemented here as vectorised scans:

* numeric attributes: every boundary between adjacent distinct sorted
  values is a candidate binary split (capped by quantile thinning);
  the test statistic is computed for all candidates at once from
  cumulative sums;
* nominal attributes: levels start as their own branches and CHAID-style
  greedy merging joins the most similar pair while the pairwise test is
  insignificant;
* missing values are "valid data" (paper, Section 3): rows with a
  missing attribute form their own branch when numerous enough,
  otherwise they are excluded from the test and routed to the largest
  child at prediction time.

Reported p-values are Bonferroni-adjusted by the number of candidate
thresholds examined, the classical CHAID multiplicity correction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "SplitCandidate",
    "best_numeric_split_chi2",
    "best_categorical_split_chi2",
    "best_numeric_split_f",
    "best_categorical_split_f",
    "chi_square_2x2",
    "f_statistic",
]

_EPS = 1e-12


@dataclass(frozen=True)
class SplitCandidate:
    """A fully-evaluated candidate split of one node on one feature.

    Attributes
    ----------
    feature:
        Feature name.
    is_numeric:
        Numeric (threshold) or nominal (grouped levels) split.
    threshold:
        Split point for numeric features (x ≤ threshold goes left).
    groups:
        For nominal features: tuple of tuples of level codes, one inner
        tuple per branch.
    statistic:
        χ² or F value of the test over present rows.
    p_value:
        Bonferroni-adjusted p-value (capped at 1).
    n_candidates:
        How many raw candidates were examined (the adjustment factor).
    has_missing_branch:
        Whether missing rows form their own branch.
    """

    feature: str
    is_numeric: bool
    statistic: float
    p_value: float
    n_candidates: int
    threshold: float | None = None
    groups: tuple[tuple[int, ...], ...] = ()
    has_missing_branch: bool = False


# ---------------------------------------------------------------------------
# elementary statistics
# ---------------------------------------------------------------------------

def chi_square_2x2(
    a: np.ndarray | float,
    b: np.ndarray | float,
    c: np.ndarray | float,
    d: np.ndarray | float,
) -> np.ndarray:
    """Pearson χ² of 2×2 tables [[a, b], [c, d]] (vectorised, no
    continuity correction — matching SAS's tree split search)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    n = a + b + c + d
    num = n * (a * d - b * c) ** 2
    den = (a + b) * (c + d) * (a + c) * (b + d)
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.where(den > 0, num / np.maximum(den, _EPS), 0.0)
    return chi2


def chi_square_table(table: np.ndarray) -> tuple[float, float, int]:
    """Pearson χ², p-value and dof of an r×c contingency table."""
    table = np.asarray(table, dtype=np.float64)
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    total = table.sum()
    if total <= 0:
        return 0.0, 1.0, 1
    expected = row @ col / total
    mask = expected > 0
    chi2 = float((((table - expected) ** 2)[mask] / expected[mask]).sum())
    dof = max(1, (np.count_nonzero(row > 0) - 1) * (np.count_nonzero(col > 0) - 1))
    p = float(stats.chi2.sf(chi2, dof))
    return chi2, p, dof


def f_statistic(
    group_sums: np.ndarray,
    group_counts: np.ndarray,
    total_ss: float,
    total_sum: float,
    total_n: int,
) -> tuple[np.ndarray, int, int]:
    """One-way ANOVA F over groups described by sums/counts.

    ``total_ss`` is Σy², ``total_sum`` is Σy over all rows.  Degrees of
    freedom are (k−1, n−k).  Vectorised over a leading axis of
    candidates when the inputs are 2-D.
    """
    group_sums = np.asarray(group_sums, dtype=np.float64)
    group_counts = np.asarray(group_counts, dtype=np.float64)
    k = group_sums.shape[-1]
    grand_mean_ss = total_sum**2 / max(total_n, 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        between = (
            np.where(group_counts > 0, group_sums**2 / np.maximum(group_counts, _EPS), 0.0)
        ).sum(axis=-1) - grand_mean_ss
    sst = total_ss - grand_mean_ss
    within = np.maximum(sst - between, 0.0)
    df1 = k - 1
    df2 = max(total_n - k, 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        f = (between / max(df1, 1)) / np.maximum(within / df2, _EPS)
    return np.maximum(f, 0.0), df1, df2


def _bonferroni(p: float, n_candidates: int) -> float:
    return float(min(1.0, p * max(n_candidates, 1)))


def _candidate_positions(
    sorted_values: np.ndarray, min_leaf: int, max_candidates: int
) -> np.ndarray:
    """Indices i such that splitting between i and i+1 is admissible.

    Only boundaries between distinct values count, both sides must hold
    at least ``min_leaf`` rows, and the set is thinned to at most
    ``max_candidates`` evenly-spaced positions.
    """
    n = sorted_values.shape[0]
    if n < 2 * min_leaf:
        return np.empty(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
    lo, hi = min_leaf - 1, n - min_leaf - 1
    boundaries = boundaries[(boundaries >= lo) & (boundaries <= hi)]
    if boundaries.size > max_candidates:
        picks = np.linspace(0, boundaries.size - 1, max_candidates).astype(int)
        boundaries = boundaries[np.unique(picks)]
    return boundaries


# ---------------------------------------------------------------------------
# numeric splits
# ---------------------------------------------------------------------------

def best_numeric_split_chi2(
    feature_name: str,
    values: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
    max_candidates: int = 64,
    bonferroni: bool = True,
) -> SplitCandidate | None:
    """Best binary χ² split of a numeric feature on a 0/1 target."""
    present = ~np.isnan(values)
    x = values[present]
    t = y[present]
    if x.shape[0] < 2 * min_leaf:
        return None
    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    t_sorted = t[order]
    positions = _candidate_positions(x_sorted, min_leaf, max_candidates)
    if positions.size == 0:
        return None
    cum_pos = np.cumsum(t_sorted)
    total_pos = int(cum_pos[-1])
    total_n = x_sorted.shape[0]
    left_n = positions + 1
    left_pos = cum_pos[positions]
    a = left_pos                      # left positives
    b = left_n - left_pos             # left negatives
    c = total_pos - left_pos          # right positives
    d = (total_n - left_n) - c        # right negatives
    chi2 = chi_square_2x2(a, b, c, d)
    best = int(np.argmax(chi2))
    statistic = float(chi2[best])
    raw_p = float(stats.chi2.sf(statistic, 1))
    p = _bonferroni(raw_p, positions.size) if bonferroni else raw_p
    threshold = float(
        (x_sorted[positions[best]] + x_sorted[positions[best] + 1]) / 2.0
    )
    n_missing = int((~present).sum())
    return SplitCandidate(
        feature=feature_name,
        is_numeric=True,
        statistic=statistic,
        p_value=p,
        n_candidates=int(positions.size),
        threshold=threshold,
        has_missing_branch=n_missing >= min_leaf,
    )


def best_numeric_split_f(
    feature_name: str,
    values: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
    max_candidates: int = 64,
    bonferroni: bool = True,
) -> SplitCandidate | None:
    """Best binary F-test split of a numeric feature on an interval target."""
    present = ~np.isnan(values)
    x = values[present]
    t = y[present]
    if x.shape[0] < 2 * min_leaf:
        return None
    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    t_sorted = t[order]
    positions = _candidate_positions(x_sorted, min_leaf, max_candidates)
    if positions.size == 0:
        return None
    cum_sum = np.cumsum(t_sorted)
    total_sum = float(cum_sum[-1])
    total_ss = float((t_sorted**2).sum())
    total_n = x_sorted.shape[0]
    left_n = (positions + 1).astype(np.float64)
    left_sum = cum_sum[positions]
    group_sums = np.stack([left_sum, total_sum - left_sum], axis=-1)
    group_counts = np.stack([left_n, total_n - left_n], axis=-1)
    f, df1, df2 = f_statistic(
        group_sums, group_counts, total_ss, total_sum, total_n
    )
    best = int(np.argmax(f))
    statistic = float(f[best])
    raw_p = float(stats.f.sf(statistic, df1, df2))
    p = _bonferroni(raw_p, positions.size) if bonferroni else raw_p
    threshold = float(
        (x_sorted[positions[best]] + x_sorted[positions[best] + 1]) / 2.0
    )
    n_missing = int((~present).sum())
    return SplitCandidate(
        feature=feature_name,
        is_numeric=True,
        statistic=statistic,
        p_value=p,
        n_candidates=int(positions.size),
        threshold=threshold,
        has_missing_branch=n_missing >= min_leaf,
    )


# ---------------------------------------------------------------------------
# categorical splits with CHAID-style level merging
# ---------------------------------------------------------------------------

def _merge_groups_chi2(
    groups: list[list[int]],
    pos: np.ndarray,
    neg: np.ndarray,
    merge_alpha: float,
) -> list[list[int]]:
    """Greedily merge the most similar pair while insignificant."""
    while len(groups) > 2:
        best_pair = None
        best_p = -1.0
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                a = pos[groups[i]].sum()
                b = neg[groups[i]].sum()
                c = pos[groups[j]].sum()
                d = neg[groups[j]].sum()
                chi2 = float(chi_square_2x2(a, b, c, d))
                p = float(stats.chi2.sf(chi2, 1))
                if p > best_p:
                    best_p = p
                    best_pair = (i, j)
        if best_pair is None or best_p < merge_alpha:
            break
        i, j = best_pair
        groups[i] = groups[i] + groups[j]
        del groups[j]
    return groups


def best_categorical_split_chi2(
    feature_name: str,
    codes: np.ndarray,
    n_levels: int,
    y: np.ndarray,
    min_leaf: int,
    merge_alpha: float = 0.10,
    bonferroni: bool = True,
) -> SplitCandidate | None:
    """χ² split of a nominal feature: one branch per merged level group."""
    present = codes >= 0
    c = codes[present]
    t = y[present]
    if c.shape[0] < 2 * min_leaf:
        return None
    pos = np.bincount(c[t == 1], minlength=n_levels).astype(np.float64)
    neg = np.bincount(c[t == 0], minlength=n_levels).astype(np.float64)
    observed = np.flatnonzero(pos + neg > 0)
    if observed.size < 2:
        return None
    groups = _merge_groups_chi2(
        [[int(level)] for level in observed], pos, neg, merge_alpha
    )
    # Fold groups below min_leaf into the largest group.
    sizes = [int((pos[g] + neg[g]).sum()) for g in groups]
    while len(groups) > 2 and min(sizes) < min_leaf:
        small = int(np.argmin(sizes))
        large = int(np.argmax(sizes))
        if small == large:
            break
        groups[large] = groups[large] + groups[small]
        del groups[small]
        sizes = [int((pos[g] + neg[g]).sum()) for g in groups]
    if len(groups) < 2 or min(sizes) < min_leaf:
        return None
    table = np.array(
        [[pos[g].sum(), neg[g].sum()] for g in groups], dtype=np.float64
    )
    chi2, raw_p, _dof = chi_square_table(table)
    n_candidates = max(1, observed.size - 1)
    p = _bonferroni(raw_p, n_candidates) if bonferroni else raw_p
    n_missing = int((~present).sum())
    return SplitCandidate(
        feature=feature_name,
        is_numeric=False,
        statistic=chi2,
        p_value=p,
        n_candidates=n_candidates,
        groups=tuple(tuple(sorted(g)) for g in groups),
        has_missing_branch=n_missing >= min_leaf,
    )


def _merge_groups_f(
    groups: list[list[int]],
    sums: np.ndarray,
    sqsums: np.ndarray,
    counts: np.ndarray,
    merge_alpha: float,
) -> list[list[int]]:
    """Greedy merge of level groups with the least-significant mean gap."""
    while len(groups) > 2:
        best_pair = None
        best_p = -1.0
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                gi, gj = groups[i], groups[j]
                n = counts[gi].sum() + counts[gj].sum()
                s = sums[gi].sum() + sums[gj].sum()
                ss = sqsums[gi].sum() + sqsums[gj].sum()
                f, df1, df2 = f_statistic(
                    np.array([sums[gi].sum(), sums[gj].sum()]),
                    np.array([counts[gi].sum(), counts[gj].sum()]),
                    float(ss),
                    float(s),
                    int(n),
                )
                p = float(stats.f.sf(float(f), df1, df2))
                if p > best_p:
                    best_p = p
                    best_pair = (i, j)
        if best_pair is None or best_p < merge_alpha:
            break
        i, j = best_pair
        groups[i] = groups[i] + groups[j]
        del groups[j]
    return groups


def best_categorical_split_f(
    feature_name: str,
    codes: np.ndarray,
    n_levels: int,
    y: np.ndarray,
    min_leaf: int,
    merge_alpha: float = 0.10,
    bonferroni: bool = True,
) -> SplitCandidate | None:
    """F-test split of a nominal feature on an interval target."""
    present = codes >= 0
    c = codes[present]
    t = y[present]
    if c.shape[0] < 2 * min_leaf:
        return None
    counts = np.bincount(c, minlength=n_levels).astype(np.float64)
    sums = np.bincount(c, weights=t, minlength=n_levels)
    sqsums = np.bincount(c, weights=t**2, minlength=n_levels)
    observed = np.flatnonzero(counts > 0)
    if observed.size < 2:
        return None
    groups = _merge_groups_f(
        [[int(level)] for level in observed], sums, sqsums, counts, merge_alpha
    )
    sizes = [int(counts[g].sum()) for g in groups]
    while len(groups) > 2 and min(sizes) < min_leaf:
        small = int(np.argmin(sizes))
        large = int(np.argmax(sizes))
        if small == large:
            break
        groups[large] = groups[large] + groups[small]
        del groups[small]
        sizes = [int(counts[g].sum()) for g in groups]
    if len(groups) < 2 or min(sizes) < min_leaf:
        return None
    group_sums = np.array([sums[g].sum() for g in groups])
    group_counts = np.array([counts[g].sum() for g in groups])
    f, df1, df2 = f_statistic(
        group_sums,
        group_counts,
        float(sqsums.sum()),
        float(sums.sum()),
        int(counts.sum()),
    )
    statistic = float(f)
    raw_p = float(stats.f.sf(statistic, df1, df2))
    n_candidates = max(1, observed.size - 1)
    p = _bonferroni(raw_p, n_candidates) if bonferroni else raw_p
    n_missing = int((~present).sum())
    return SplitCandidate(
        feature=feature_name,
        is_numeric=False,
        statistic=statistic,
        p_value=p,
        n_candidates=n_candidates,
        groups=tuple(tuple(sorted(g)) for g in groups),
        has_missing_branch=n_missing >= min_leaf,
    )
