"""Chi-square decision tree on a Boolean target.

The paper's primary model family: "decision trees, using the chi-square
test on a Boolean target, with the objective of obtaining the minimum
class classification rates as the model assessment."
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.mining.base import BinaryClassifier
from repro.mining.features import FeatureSet
from repro.mining.tree.compile import CompiledScoringMixin
from repro.mining.tree.growth import GrownTree, TreeConfig, grow_tree
from repro.mining.tree.structure import TreeNode, iter_leaves

__all__ = ["DecisionTreeClassifier"]


class DecisionTreeClassifier(CompiledScoringMixin, BinaryClassifier):
    """CHAID-flavoured chi-square classification tree.

    Parameters
    ----------
    config:
        Growth hyper-parameters (:class:`TreeConfig`); the default
        matches the study's discovery-stage configuration.

    Attributes
    ----------
    n_leaves / n_nodes / depth:
        Structure of the fitted tree (Tables 3 and 4 report leaves).
    """

    def __init__(self, config: TreeConfig | None = None):
        super().__init__()
        self.config = config or TreeConfig()
        self._tree: GrownTree | None = None

    # -- fitting ---------------------------------------------------------
    def _fit(self, features: FeatureSet) -> None:
        y, labels = features.binary_target()
        self.class_labels = labels
        self._tree = grow_tree(features, y, self.config, mode="chi2")
        self._reset_plan()

    # -- structure -------------------------------------------------------
    @property
    def root(self) -> TreeNode:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.root

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.n_leaves

    @property
    def n_nodes(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.n_nodes

    @property
    def depth(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.depth

    # -- prediction ---------------------------------------------------------
    def predict_proba(self, table: DataTable) -> np.ndarray:
        features = self._features_for(table)
        probabilities, _leaves = self._route(features)
        return probabilities

    def apply(self, table: DataTable) -> np.ndarray:
        """Leaf id reached by every row (for rule analysis)."""
        features = self._features_for(table)
        _probabilities, leaves = self._route(features)
        return leaves

    def leaf_summary(self) -> list[dict]:
        """One record per leaf: id, size, P(positive)."""
        return [
            {
                "leaf_id": leaf.node_id,
                "n_samples": leaf.n_samples,
                "p_positive": leaf.prediction,
            }
            for leaf in iter_leaves(self.root)
        ]

    # -- persistence ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation of the fitted model."""
        self._require_fitted()
        assert self._tree is not None and self.class_labels is not None
        from dataclasses import asdict

        from repro.mining.tree.serialize import node_to_dict

        return {
            "model": "DecisionTreeClassifier",
            "config": asdict(self.config),
            "input_names": self.input_names,
            "target_name": self.target_name,
            "vocabularies": {
                name: list(labels)
                for name, labels in self._vocabularies.items()
            },
            "class_labels": list(self.class_labels),
            "n_leaves": self._tree.n_leaves,
            "n_nodes": self._tree.n_nodes,
            "depth": self._tree.depth,
            "tree": node_to_dict(self._tree.root),
            "scoring_plan": self._plan_payload(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTreeClassifier":
        """Rebuild a fitted model from :meth:`to_dict` output."""
        from repro.exceptions import ReproError
        from repro.mining.tree.serialize import node_from_dict

        if data.get("model") != "DecisionTreeClassifier":
            raise ReproError(
                f"expected a DecisionTreeClassifier dump, got "
                f"{data.get('model')!r}"
            )
        model = cls(TreeConfig(**data["config"]))
        model._tree = GrownTree(
            root=node_from_dict(data["tree"]),
            n_leaves=data["n_leaves"],
            n_nodes=data["n_nodes"],
            depth=data["depth"],
        )
        model.class_labels = tuple(data["class_labels"])
        model._input_names = list(data["input_names"])
        model._target_name = data["target_name"]
        model._vocabularies = {
            name: tuple(labels)
            for name, labels in data.get("vocabularies", {}).items()
        }
        model._fitted = True
        model._adopt_plan_payload(data)
        return model
