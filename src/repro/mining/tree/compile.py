"""Compiled scoring kernels: fitted trees lowered to flat arrays.

:func:`~repro.mining.tree.structure.route_rows` interprets a fitted
tree by walking :class:`~repro.mining.tree.structure.TreeNode` objects
in Python — one feature lookup, one ``np.isin`` per nominal arm, one
mask per branch, *per node*.  That is fine for fitting (each node is
visited once) but it dominates the network-wide re-score the paper's
deployment story needs: scoring 42k+ segments touches every node of a
160-leaf tree with Python-level overhead each time.

:func:`compile_tree` lowers a fitted tree into a :class:`TreePlan` of
flat numpy arrays — per-node feature index, numeric threshold,
child offsets for the ``le`` / ``gt`` / ``missing`` arms, and for
nominal splits a per-level child lookup table with missing-value and
unseen-label routing baked in.  :meth:`TreePlan.evaluate` then routes
whole column blocks without touching a ``TreeNode``, through one of
two backends over the same arrays:

``native``
    A generic C interpreter (:mod:`repro.mining.tree.kernel`) built
    once with the system compiler and loaded via ctypes — the fast
    path for bulk re-scores.
``numpy``
    A pure-numpy mask-propagation evaluator (one boolean mask pushed
    down the flattened tree, O(nodes) vectorised steps) used whenever
    the native kernel is unavailable, and as the parity oracle for it.

The plan is a pure lowering: its output is bit-identical to
``route_rows`` (enforced by hypothesis parity tests), including the
paper's missing-as-valid-data routing and the largest-child fallback
for unmatched rows.  Trees whose branch layout is not the canonical
grower output (e.g. hand-edited artefacts with mismatched ``le``/``gt``
thresholds) refuse to compile with :class:`TreeCompileError`; callers
fall back to the interpreted path, so compilation is never a
behavioural change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TreeCompileError
from repro.mining.features import FeatureSet
from repro.mining.tree import kernel as _kernel
from repro.mining.tree.structure import TreeNode, route_rows
from repro.obs.trace import span as obs_span

__all__ = [
    "PLAN_FORMAT_VERSION",
    "PlanInput",
    "TreePlan",
    "compile_tree",
    "plan_inputs",
    "CompiledScoringMixin",
]

PLAN_FORMAT_VERSION = 1

#: node kinds in the flattened plan
_LEAF, _NUMERIC, _NOMINAL = 0, 1, 2


@dataclass(frozen=True)
class PlanInput:
    """One model input as the plan expects it at evaluation time.

    ``n_levels`` is the training vocabulary size for nominal inputs;
    evaluation accepts codes in ``[-1, n_levels]`` (``-1`` = missing,
    ``n_levels`` = the unseen-label code produced by vocabulary
    alignment).
    """

    name: str
    is_numeric: bool
    n_levels: int = 0


class TreePlan:
    """A fitted tree lowered to flat arrays for block evaluation.

    Nodes are stored in pre-order; index 0 is the root.  Per node:

    ``kind``
        0 = leaf, 1 = numeric split, 2 = nominal split.
    ``feature``
        Column index into the numeric (kind 1) or nominal (kind 2)
        value block; 0 for leaves.
    ``threshold`` / ``le_child`` / ``gt_child`` / ``nan_child``
        Numeric routing: rows go to ``le_child`` when value ≤ threshold,
        ``gt_child`` when value > threshold, ``nan_child`` when missing
        (the explicit missing arm, or the largest child as fallback).
    ``lut_offset`` + ``lut``
        Nominal routing: node ``i`` owns ``lut[lut_offset[i] + code + 1]``
        for codes ``-1 .. n_levels``, each entry a child node index with
        first-match, missing-arm and largest-child semantics pre-applied.
    ``prediction`` / ``node_id``
        Leaf payloads (P(positive) or mean target, and the original
        ``TreeNode.node_id`` for ``apply``).
    """

    def __init__(
        self,
        inputs: tuple[PlanInput, ...],
        kind: np.ndarray,
        feature: np.ndarray,
        threshold: np.ndarray,
        le_child: np.ndarray,
        gt_child: np.ndarray,
        nan_child: np.ndarray,
        lut_offset: np.ndarray,
        lut: np.ndarray,
        prediction: np.ndarray,
        node_id: np.ndarray,
        max_depth: int,
    ):
        # Dtypes are pinned to what both backends consume directly:
        # the C kernel reads these buffers through ctypes as-is.
        self.inputs = inputs
        self.kind = np.ascontiguousarray(kind, dtype=np.int8)
        self.feature = np.ascontiguousarray(feature, dtype=np.int32)
        self.threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self.le_child = np.ascontiguousarray(le_child, dtype=np.int32)
        self.gt_child = np.ascontiguousarray(gt_child, dtype=np.int32)
        self.nan_child = np.ascontiguousarray(nan_child, dtype=np.int32)
        self.lut_offset = np.ascontiguousarray(lut_offset, dtype=np.int32)
        self.lut = np.ascontiguousarray(lut, dtype=np.int32)
        self.prediction = np.ascontiguousarray(prediction, dtype=np.float64)
        self.node_id = np.ascontiguousarray(node_id, dtype=np.int64)
        self.max_depth = max_depth
        self._numeric_names = [i.name for i in inputs if i.is_numeric]
        self._nominal = [i for i in inputs if not i.is_numeric]

    @property
    def n_nodes(self) -> int:
        return int(self.kind.shape[0])

    # -- evaluation --------------------------------------------------------
    def _columns(
        self, features: FeatureSet
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Evaluation columns (numeric values, shifted nominal codes).

        Nominal codes are clipped to ``[-1, n_levels]`` and shifted by
        ``+1`` so they index a node's LUT slice directly (slot 0 =
        missing, last slot = unseen); the clip also guarantees a
        malformed code can never index a neighbour's slice.

        Raises :class:`TreeCompileError` when the feature set does not
        carry every plan input with the expected measurement level —
        the caller's cue to fall back to the interpreted router.
        """
        by_name = {f.name: f for f in features.features}
        numeric_cols = []
        for name in self._numeric_names:
            feat = by_name.get(name)
            if feat is None or not feat.is_numeric:
                raise TreeCompileError(
                    f"plan input {name!r} is not a numeric feature of "
                    f"the evaluation table"
                )
            numeric_cols.append(
                np.ascontiguousarray(feat.values, dtype=np.float64)
            )
        code_cols = []
        for spec in self._nominal:
            feat = by_name.get(spec.name)
            if feat is None or feat.is_numeric:
                raise TreeCompileError(
                    f"plan input {spec.name!r} is not a nominal feature "
                    f"of the evaluation table"
                )
            shifted = np.clip(feat.values, -1, spec.n_levels) + 1
            code_cols.append(
                np.ascontiguousarray(shifted, dtype=np.int64)
            )
        return numeric_cols, code_cols

    def evaluate(
        self, features: FeatureSet, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Route every row to a leaf via the flat arrays.

        Returns ``(predictions, leaf_ids)`` exactly as
        :func:`~repro.mining.tree.structure.route_rows` would.

        ``backend`` pins the evaluator to ``"native"`` or ``"numpy"``
        (benchmarks and parity tests); the default picks the native
        kernel when available.  Pinning ``"native"`` on a host without
        a kernel raises :class:`TreeCompileError`.
        """
        numeric_cols, code_cols = self._columns(features)
        n = features.n_rows
        if backend not in (None, "native", "numpy"):
            raise TreeCompileError(f"unknown plan backend {backend!r}")
        if backend != "numpy" and n > 0:
            native = _kernel.native_kernel()
            if native is not None:
                with obs_span(
                    "plan.evaluate",
                    rows=n,
                    backend="native",
                    nodes=self.n_nodes,
                ):
                    return native.score_block(
                        kind=self.kind,
                        feature=self.feature,
                        threshold=self.threshold,
                        le_child=self.le_child,
                        gt_child=self.gt_child,
                        nan_child=self.nan_child,
                        lut_offset=self.lut_offset,
                        lut=self.lut,
                        prediction=self.prediction,
                        node_id=self.node_id,
                        numeric_cols=numeric_cols,
                        code_cols=code_cols,
                        n_rows=n,
                    )
            if backend == "native":
                raise TreeCompileError(
                    "native kernel requested but unavailable: "
                    + _kernel.native_kernel_status()
                )
        with obs_span(
            "plan.evaluate", rows=n, backend="numpy", nodes=self.n_nodes
        ):
            return self._evaluate_numpy(numeric_cols, code_cols, n)

    def _evaluate_numpy(
        self,
        numeric_cols: list[np.ndarray],
        code_cols: list[np.ndarray],
        n: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mask-propagation evaluator: push one boolean membership mask
        per node down the flattened tree.  Full-width contiguous
        compares and AND/XOR beat gather-based routing for the pruned
        tree sizes this study produces, and need no C toolchain."""
        final = np.zeros(n, dtype=np.intp)
        if n and self.kind[0] != _LEAF:
            stack: list[tuple[int, np.ndarray]] = [
                (0, np.ones(n, dtype=bool))
            ]
            while stack:
                node, mask = stack.pop()
                node_kind = self.kind[node]
                if node_kind == _LEAF:
                    final[mask] = node
                    continue
                if node_kind == _NUMERIC:
                    values = numeric_cols[self.feature[node]]
                    cut = self.threshold[node]
                    with np.errstate(invalid="ignore"):
                        le_mask = (values <= cut) & mask
                        gt_mask = (values > cut) & mask
                    nan_mask = mask ^ le_mask ^ gt_mask
                    if nan_mask.any():
                        stack.append(
                            (int(self.nan_child[node]), nan_mask)
                        )
                    stack.append((int(self.le_child[node]), le_mask))
                    stack.append((int(self.gt_child[node]), gt_mask))
                else:
                    spec = self._nominal[self.feature[node]]
                    offset = self.lut_offset[node]
                    table = self.lut[offset: offset + spec.n_levels + 2]
                    child = table[code_cols[self.feature[node]]]
                    for target in np.unique(table):
                        stack.append(
                            (int(target), (child == target) & mask)
                        )
        return self.prediction[final], self.node_id[final]

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (persisted in scorer artefacts)."""
        return {
            "plan_format_version": PLAN_FORMAT_VERSION,
            "inputs": [
                {
                    "name": i.name,
                    "is_numeric": i.is_numeric,
                    "n_levels": i.n_levels,
                }
                for i in self.inputs
            ],
            "kind": self.kind.tolist(),
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "le_child": self.le_child.tolist(),
            "gt_child": self.gt_child.tolist(),
            "nan_child": self.nan_child.tolist(),
            "lut_offset": self.lut_offset.tolist(),
            "lut": self.lut.tolist(),
            "prediction": self.prediction.tolist(),
            "node_id": self.node_id.tolist(),
            "max_depth": self.max_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TreePlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Raises :class:`TreeCompileError` for stale format versions or
        structurally inconsistent payloads; callers recompile from the
        tree instead.
        """
        version = data.get("plan_format_version")
        if version != PLAN_FORMAT_VERSION:
            raise TreeCompileError(
                f"unsupported plan format version {version!r} "
                f"(expected {PLAN_FORMAT_VERSION})"
            )
        try:
            inputs = tuple(
                PlanInput(
                    name=i["name"],
                    is_numeric=bool(i["is_numeric"]),
                    n_levels=int(i["n_levels"]),
                )
                for i in data["inputs"]
            )
            arrays = {
                name: np.asarray(data[name], dtype=np.int64)
                for name in (
                    "kind", "feature", "le_child", "gt_child",
                    "nan_child", "lut_offset", "lut", "node_id",
                )
            }
            arrays["threshold"] = np.asarray(
                data["threshold"], dtype=np.float64
            )
            arrays["prediction"] = np.asarray(
                data["prediction"], dtype=np.float64
            )
            max_depth = int(data["max_depth"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TreeCompileError(
                f"malformed scoring plan payload: {exc}"
            ) from exc
        n = arrays["kind"].shape[0] if arrays["kind"].ndim == 1 else 0
        per_node = (
            "feature", "threshold", "le_child", "gt_child",
            "nan_child", "lut_offset", "prediction", "node_id",
        )
        if n == 0 or any(arrays[name].shape != (n,) for name in per_node):
            raise TreeCompileError(
                "malformed scoring plan payload: per-node arrays disagree"
            )
        # Validate on the raw int64 parse, before __init__ narrows to
        # int32 (a narrowing cast would wrap silently).  The native
        # kernel trusts these arrays completely — an out-of-range index
        # there is a memory error, not an exception — so every way a
        # payload could aim a read outside its buffers is rejected here.
        children = np.concatenate(
            [arrays[k] for k in ("le_child", "gt_child", "nan_child", "lut")]
        )
        if children.size and (children.min() < 0 or children.max() >= n):
            raise TreeCompileError(
                "malformed scoring plan payload: child index out of range"
            )
        kind, feature = arrays["kind"], arrays["feature"]
        if not np.isin(kind, (_LEAF, _NUMERIC, _NOMINAL)).all():
            raise TreeCompileError(
                "malformed scoring plan payload: unknown node kind"
            )
        n_numeric = sum(1 for spec in inputs if spec.is_numeric)
        nominal_specs = [spec for spec in inputs if not spec.is_numeric]
        numeric_nodes = kind == _NUMERIC
        nominal_nodes = kind == _NOMINAL
        if numeric_nodes.any():
            used = feature[numeric_nodes]
            if used.min() < 0 or used.max() >= n_numeric:
                raise TreeCompileError(
                    "malformed scoring plan payload: numeric feature "
                    "index out of range"
                )
        for node in np.flatnonzero(nominal_nodes):
            col = feature[node]
            if not 0 <= col < len(nominal_specs):
                raise TreeCompileError(
                    "malformed scoring plan payload: nominal feature "
                    "index out of range"
                )
            slice_end = arrays["lut_offset"][node] + (
                nominal_specs[col].n_levels + 2
            )
            if arrays["lut_offset"][node] < 0 or (
                slice_end > arrays["lut"].shape[0]
            ):
                raise TreeCompileError(
                    "malformed scoring plan payload: LUT slice out of "
                    "range"
                )
        return cls(inputs=inputs, max_depth=max_depth, **arrays)


def _fallback_index(node: TreeNode) -> int:
    """Index of the largest-child branch (first max, like route_rows)."""
    sizes = [branch.child.n_samples for branch in node.branches]
    return sizes.index(max(sizes))


def compile_tree(
    root: TreeNode, inputs: list[PlanInput] | tuple[PlanInput, ...]
) -> TreePlan:
    """Lower a fitted tree into a :class:`TreePlan`.

    ``inputs`` describes the model's input features in order (the
    fitted ``input_names`` with their measurement level and training
    vocabulary size).  Raises :class:`TreeCompileError` when the tree
    references unknown features or carries a branch layout the lowering
    cannot represent faithfully.
    """
    inputs = tuple(inputs)
    spec_by_name = {spec.name: spec for spec in inputs}
    numeric_col = {
        spec.name: i
        for i, spec in enumerate(s for s in inputs if s.is_numeric)
    }
    nominal_col = {
        spec.name: i
        for i, spec in enumerate(s for s in inputs if not s.is_numeric)
    }

    # Pre-order flattening; children always get larger indices than
    # their parent, so evaluation can never loop.
    order: list[tuple[TreeNode, int]] = []  # (node, depth)
    index_of: dict[int, int] = {}
    stack: list[tuple[TreeNode, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        index_of[id(node)] = len(order)
        order.append((node, depth))
        for branch in reversed(node.branches):
            stack.append((branch.child, depth + 1))

    n = len(order)
    kind = np.zeros(n, dtype=np.int8)
    feature = np.zeros(n, dtype=np.int64)
    threshold = np.full(n, np.inf, dtype=np.float64)
    le_child = np.arange(n, dtype=np.int64)
    gt_child = np.arange(n, dtype=np.int64)
    nan_child = np.arange(n, dtype=np.int64)
    lut_offset = np.zeros(n, dtype=np.int64)
    lut_parts: list[np.ndarray] = []
    lut_size = 0
    prediction = np.empty(n, dtype=np.float64)
    node_id = np.empty(n, dtype=np.int64)
    max_depth = 0

    for i, (node, depth) in enumerate(order):
        max_depth = max(max_depth, depth)
        prediction[i] = node.prediction
        node_id[i] = node.node_id
        if node.is_leaf:
            continue
        kinds = [branch.kind for branch in node.branches]
        fallback = index_of[
            id(node.branches[_fallback_index(node)].child)
        ]
        missing_children = [
            index_of[id(b.child)] for b in node.branches if b.kind == "missing"
        ]
        if len(missing_children) > 1:
            raise TreeCompileError(
                f"node {node.node_id} has {len(missing_children)} missing "
                f"arms; cannot compile"
            )
        missing_child = (
            missing_children[0] if missing_children else fallback
        )
        assert node.split is not None
        spec = spec_by_name.get(node.split.feature)
        if spec is None:
            raise TreeCompileError(
                f"node {node.node_id} splits on unknown feature "
                f"{node.split.feature!r}"
            )
        if any(k == "le" or k == "gt" for k in kinds):
            le_arms = [b for b in node.branches if b.kind == "le"]
            gt_arms = [b for b in node.branches if b.kind == "gt"]
            extras = [k for k in kinds if k not in ("le", "gt", "missing")]
            if (
                not spec.is_numeric
                or extras
                or len(le_arms) != 1
                or len(gt_arms) != 1
                or le_arms[0].threshold is None
                or le_arms[0].threshold != gt_arms[0].threshold
            ):
                raise TreeCompileError(
                    f"node {node.node_id} has a non-canonical numeric "
                    f"branch layout ({kinds}); cannot compile"
                )
            kind[i] = _NUMERIC
            feature[i] = numeric_col[spec.name]
            threshold[i] = le_arms[0].threshold
            le_child[i] = index_of[id(le_arms[0].child)]
            gt_child[i] = index_of[id(gt_arms[0].child)]
            nan_child[i] = missing_child
        else:
            if spec.is_numeric or any(
                k not in ("in", "missing") for k in kinds
            ):
                raise TreeCompileError(
                    f"node {node.node_id} has a non-canonical nominal "
                    f"branch layout ({kinds}); cannot compile"
                )
            # LUT slots: [missing, code 0 .. n_levels-1, unseen].
            table = np.full(spec.n_levels + 2, -1, dtype=np.int64)
            table[0] = missing_child
            for branch in node.branches:  # first match wins
                if branch.kind != "in":
                    continue
                child = index_of[id(branch.child)]
                for code in sorted(branch.codes):
                    if not 0 <= code < spec.n_levels:
                        raise TreeCompileError(
                            f"node {node.node_id} groups level code "
                            f"{code} outside the {spec.n_levels}-level "
                            f"vocabulary of {spec.name!r}; cannot compile"
                        )
                    if table[code + 1] == -1:
                        table[code + 1] = child
            table[table == -1] = fallback  # unseen + ungrouped levels
            kind[i] = _NOMINAL
            feature[i] = nominal_col[spec.name]
            lut_offset[i] = lut_size
            lut_parts.append(table)
            lut_size += table.shape[0]

    return TreePlan(
        inputs=inputs,
        kind=kind,
        feature=feature,
        threshold=threshold,
        le_child=le_child,
        gt_child=gt_child,
        nan_child=nan_child,
        lut_offset=lut_offset,
        lut=(
            np.concatenate(lut_parts)
            if lut_parts
            else np.empty(0, dtype=np.int64)
        ),
        prediction=prediction,
        node_id=node_id,
        max_depth=max_depth,
    )


def plan_inputs(
    input_names: list[str], vocabularies: dict[str, tuple[str, ...]]
) -> tuple[PlanInput, ...]:
    """Plan input specs from a fitted model's names + vocabularies."""
    return tuple(
        PlanInput(
            name=name,
            is_numeric=name not in vocabularies,
            n_levels=len(vocabularies.get(name, ())),
        )
        for name in input_names
    )


class CompiledScoringMixin:
    """Lazy plan compilation + interpreted fallback for tree models.

    Mixed into :class:`~repro.mining.tree.decision_tree.DecisionTreeClassifier`
    and :class:`~repro.mining.tree.regression_tree.RegressionTree`.  The
    plan compiles once per fitted tree on first prediction (or arrives
    pre-compiled from a persisted artefact via :meth:`attach_plan`) and
    is reused by every subsequent scan — the study's validation passes,
    the serving engine, and bulk re-scores all share it.  Any
    :class:`TreeCompileError` (non-canonical tree, mismatched
    evaluation features) drops that call back to ``route_rows``, so the
    fast path can never change behaviour.
    """

    _plan: TreePlan | None = None
    _plan_failed: bool = False

    def _reset_plan(self) -> None:
        self._plan = None
        self._plan_failed = False

    def scoring_plan(self) -> TreePlan | None:
        """The compiled plan, or ``None`` when the tree won't lower."""
        if self._plan is None and not self._plan_failed:
            try:
                with obs_span("plan.compile") as compile_span:
                    self._plan = compile_tree(
                        self.root,
                        plan_inputs(self.input_names, self.vocabularies),
                    )
                    if compile_span is not None:
                        compile_span.attrs["nodes"] = self._plan.n_nodes
            except TreeCompileError:
                self._plan_failed = True
        return self._plan

    def attach_plan(self, plan: TreePlan) -> None:
        """Adopt a pre-compiled plan (from a persisted artefact).

        The plan must describe this model's inputs and node count;
        anything else raises :class:`TreeCompileError` and the caller
        should recompile from the tree instead.
        """
        expected = plan_inputs(self.input_names, self.vocabularies)
        if plan.inputs != expected:
            raise TreeCompileError(
                "persisted scoring plan does not match the model inputs"
            )
        if plan.n_nodes != self.n_nodes:
            raise TreeCompileError(
                f"persisted scoring plan has {plan.n_nodes} nodes, "
                f"the tree has {self.n_nodes}"
            )
        self._plan = plan
        self._plan_failed = False

    def _route(self, features: FeatureSet) -> tuple[np.ndarray, np.ndarray]:
        """(predictions, leaf_ids) via the plan, or interpreted fallback."""
        plan = self.scoring_plan()
        if plan is not None:
            try:
                return plan.evaluate(features)
            except TreeCompileError:
                pass  # features don't fit the plan; interpret instead
        return route_rows(self.root, features)

    # -- persistence helpers ----------------------------------------------
    def _plan_payload(self) -> dict | None:
        """JSON-safe compiled plan for model artefacts (None when the
        tree won't lower)."""
        plan = self.scoring_plan()
        return None if plan is None else plan.to_dict()

    def _adopt_plan_payload(self, data: dict) -> None:
        """Attach a persisted ``scoring_plan`` payload, if compatible.

        Stale, malformed or mismatched payloads are dropped silently —
        the plan recompiles lazily from the tree, so a hand-edited or
        older artefact costs a recompile, never a failure."""
        payload = data.get("scoring_plan")
        if payload is None:
            return
        try:
            self.attach_plan(TreePlan.from_dict(payload))
        except TreeCompileError:
            self._reset_plan()
