"""Native scoring backend for compiled tree plans.

:mod:`repro.mining.tree.compile` lowers a fitted tree into flat arrays
(a :class:`~repro.mining.tree.compile.TreePlan`).  This module provides
the fastest way to *run* such a plan: a tiny, tree-independent C
interpreter over the plan arrays, built once per machine with the
system C compiler and loaded through :mod:`ctypes`.

The C source is generic — one function that walks any plan — so the
shared object is compiled a single time and cached under a
content-addressed file name; every process (including bulk-scoring
pool workers) just ``dlopen``\\ s the cached artefact.  When no C
compiler is available, the build fails, or ``REPRO_NO_NATIVE_KERNEL``
is set, :func:`native_kernel` returns ``None`` and callers fall back
to the pure-numpy block evaluator, so the native path is strictly an
accelerator and never a behavioural dependency.

Semantics match the numpy evaluator bit for bit: IEEE-754 double
comparisons (``v <= t`` and ``v > t`` are both false for NaN, which
routes missing values to the plan's ``nan_child``), and nominal codes
index the same pre-baked lookup table.  No ``-ffast-math``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

from repro.exceptions import KernelBuildError

__all__ = ["NativeKernel", "native_kernel", "native_kernel_status"]

#: Environment switch: set to any non-empty value to force the
#: pure-numpy evaluator (useful for parity tests and debugging).
DISABLE_ENV = "REPRO_NO_NATIVE_KERNEL"

#: Override the directory holding the compiled shared object.
CACHE_DIR_ENV = "REPRO_KERNEL_CACHE_DIR"

_SOURCE = r"""
#include <stdint.h>

/* Generic interpreter over a flattened tree plan.

   kind: 0 = leaf, 1 = numeric split, 2 = nominal split.
   values / codes: one pointer per plan input column, each n_rows long.
   Nominal codes arrive pre-shifted (+1) so they index the node's LUT
   slice directly: slot 0 = missing, 1..n = vocabulary, n+1 = unseen.

   NaN routing falls out of IEEE-754: a NaN value fails both the
   "<= threshold" and "> threshold" tests and lands on nan_child.  */
void repro_score_block(
    const double *const *values, const int64_t *const *codes,
    int64_t n_rows,
    const int8_t *kind, const int32_t *feature, const double *threshold,
    const int32_t *le_child, const int32_t *gt_child,
    const int32_t *nan_child,
    const int32_t *lut_offset, const int32_t *lut,
    const double *prediction, const int64_t *node_id,
    double *out_pred, int64_t *out_leaf)
{
    for (int64_t i = 0; i < n_rows; i++) {
        int32_t node = 0;
        for (;;) {
            int8_t k = kind[node];
            if (k == 0)
                break;
            if (k == 1) {
                double v = values[feature[node]][i];
                if (v <= threshold[node])
                    node = le_child[node];
                else if (v > threshold[node])
                    node = gt_child[node];
                else
                    node = nan_child[node];
            } else {
                node = lut[lut_offset[node] + codes[feature[node]][i]];
            }
        }
        out_pred[i] = prediction[node];
        out_leaf[i] = node_id[node];
    }
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_INT32_P = ctypes.POINTER(ctypes.c_int32)
_INT8_P = ctypes.POINTER(ctypes.c_int8)


class NativeKernel:
    """ctypes wrapper around the compiled ``repro_score_block``."""

    def __init__(self, library: ctypes.CDLL, path: str):
        self.path = path
        self._fn = library.repro_score_block
        self._fn.restype = None

    def score_block(
        self,
        *,
        kind: np.ndarray,
        feature: np.ndarray,
        threshold: np.ndarray,
        le_child: np.ndarray,
        gt_child: np.ndarray,
        nan_child: np.ndarray,
        lut_offset: np.ndarray,
        lut: np.ndarray,
        prediction: np.ndarray,
        node_id: np.ndarray,
        numeric_cols: list[np.ndarray],
        code_cols: list[np.ndarray],
        n_rows: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        out_pred = np.empty(n_rows, dtype=np.float64)
        out_leaf = np.empty(n_rows, dtype=np.int64)
        value_ptrs = (_DOUBLE_P * max(1, len(numeric_cols)))(
            *(c.ctypes.data_as(_DOUBLE_P) for c in numeric_cols)
        )
        code_ptrs = (_INT64_P * max(1, len(code_cols)))(
            *(c.ctypes.data_as(_INT64_P) for c in code_cols)
        )
        self._fn(
            value_ptrs,
            code_ptrs,
            ctypes.c_int64(n_rows),
            kind.ctypes.data_as(_INT8_P),
            feature.ctypes.data_as(_INT32_P),
            threshold.ctypes.data_as(_DOUBLE_P),
            le_child.ctypes.data_as(_INT32_P),
            gt_child.ctypes.data_as(_INT32_P),
            nan_child.ctypes.data_as(_INT32_P),
            lut_offset.ctypes.data_as(_INT32_P),
            lut.ctypes.data_as(_INT32_P),
            prediction.ctypes.data_as(_DOUBLE_P),
            node_id.ctypes.data_as(_INT64_P),
            out_pred.ctypes.data_as(_DOUBLE_P),
            out_leaf.ctypes.data_as(_INT64_P),
        )
        return out_pred, out_leaf


_lock = threading.Lock()
_kernel: NativeKernel | None = None
_status = "not loaded"
_attempted = False


def _cache_dir() -> str:
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return configured
    return os.path.join(
        tempfile.gettempdir(), f"repro-tree-kernel-{os.getuid()}"
    )


def _build_and_load() -> NativeKernel:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_tree_kernel_{digest}.so")
    if not os.path.exists(so_path):
        compiler = shutil.which("cc") or shutil.which("gcc")
        if compiler is None:
            raise KernelBuildError("no C compiler on PATH")
        os.makedirs(cache, mode=0o700, exist_ok=True)
        src_path = os.path.join(cache, f"repro_tree_kernel_{digest}.c")
        with open(src_path, "w") as handle:
            handle.write(_SOURCE)
        # Build to a unique name, then publish atomically so concurrent
        # pool workers never dlopen a half-written object.
        build_path = f"{so_path}.build-{os.getpid()}"
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", build_path, src_path],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if result.returncode != 0:
            raise KernelBuildError(
                f"kernel build failed: {result.stderr.strip()[:500]}"
            )
        os.replace(build_path, so_path)
    return NativeKernel(ctypes.CDLL(so_path), so_path)  # repro: ignore[REP005] -- the dlopen handle is a process-lifetime cache shared by every plan; it is never closed by design


def native_kernel() -> NativeKernel | None:
    """The process-wide native kernel, or ``None`` when unavailable.

    The first call attempts the (cached) build; failures are remembered
    so a broken toolchain costs one attempt, not one per evaluation.
    """
    global _kernel, _status, _attempted
    if os.environ.get(DISABLE_ENV):
        return None
    with _lock:  # repro: ignore[REP102] -- build-once guard: the lock must cover the compiler run so concurrent first callers cannot race the .so build; it blocks exactly once per process, then every call is a cached read
        if not _attempted:
            _attempted = True
            try:
                _kernel = _build_and_load()
                _status = f"native ({_kernel.path})"
            except Exception as exc:  # no compiler, sandboxed tmp, ...
                _kernel = None
                _status = f"unavailable: {exc}"
        return _kernel


def native_kernel_status() -> str:
    """Human-readable backend status (for benchmarks and stats)."""
    if os.environ.get(DISABLE_ENV):
        return f"disabled via {DISABLE_ENV}"
    native_kernel()
    return _status
