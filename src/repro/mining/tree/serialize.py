"""JSON-serialisable representations of fitted trees.

The paper's future work is to "develop deployment to embed with a
strategic and operational decision support system"; a deployable model
must survive a process boundary.  These functions convert a fitted tree
(structure, splits, branch arms, leaf statistics) to and from plain
dicts of JSON-safe types, with a version tag so stored models fail
loudly rather than mis-deserialise.
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.mining.tree.splitting import SplitCandidate
from repro.mining.tree.structure import Branch, TreeNode

__all__ = [
    "TREE_FORMAT_VERSION",
    "node_to_dict",
    "node_from_dict",
]

TREE_FORMAT_VERSION = 1


def _split_to_dict(split: SplitCandidate) -> dict:
    return {
        "feature": split.feature,
        "is_numeric": split.is_numeric,
        "statistic": split.statistic,
        "p_value": split.p_value,
        "n_candidates": split.n_candidates,
        "threshold": split.threshold,
        "groups": [list(group) for group in split.groups],
        "has_missing_branch": split.has_missing_branch,
    }


def _split_from_dict(data: dict) -> SplitCandidate:
    return SplitCandidate(
        feature=data["feature"],
        is_numeric=data["is_numeric"],
        statistic=data["statistic"],
        p_value=data["p_value"],
        n_candidates=data["n_candidates"],
        threshold=data["threshold"],
        groups=tuple(tuple(group) for group in data["groups"]),
        has_missing_branch=data["has_missing_branch"],
    )


def _branch_to_dict(branch: Branch) -> dict:
    return {
        "kind": branch.kind,
        "threshold": branch.threshold,
        "codes": sorted(branch.codes),
        "child": node_to_dict(branch.child, _versioned=False),
    }


def _branch_from_dict(data: dict) -> Branch:
    return Branch(
        kind=data["kind"],
        child=node_from_dict(data["child"], _versioned=False),
        threshold=data["threshold"],
        codes=frozenset(data["codes"]),
    )


def node_to_dict(node: TreeNode, _versioned: bool = True) -> dict:
    """Serialise a tree rooted at ``node`` to JSON-safe types."""
    data = {
        "node_id": node.node_id,
        "depth": node.depth,
        "n_samples": node.n_samples,
        "prediction": node.prediction,
        "split": None if node.split is None else _split_to_dict(node.split),
        "branches": [_branch_to_dict(b) for b in node.branches],
    }
    if _versioned:
        data["format_version"] = TREE_FORMAT_VERSION
    return data


def node_from_dict(data: dict, _versioned: bool = True) -> TreeNode:
    """Rebuild a tree from :func:`node_to_dict` output."""
    if _versioned:
        version = data.get("format_version")
        if version != TREE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported tree format version {version!r} "
                f"(expected {TREE_FORMAT_VERSION})"
            )
    node = TreeNode(
        node_id=data["node_id"],
        depth=data["depth"],
        n_samples=data["n_samples"],
        prediction=data["prediction"],
        split=(
            None if data["split"] is None else _split_from_dict(data["split"])
        ),
        branches=[],
    )
    node.branches = [_branch_from_dict(b) for b in data["branches"]]
    return node
