"""Significance-driven best-first tree growth.

The paper controls its trees through "a series of modeling tests ... to
determine a suitable tree size that did not significantly truncate the
tree" — i.e. a leaf budget plus the split test's significance gate.
:func:`grow_tree` implements that: candidate splits across features are
ranked by adjusted p-value, the globally most significant expansion is
applied first, and growth stops when the leaf budget, depth limit,
minimum node sizes or the significance threshold bite.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mining.features import Feature, FeatureSet
from repro.mining.tree.splitting import (
    SplitCandidate,
    best_categorical_split_chi2,
    best_categorical_split_f,
    best_numeric_split_chi2,
    best_numeric_split_f,
)
from repro.mining.tree.structure import Branch, TreeNode, partition_indices

__all__ = ["TreeConfig", "GrownTree", "grow_tree"]


@dataclass(frozen=True)
class TreeConfig:
    """Growth hyper-parameters shared by the tree family.

    Attributes
    ----------
    alpha:
        Maximum adjusted p-value for a split to be applied.
    max_depth / max_leaves:
        Structural budgets; ``max_leaves`` is the paper's "tree size"
        control (its models report between 6 and 160 leaves).
    min_split / min_leaf:
        Minimum rows to attempt a split / to allow in a child.
    max_candidates:
        Cap on numeric threshold candidates per feature per node.
    merge_alpha:
        CHAID level-merging significance for nominal features.
    bonferroni:
        Apply the multiplicity adjustment to split p-values.
    """

    alpha: float = 0.05
    max_depth: int = 14
    max_leaves: int = 160
    min_split: int = 60
    min_leaf: int = 25
    max_candidates: int = 64
    merge_alpha: float = 0.10
    bonferroni: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.min_leaf < 1 or self.min_split < 2 * self.min_leaf:
            raise ConfigurationError(
                "need min_leaf >= 1 and min_split >= 2*min_leaf "
                f"(got min_leaf={self.min_leaf}, min_split={self.min_split})"
            )
        if self.max_leaves < 2:
            raise ConfigurationError(f"max_leaves must be >= 2, got {self.max_leaves}")


@dataclass
class GrownTree:
    """Result of :func:`grow_tree`."""

    root: TreeNode
    n_leaves: int
    n_nodes: int
    depth: int


def _best_split(
    features: FeatureSet,
    y: np.ndarray,
    idx: np.ndarray,
    config: TreeConfig,
    mode: str,
) -> SplitCandidate | None:
    """Most significant candidate over all features for rows ``idx``."""
    best: SplitCandidate | None = None
    y_sub = y[idx]
    if mode == "chi2" and (y_sub.min() == y_sub.max()):
        return None  # pure node
    for feature in features.features:
        values = feature.values[idx]
        if feature.is_numeric:
            if mode == "chi2":
                candidate = best_numeric_split_chi2(
                    feature.name, values, y_sub, config.min_leaf,
                    config.max_candidates, config.bonferroni,
                )
            else:
                candidate = best_numeric_split_f(
                    feature.name, values, y_sub, config.min_leaf,
                    config.max_candidates, config.bonferroni,
                )
        else:
            if mode == "chi2":
                candidate = best_categorical_split_chi2(
                    feature.name, values, feature.n_levels, y_sub,
                    config.min_leaf, config.merge_alpha, config.bonferroni,
                )
            else:
                candidate = best_categorical_split_f(
                    feature.name, values, feature.n_levels, y_sub,
                    config.min_leaf, config.merge_alpha, config.bonferroni,
                )
        if candidate is None:
            continue
        if best is None or (candidate.p_value, -candidate.statistic) < (
            best.p_value, -best.statistic
        ):
            best = candidate
    return best


def _build_branches(
    node: TreeNode,
    split: SplitCandidate,
    feature: Feature,
    next_id: "itertools.count[int]",
) -> None:
    """Attach (empty) child nodes for every arm of ``split``."""
    children: list[Branch] = []
    if split.is_numeric:
        children.append(
            Branch("le", _child(node, next_id), threshold=split.threshold)
        )
        children.append(
            Branch("gt", _child(node, next_id), threshold=split.threshold)
        )
    else:
        for group in split.groups:
            children.append(
                Branch("in", _child(node, next_id), codes=frozenset(group))
            )
    if split.has_missing_branch:
        children.append(Branch("missing", _child(node, next_id)))
    node.split = split
    node.branches = children


def _child(parent: TreeNode, next_id: "itertools.count[int]") -> TreeNode:
    return TreeNode(
        node_id=next(next_id),
        depth=parent.depth + 1,
        n_samples=0,
        prediction=parent.prediction,
    )


def grow_tree(
    features: FeatureSet,
    y: np.ndarray,
    config: TreeConfig,
    mode: str,
) -> GrownTree:
    """Grow a tree on target ``y`` (0/1 for 'chi2', floats for 'f').

    Growth is best-first on (adjusted p-value, −statistic): the most
    significant available expansion anywhere in the tree is applied
    next, so a leaf budget truncates the least important structure —
    mirroring how an analyst sizes a SAS tree.
    """
    if mode not in ("chi2", "f"):
        raise ConfigurationError(f"mode must be 'chi2' or 'f', got {mode!r}")
    n = features.n_rows
    if n < config.min_split:
        root = TreeNode(0, 0, n, float(np.mean(y)) if n else 0.0)
        return GrownTree(root, n_leaves=1, n_nodes=1, depth=0)

    ids = itertools.count(0)
    root = TreeNode(next(ids), 0, n, float(np.mean(y)))
    all_idx = np.arange(n, dtype=np.int64)
    heap: list[tuple[float, float, int, TreeNode, np.ndarray, SplitCandidate]] = []
    tiebreak = itertools.count()

    def consider(node: TreeNode, idx: np.ndarray) -> None:
        if (
            idx.size < config.min_split
            or node.depth >= config.max_depth
        ):
            return
        split = _best_split(features, y, idx, config, mode)
        if split is None or split.p_value > config.alpha:
            return
        heapq.heappush(
            heap,
            (
                split.p_value,
                -split.statistic,
                next(tiebreak),
                node,
                idx,
                split,
            ),
        )

    consider(root, all_idx)
    n_leaves = 1
    n_nodes = 1
    max_depth_seen = 0
    while heap:
        _p, _s, _t, node, idx, split = heapq.heappop(heap)
        feature = next(
            f for f in features.features if f.name == split.feature
        )
        added = (
            (2 if split.is_numeric else len(split.groups))
            + (1 if split.has_missing_branch else 0)
            - 1
        )
        if n_leaves + added > config.max_leaves:
            continue  # cannot afford this expansion; try cheaper ones
        _build_branches(node, split, feature, ids)
        parts = partition_indices(node, features, idx)
        # A degenerate partition (an arm got every row) cannot stand.
        if sum(1 for _b, sub in parts if sub.size > 0) < 2:
            node.make_leaf()
            continue
        n_leaves += added
        n_nodes += added + 1
        for branch, sub in parts:
            child = branch.child
            child.n_samples = int(sub.size)
            if sub.size:
                child.prediction = float(np.mean(y[sub]))
            max_depth_seen = max(max_depth_seen, child.depth)
            consider(child, sub)

    if n_nodes == 1 and mode == "chi2" and len(np.unique(y)) > 1:
        # Not an error: the significance gate can legitimately refuse
        # every split; callers see a single-leaf majority model.
        pass
    return GrownTree(
        root=root, n_leaves=n_leaves, n_nodes=n_nodes, depth=max_depth_seen
    )
