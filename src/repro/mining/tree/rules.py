"""Rule extraction from fitted trees.

The paper prefers trees because of "the potential to extract domain
knowledge from the rules"; this module turns any fitted tree into an
ordered rule list — one conjunctive rule per leaf — rendered with the
original attribute names and category labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mining.features import FeatureSet
from repro.mining.tree.structure import Branch, TreeNode

__all__ = ["Rule", "extract_rules", "format_rules"]


@dataclass(frozen=True)
class Rule:
    """One root-to-leaf path."""

    conditions: tuple[str, ...]
    prediction: float
    n_samples: int
    leaf_id: int

    def __str__(self) -> str:
        clause = " AND ".join(self.conditions) if self.conditions else "TRUE"
        return (
            f"IF {clause} THEN prediction={self.prediction:.3f} "
            f"(n={self.n_samples})"
        )


def _condition(branch: Branch, split_feature: str, labels: tuple[str, ...]) -> str:
    return f"{split_feature} {branch.describe(labels)}"


def extract_rules(root: TreeNode, features: FeatureSet) -> list[Rule]:
    """All leaf rules, ordered by descending leaf support."""
    labels_by_feature = {
        f.name: (f.labels if not f.is_numeric else ())
        for f in features.features
    }
    rules: list[Rule] = []
    stack: list[tuple[TreeNode, tuple[str, ...]]] = [(root, ())]
    while stack:
        node, conditions = stack.pop()
        if node.is_leaf:
            rules.append(
                Rule(conditions, node.prediction, node.n_samples, node.node_id)
            )
            continue
        assert node.split is not None
        labels = labels_by_feature.get(node.split.feature, ())
        for branch in node.branches:
            stack.append(
                (
                    branch.child,
                    conditions
                    + (_condition(branch, node.split.feature, labels),),
                )
            )
    rules.sort(key=lambda r: -r.n_samples)
    return rules


def format_rules(rules: list[Rule], limit: int | None = None) -> str:
    """Human-readable rule list (top ``limit`` rules by support)."""
    selected = rules if limit is None else rules[:limit]
    lines = [str(rule) for rule in selected]
    if limit is not None and len(rules) > limit:
        lines.append(f"... ({len(rules) - limit} more rules)")
    return "\n".join(lines)
