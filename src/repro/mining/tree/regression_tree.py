"""F-test regression tree on an interval target.

The paper's second production configuration: "regression trees, using
the f-test on a target configured as interval, to obtain the
coefficient of determination (r-squared) for use in the assessment of
predictive accuracy of the model.  Interval models tended to be more
accurate but with less compact models."

A binary crash-proneness target is coerced to 0.0 / 1.0 and modelled as
an interval quantity; leaf predictions are class fractions, and R² on a
validation set is the headline statistic of Tables 3 and 4.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.evaluation.metrics import r_squared
from repro.mining.base import Regressor
from repro.mining.features import FeatureSet
from repro.mining.tree.compile import CompiledScoringMixin
from repro.mining.tree.growth import GrownTree, TreeConfig, grow_tree
from repro.mining.tree.structure import TreeNode, iter_leaves

__all__ = ["RegressionTree"]


class RegressionTree(CompiledScoringMixin, Regressor):
    """F-test regression tree (interval target)."""

    def __init__(self, config: TreeConfig | None = None):
        super().__init__()
        self.config = config or TreeConfig()
        self._tree: GrownTree | None = None

    def _fit(self, features: FeatureSet) -> None:
        y = features.interval_target()
        self._tree = grow_tree(features, y, self.config, mode="f")
        self._reset_plan()

    # -- structure ---------------------------------------------------------
    @property
    def root(self) -> TreeNode:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.root

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.n_leaves

    @property
    def n_nodes(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.n_nodes

    @property
    def depth(self) -> int:
        self._require_fitted()
        assert self._tree is not None
        return self._tree.depth

    # -- prediction -------------------------------------------------------------
    def predict(self, table: DataTable) -> np.ndarray:
        features = self._features_for(table)
        predictions, _leaves = self._route(features)
        return predictions

    def apply(self, table: DataTable) -> np.ndarray:
        """Leaf id reached by every row."""
        features = self._features_for(table)
        _predictions, leaves = self._route(features)
        return leaves

    def score_r_squared(self, table: DataTable) -> float:
        """Validation R² against the fitted target column."""
        features = self._features_for(table)
        actual = features.interval_target()
        predicted = self.predict(table)
        return r_squared(actual, predicted)

    def leaf_summary(self) -> list[dict]:
        """One record per leaf: id, size, mean target (leaf purity)."""
        return [
            {
                "leaf_id": leaf.node_id,
                "n_samples": leaf.n_samples,
                "mean_target": leaf.prediction,
            }
            for leaf in iter_leaves(self.root)
        ]

    # -- persistence ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation of the fitted model."""
        self._require_fitted()
        assert self._tree is not None
        from dataclasses import asdict

        from repro.mining.tree.serialize import node_to_dict

        return {
            "model": "RegressionTree",
            "config": asdict(self.config),
            "input_names": self.input_names,
            "target_name": self.target_name,
            "vocabularies": {
                name: list(labels)
                for name, labels in self._vocabularies.items()
            },
            "n_leaves": self._tree.n_leaves,
            "n_nodes": self._tree.n_nodes,
            "depth": self._tree.depth,
            "tree": node_to_dict(self._tree.root),
            "scoring_plan": self._plan_payload(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionTree":
        """Rebuild a fitted model from :meth:`to_dict` output."""
        from repro.exceptions import ReproError
        from repro.mining.tree.serialize import node_from_dict

        if data.get("model") != "RegressionTree":
            raise ReproError(
                f"expected a RegressionTree dump, got {data.get('model')!r}"
            )
        model = cls(TreeConfig(**data["config"]))
        model._tree = GrownTree(
            root=node_from_dict(data["tree"]),
            n_leaves=data["n_leaves"],
            n_nodes=data["n_nodes"],
            depth=data["depth"],
        )
        model._input_names = list(data["input_names"])
        model._target_name = data["target_name"]
        model._vocabularies = {
            name: tuple(labels)
            for name, labels in data.get("vocabularies", {}).items()
        }
        model._fitted = True
        model._adopt_plan_payload(data)
        return model
