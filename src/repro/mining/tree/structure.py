"""Tree node structure and vectorised routing.

A fitted tree is a DAG-free hierarchy of :class:`TreeNode`; internal
nodes carry the chosen :class:`~repro.mining.tree.splitting.SplitCandidate`
and a list of :class:`Branch` arms.  Branch arms are:

``le`` / ``gt``
    Numeric threshold arms.
``in``
    Nominal arm holding a set of level codes (CHAID merged group).
``missing``
    The explicit missing-value arm ("missing values were treated as
    valid data", paper Section 3).

Rows that match no arm (missing without a missing arm, or an unseen
level) fall through to the node's largest child, both during fitting
and prediction, so train/apply behaviour is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mining.features import FeatureSet
from repro.mining.tree.splitting import SplitCandidate

__all__ = ["Branch", "TreeNode", "route_rows", "iter_nodes", "iter_leaves"]


@dataclass
class Branch:
    """One arm of a split."""

    kind: str  # 'le' | 'gt' | 'in' | 'missing'
    child: "TreeNode"
    threshold: float | None = None
    codes: frozenset[int] = frozenset()

    def describe(self, labels: tuple[str, ...] = ()) -> str:
        if self.kind == "le":
            return f"<= {self.threshold:g}"
        if self.kind == "gt":
            return f"> {self.threshold:g}"
        if self.kind == "missing":
            return "missing"
        names = [
            labels[c] if c < len(labels) else str(c)
            for c in sorted(self.codes)
        ]
        return "in {" + ", ".join(names) + "}"


@dataclass
class TreeNode:
    """A node of a fitted tree."""

    node_id: int
    depth: int
    n_samples: int
    prediction: float
    """P(positive) for classification trees, mean target for regression."""
    split: SplitCandidate | None = None
    branches: list[Branch] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.branches

    def largest_branch(self) -> Branch:
        return max(self.branches, key=lambda b: b.child.n_samples)

    def make_leaf(self) -> None:
        self.split = None
        self.branches = []


def partition_indices(
    node: TreeNode, features: FeatureSet, idx: np.ndarray
) -> list[tuple[Branch, np.ndarray]]:
    """Distribute the rows ``idx`` over the node's branches.

    Unmatched rows (missing with no missing arm, unseen levels) go to
    the largest branch.
    """
    assert node.split is not None
    feature = next(
        f for f in features.features if f.name == node.split.feature
    )
    values = feature.values[idx]
    assigned = np.full(idx.shape[0], -1, dtype=np.int64)
    for b_index, branch in enumerate(node.branches):
        if branch.kind == "le":
            with np.errstate(invalid="ignore"):
                mask = values <= branch.threshold
        elif branch.kind == "gt":
            with np.errstate(invalid="ignore"):
                mask = values > branch.threshold
        elif branch.kind == "missing":
            mask = (
                np.isnan(values) if feature.is_numeric else values == -1
            )
        else:  # 'in'
            mask = np.isin(values, list(branch.codes))
        assigned[(assigned == -1) & mask] = b_index
    if (assigned == -1).any():
        fallback = node.branches.index(node.largest_branch())
        assigned[assigned == -1] = fallback
    return [
        (branch, idx[assigned == b_index])
        for b_index, branch in enumerate(node.branches)
    ]


def route_rows(
    root: TreeNode, features: FeatureSet
) -> tuple[np.ndarray, np.ndarray]:
    """Route every row to a leaf.

    Returns ``(predictions, leaf_ids)`` aligned with the feature rows.
    """
    n = features.n_rows
    predictions = np.empty(n, dtype=np.float64)
    leaf_ids = np.empty(n, dtype=np.int64)
    stack: list[tuple[TreeNode, np.ndarray]] = [
        (root, np.arange(n, dtype=np.int64))
    ]
    while stack:
        node, idx = stack.pop()
        if idx.size == 0:
            continue
        if node.is_leaf:
            predictions[idx] = node.prediction
            leaf_ids[idx] = node.node_id
            continue
        for branch, sub in partition_indices(node, features, idx):
            stack.append((branch.child, sub))
    return predictions, leaf_ids


def iter_nodes(root: TreeNode):
    """Yield every node, parents before children."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(branch.child for branch in reversed(node.branches))


def iter_leaves(root: TreeNode):
    return (node for node in iter_nodes(root) if node.is_leaf)
