"""Tree family: chi-square decision trees, F-test regression trees,
M5 model trees, plus the shared growth / routing / rule machinery."""

from repro.mining.tree.compile import PlanInput, TreePlan, compile_tree
from repro.mining.tree.decision_tree import DecisionTreeClassifier
from repro.mining.tree.growth import GrownTree, TreeConfig, grow_tree
from repro.mining.tree.m5 import M5ModelTree
from repro.mining.tree.regression_tree import RegressionTree
from repro.mining.tree.rules import Rule, extract_rules, format_rules
from repro.mining.tree.splitting import (
    SplitCandidate,
    best_categorical_split_chi2,
    best_categorical_split_f,
    best_numeric_split_chi2,
    best_numeric_split_f,
    chi_square_2x2,
)
from repro.mining.tree.structure import (
    Branch,
    TreeNode,
    iter_leaves,
    iter_nodes,
    route_rows,
)

__all__ = [
    "DecisionTreeClassifier",
    "RegressionTree",
    "M5ModelTree",
    "TreeConfig",
    "GrownTree",
    "grow_tree",
    "Rule",
    "extract_rules",
    "format_rules",
    "SplitCandidate",
    "best_numeric_split_chi2",
    "best_numeric_split_f",
    "best_categorical_split_chi2",
    "best_categorical_split_f",
    "chi_square_2x2",
    "Branch",
    "TreeNode",
    "iter_nodes",
    "iter_leaves",
    "route_rows",
    "PlanInput",
    "TreePlan",
    "compile_tree",
]
