"""M5 model tree.

Quinlan's M5 appears in the paper among the supporting algorithms
("additional modeling using neural networks, logistic regression and M5
algorithms show trends similar to the prior models").  This is a
faithful, compact implementation of the two M5 ideas that matter here:

* growth by **standard-deviation reduction** (SDR) instead of a
  significance test, and
* **linear ridge models in the leaves** over the numeric attributes,
  with prediction smoothing along the path back to the root.

Categorical attributes participate in splits (via the F-test grouping
machinery) but not in the leaf regressions, as in Quinlan's original
formulation where enumerated attributes are binarised for the linear
models — here we simply omit them, which keeps leaves interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatable import DataTable
from repro.mining.base import Regressor
from repro.mining.features import FeatureSet
from repro.mining.tree.growth import TreeConfig, grow_tree
from repro.mining.tree.structure import TreeNode, iter_nodes, route_rows

__all__ = ["M5ModelTree"]


@dataclass
class _LeafModel:
    feature_names: list[str]
    coefficients: np.ndarray  # intercept first
    means: np.ndarray
    n_samples: int


class M5ModelTree(Regressor):
    """M5-style model tree with ridge linear models in the leaves.

    Parameters
    ----------
    config:
        Structural limits reused from the shared grower (the split test
        itself is the F-test, a monotone proxy for SDR on binary
        partitions).
    ridge:
        L2 regularisation of the leaf models.
    smoothing:
        Quinlan's k parameter for smoothing leaf predictions toward
        ancestor models; 0 disables smoothing.
    """

    def __init__(
        self,
        config: TreeConfig | None = None,
        ridge: float = 1.0,
        smoothing: float = 15.0,
    ):
        super().__init__()
        self.config = config or TreeConfig(max_leaves=40)
        self.ridge = ridge
        self.smoothing = smoothing
        self._root: TreeNode | None = None
        self._models: dict[int, _LeafModel] = {}
        self.n_leaves = 0

    # -- fitting --------------------------------------------------------
    def _fit(self, features: FeatureSet) -> None:
        y = features.interval_target()
        grown = grow_tree(features, y, self.config, mode="f")
        self._root = grown.root
        self.n_leaves = grown.n_leaves
        numeric = [f for f in features.features if f.is_numeric]
        _preds, leaf_ids = route_rows(grown.root, features)
        self._models = {}
        for node in iter_nodes(grown.root):
            rows = np.flatnonzero(leaf_ids == node.node_id)
            if node.is_leaf and rows.size:
                self._models[node.node_id] = self._fit_leaf_model(
                    numeric, y, rows
                )

    def _fit_leaf_model(
        self, numeric_features: list, y: np.ndarray, rows: np.ndarray
    ) -> _LeafModel:
        names = [f.name for f in numeric_features]
        matrix = np.column_stack(
            [f.values[rows] for f in numeric_features]
        ) if numeric_features else np.empty((rows.size, 0))
        if matrix.size:
            present = ~np.isnan(matrix)
            counts = np.maximum(present.sum(axis=0), 1)
            means = np.where(present, matrix, 0.0).sum(axis=0) / counts
        else:
            means = np.empty(0)
        if matrix.size:
            nan_mask = np.isnan(matrix)
            if nan_mask.any():
                matrix = np.where(nan_mask, means[None, :], matrix)
        design = np.hstack([np.ones((rows.size, 1)), matrix - means[None, :]])
        target = y[rows]
        gram = design.T @ design
        gram[1:, 1:] += self.ridge * np.eye(gram.shape[0] - 1)
        try:
            coef = np.linalg.solve(gram, design.T @ target)
        except np.linalg.LinAlgError:
            coef = np.zeros(design.shape[1])
            coef[0] = float(target.mean())
        return _LeafModel(names, coef, means, int(rows.size))

    # -- prediction ----------------------------------------------------------
    def predict(self, table: DataTable) -> np.ndarray:
        self._require_fitted()
        assert self._root is not None
        features = self._features_for(table)
        by_name = {f.name: f for f in features.features}
        n = features.n_rows
        out = np.empty(n, dtype=np.float64)
        stack: list[tuple[TreeNode, np.ndarray, list[TreeNode]]] = [
            (self._root, np.arange(n, dtype=np.int64), [])
        ]
        from repro.mining.tree.structure import partition_indices

        while stack:
            node, idx, ancestors = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = self._leaf_predict(node, idx, by_name, ancestors)
                continue
            for branch, sub in partition_indices(node, features, idx):
                stack.append((branch.child, sub, ancestors + [node]))
        return out

    def _leaf_predict(
        self,
        node: TreeNode,
        idx: np.ndarray,
        by_name: dict,
        ancestors: list[TreeNode],
    ) -> np.ndarray:
        model = self._models.get(node.node_id)
        if model is None:
            return np.full(idx.size, node.prediction)
        columns = []
        for name, mean in zip(model.feature_names, model.means):
            values = by_name[name].values[idx].astype(np.float64)
            values = np.where(np.isnan(values), mean, values)
            columns.append(values - mean)
        design = np.hstack(
            [np.ones((idx.size, 1))]
            + [c[:, None] for c in columns]
        )
        prediction = design @ model.coefficients
        if self.smoothing > 0 and ancestors:
            # Quinlan smoothing: blend toward each ancestor's mean,
            # weighting by subtree support.
            for ancestor in reversed(ancestors):
                n_node = max(model.n_samples, 1)
                prediction = (
                    n_node * prediction + self.smoothing * ancestor.prediction
                ) / (n_node + self.smoothing)
        return prediction
