"""Preprocessing for matrix-based models.

The paper reports that "all variables underwent the standard
pre-processing", that information-losing transformations such as
discretisation were *avoided* for the tree models, and that missing
values were kept as valid data.  Matrix models cannot keep NaNs, so
:class:`MatrixEncoder` applies the conventional treatment instead:
mean-impute + missing-indicator for numerics, one-hot (with missing as
all-zeros) for categoricals, with optional standardisation.

:class:`EqualFrequencyDiscretiser` exists for the ablation the paper
alludes to ("most transformations performed poorly"): it lets the
benches quantify what discretising the inputs costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, FitError, NotFittedError
from repro.mining.features import FeatureSet

__all__ = ["MatrixEncoder", "EqualFrequencyDiscretiser", "standardise_matrix"]


@dataclass
class _NumericEncoding:
    name: str
    mean: float
    scale: float
    add_indicator: bool


@dataclass
class _CategoricalEncoding:
    name: str
    labels: tuple[str, ...]


class MatrixEncoder:
    """Encode a :class:`FeatureSet` into a dense float matrix.

    Parameters
    ----------
    standardise:
        Scale numeric columns to zero mean / unit variance (computed on
        the fitted data; constants get scale 1).
    missing_indicators:
        Append a 0/1 column per numeric feature that has any missing
        values in the fitted data.
    """

    def __init__(self, standardise: bool = True, missing_indicators: bool = True):
        self.standardise = standardise
        self.missing_indicators = missing_indicators
        self._encodings: list[object] | None = None
        self._column_names: list[str] = []

    # -- fitting -------------------------------------------------------
    def fit(self, features: FeatureSet) -> "MatrixEncoder":
        encodings: list[object] = []
        names: list[str] = []
        for feature in features.features:
            if feature.is_numeric:
                present = feature.values[~np.isnan(feature.values)]
                if present.size == 0:
                    # A fully-missing column carries no signal; encode as
                    # zeros + indicator so row counts stay aligned.
                    mean, scale = 0.0, 1.0
                else:
                    mean = float(present.mean())
                    scale = float(present.std())
                    if scale == 0.0:
                        scale = 1.0
                add_ind = self.missing_indicators and bool(
                    np.isnan(feature.values).any()
                )
                encodings.append(
                    _NumericEncoding(feature.name, mean, scale, add_ind)
                )
                names.append(feature.name)
                if add_ind:
                    names.append(f"{feature.name}__missing")
            else:
                encodings.append(
                    _CategoricalEncoding(feature.name, feature.labels)
                )
                names.extend(
                    f"{feature.name}={label}" for label in feature.labels
                )
        if not names:
            raise FitError("encoder produced no columns")
        self._encodings = encodings
        self._column_names = names
        return self

    @property
    def column_names(self) -> list[str]:
        if self._encodings is None:
            raise NotFittedError("MatrixEncoder")
        return list(self._column_names)

    @property
    def n_columns(self) -> int:
        return len(self.column_names)

    # -- transform -----------------------------------------------------------
    def transform(self, features: FeatureSet) -> np.ndarray:
        if self._encodings is None:
            raise NotFittedError("MatrixEncoder")
        blocks: list[np.ndarray] = []
        by_name = {f.name: f for f in features.features}
        for enc in self._encodings:
            feature = by_name.get(enc.name)
            if feature is None:
                raise FitError(
                    f"column {enc.name!r} seen at fit time is absent from "
                    "the transform table"
                )
            if isinstance(enc, _NumericEncoding):
                values = feature.values.astype(np.float64).copy()
                missing = np.isnan(values)
                values[missing] = enc.mean
                if self.standardise:
                    values = (values - enc.mean) / enc.scale
                blocks.append(values[:, None])
                if enc.add_indicator:
                    blocks.append(missing.astype(np.float64)[:, None])
            else:
                codes = feature.values
                onehot = np.zeros(
                    (codes.shape[0], len(enc.labels)), dtype=np.float64
                )
                valid = codes >= 0
                # Labels unseen at fit time (merged vocabularies) stay
                # all-zero like missing values.
                in_range = valid & (codes < len(enc.labels))
                onehot[np.flatnonzero(in_range), codes[in_range]] = 1.0
                blocks.append(onehot)
        return np.hstack(blocks)

    def fit_transform(self, features: FeatureSet) -> np.ndarray:
        return self.fit(features).transform(features)


class EqualFrequencyDiscretiser:
    """Bin numeric values into ``n_bins`` equal-frequency buckets.

    Returns integer bin indices; missing values map to −1.  Used only by
    the discretisation ablation bench — the paper's production models
    kept interval values.
    """

    def __init__(self, n_bins: int = 5):
        if n_bins < 2:
            raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = n_bins
        self._edges: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "EqualFrequencyDiscretiser":
        present = values[~np.isnan(values)]
        if present.size == 0:
            raise FitError("cannot discretise an all-missing column")
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self._edges = np.unique(np.quantile(present, quantiles))
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self._edges is None:
            raise NotFittedError("EqualFrequencyDiscretiser")
        bins = np.searchsorted(self._edges, values, side="right").astype(
            np.int64
        )
        bins[np.isnan(values)] = -1
        return bins

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


def standardise_matrix(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero-mean / unit-variance scale a dense matrix.

    Returns ``(scaled, means, scales)``; constant columns get scale 1.
    """
    means = matrix.mean(axis=0)
    scales = matrix.std(axis=0)
    scales[scales == 0.0] = 1.0
    return (matrix - means) / scales, means, scales
