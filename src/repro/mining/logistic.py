"""Logistic regression via iteratively reweighted least squares.

A supporting model of the paper ("several supporting models, including
logistic regression, neural networks, and naïve Bayesian models, were
configured with 10 times cross-validation").  Ridge-regularised IRLS
(Newton–Raphson on the penalised log-likelihood) over the
:class:`~repro.mining.preprocessing.MatrixEncoder` encoding.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import ConfigurationError, ConvergenceWarning, FitError
from repro.mining.base import BinaryClassifier
from repro.mining.features import FeatureSet
from repro.mining.preprocessing import MatrixEncoder

__all__ = ["LogisticRegressionClassifier"]


class LogisticRegressionClassifier(BinaryClassifier):
    """Binary ridge logistic regression.

    Parameters
    ----------
    ridge:
        L2 penalty on the non-intercept weights (also stabilises IRLS
        under the quasi-separation that extreme CP thresholds create).
    max_iterations / tolerance:
        IRLS stopping rule on the max absolute coefficient update.
    """

    def __init__(
        self,
        ridge: float = 1.0,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
    ):
        super().__init__()
        if ridge < 0:
            raise ConfigurationError(f"ridge must be >= 0, got {ridge}")
        self.ridge = ridge
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._encoder: MatrixEncoder | None = None
        self._weights: np.ndarray | None = None
        self.n_iterations = 0

    def _fit(self, features: FeatureSet) -> None:
        y, labels = features.binary_target()
        self.class_labels = labels
        if y.min() == y.max():
            raise FitError(
                "logistic regression requires both classes in training data"
            )
        self._encoder = MatrixEncoder().fit(features)
        x = self._encoder.transform(features)
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        n, p = design.shape
        penalty = self.ridge * np.eye(p)
        penalty[0, 0] = 0.0  # never penalise the intercept
        weights = np.zeros(p)
        target = y.astype(np.float64)
        converged = False
        for iteration in range(1, self.max_iterations + 1):
            eta = design @ weights
            mu = _sigmoid(eta)
            w = np.maximum(mu * (1.0 - mu), 1e-9)
            gradient = design.T @ (target - mu) - penalty @ weights
            hessian = (design * w[:, None]).T @ design + penalty
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                hessian += 1e-6 * np.eye(p)
                step = np.linalg.solve(hessian, gradient)
            weights = weights + step
            self.n_iterations = iteration
            if np.abs(step).max() < self.tolerance:
                converged = True
                break
        if not converged:
            warnings.warn(
                "IRLS reached its iteration cap without converging; "
                "coefficients may be unstable",
                ConvergenceWarning,
                stacklevel=2,
            )
        self._weights = weights

    @property
    def coefficients(self) -> dict[str, float]:
        """Encoded-column name → fitted weight (plus 'intercept')."""
        self._require_fitted()
        assert self._weights is not None and self._encoder is not None
        names = ["intercept"] + self._encoder.column_names
        return {
            name: float(w) for name, w in zip(names, self._weights)
        }

    def predict_proba(self, table: DataTable) -> np.ndarray:
        self._require_fitted()
        assert self._weights is not None and self._encoder is not None
        features = self._features_for(table)
        x = self._encoder.transform(features)
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        return _sigmoid(design @ self._weights)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out
