"""Common model interface.

Every algorithm in :mod:`repro.mining` follows the same contract:

* ``fit(table, target, include=None)`` — learn from a
  :class:`~repro.datatable.DataTable`; ``include`` optionally pins the
  input columns (otherwise the table schema / default exclusions
  decide).
* binary classifiers expose ``predict_proba`` (P of the positive class)
  and ``predict`` (0/1 at a threshold);
* regressors expose ``predict`` (float values).

Keeping the contract on DataTable rather than raw matrices lets tree
models consume categorical columns and missing values natively while
matrix models encode internally.
"""

from __future__ import annotations

import numpy as np

from repro.datatable import DataTable
from repro.exceptions import NotFittedError
from repro.mining.features import FeatureSet

__all__ = ["Model", "BinaryClassifier", "Regressor"]


class Model:
    """Base class handling fitted-state bookkeeping."""

    def __init__(self) -> None:
        self._fitted = False
        self._input_names: list[str] | None = None
        self._target_name: str | None = None
        self._vocabularies: dict[str, tuple[str, ...]] = {}

    # -- subclass hooks --------------------------------------------------
    def _fit(self, features: FeatureSet) -> None:
        raise NotImplementedError

    # -- public API ------------------------------------------------------
    def fit(
        self,
        table: DataTable,
        target: str,
        include: list[str] | None = None,
    ) -> "Model":
        """Fit the model; returns ``self`` for chaining."""
        features = FeatureSet(table, target, include)
        self._input_names = features.input_names
        self._target_name = target
        self._vocabularies = features.vocabularies()
        self._fit(features)
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def input_names(self) -> list[str]:
        self._require_fitted()
        assert self._input_names is not None
        return list(self._input_names)

    @property
    def target_name(self) -> str:
        self._require_fitted()
        assert self._target_name is not None
        return self._target_name

    @property
    def vocabularies(self) -> dict[str, tuple[str, ...]]:
        """Categorical input name → training label vocabulary."""
        self._require_fitted()
        return dict(self._vocabularies)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(type(self).__name__)

    def _features_for(self, table: DataTable) -> FeatureSet:
        """Build a FeatureSet for prediction with the fitted inputs.

        Prediction tables do not need the target column; a constant
        dummy is injected when it is absent so FeatureSet stays simple.
        Categorical codes are aligned to the training vocabularies so a
        table with its own label ordering still routes correctly.
        """
        self._require_fitted()
        assert self._input_names is not None and self._target_name is not None
        if self._target_name in table:
            features = FeatureSet(table, self._target_name, self._input_names)
        else:
            from repro.datatable import NumericColumn

            dummy = NumericColumn.from_array(
                self._target_name, np.zeros(table.n_rows)
            )
            features = FeatureSet(
                table.with_column(dummy),
                self._target_name,
                self._input_names,
            )
        return features.aligned_to(self._vocabularies)


class BinaryClassifier(Model):
    """Mixin contract for binary classifiers."""

    def __init__(self) -> None:
        super().__init__()
        self.class_labels: tuple[str, str] | None = None
        """(negative, positive) label pair captured at fit time."""

    def predict_proba(self, table: DataTable) -> np.ndarray:
        """P(positive class) per row."""
        raise NotImplementedError

    def predict(self, table: DataTable, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions at the given probability threshold."""
        return (self.predict_proba(table) >= threshold).astype(np.int64)

    def predict_labels(
        self, table: DataTable, threshold: float = 0.5
    ) -> list[str]:
        """Predictions as the original class labels."""
        self._require_fitted()
        assert self.class_labels is not None
        negative, positive = self.class_labels
        return [
            positive if flag else negative
            for flag in self.predict(table, threshold)
        ]


class Regressor(Model):
    """Mixin contract for interval-target models."""

    def predict(self, table: DataTable) -> np.ndarray:
        """Predicted target value per row."""
        raise NotImplementedError
