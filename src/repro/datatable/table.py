"""A small immutable columnar table.

:class:`DataTable` is the data interchange type of the whole library:
the synthetic road generator produces one, the CP-k threshold builder
derives new ones, and every model consumes one.  It deliberately covers
only the operations this study needs — selection, filtering, vertical
concatenation, grouping, stratified splitting — with explicit missing
value handling, rather than trying to be a general dataframe.

Tables are immutable: every operation returns a new table that shares
(read-only) column arrays where possible.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.datatable.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.datatable.schema import ColumnSpec, TableSchema
from repro.exceptions import (
    ConfigurationError,
    EmptyTableError,
    MissingColumnError,
    RowIndexError,
    SchemaError,
)

__all__ = ["DataTable"]


class DataTable:
    """An ordered collection of equally-long named columns.

    Parameters
    ----------
    columns:
        Column objects; their names must be unique and lengths equal.
    schema:
        Optional :class:`TableSchema` describing roles / levels.  The
        schema's names need not cover every column (derived columns such
        as fold indices are allowed), but any schema name that is
        missing from the data is an error.
    """

    def __init__(
        self, columns: Sequence[Column], schema: TableSchema | None = None
    ):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(
                "columns have unequal lengths: "
                + ", ".join(f"{c.name}={len(c)}" for c in columns)
            )
        self._columns: dict[str, Column] = {c.name: c for c in columns}
        self._n_rows = lengths.pop() if lengths else 0
        if schema is not None:
            for spec in schema:
                if spec.name not in self._columns:
                    raise SchemaError(
                        f"schema declares column {spec.name!r} that is not "
                        "present in the table"
                    )
        self.schema = schema

    # -- construction -----------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Iterable],
        schema: TableSchema | None = None,
    ) -> "DataTable":
        """Build a table from a mapping of name → values.

        Numpy float arrays become numeric columns directly; other
        iterables are type-inferred via
        :func:`~repro.datatable.column.column_from_values`.
        """
        columns: list[Column] = []
        for name, values in data.items():
            try:
                if isinstance(values, Column):
                    columns.append(values.rename(name))
                elif isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
                    columns.append(NumericColumn.from_array(name, values))
                else:
                    columns.append(column_from_values(name, values))
            except SchemaError:
                raise
            except (TypeError, ValueError) as exc:
                raise SchemaError(f"column {name!r}: {exc}") from exc
        return cls(columns, schema=schema)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, object]],
        schema: TableSchema | None = None,
    ) -> "DataTable":
        """Build a table from a sequence of dict-like rows.

        Every row must have the same keys; absent keys are an error (use
        an explicit ``None`` for missing values).
        """
        if not rows:
            return cls([], schema=schema)
        names = list(rows[0])
        for i, row in enumerate(rows):
            if list(row) != names:
                missing = [n for n in names if n not in row]
                extra = [n for n in row if n not in names]
                if missing or extra:
                    detail = "; ".join(
                        f"{what} column(s) {cols}"
                        for what, cols in (
                            ("missing", missing), ("unexpected", extra)
                        )
                        if cols
                    )
                    raise SchemaError(f"row {i}: {detail} (vs row 0)")
                raise SchemaError(
                    f"row {i}: columns ordered {list(row)}, "
                    f"row 0 ordered {names}"
                )
        data = {name: [row[name] for row in rows] for name in names}
        return cls.from_columns(data, schema=schema)

    @classmethod
    def empty(cls) -> "DataTable":
        return cls([])

    # -- basic properties ---------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise MissingColumnError(name, tuple(self._columns)) from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def numeric(self, name: str) -> np.ndarray:
        """Float values of a numeric column (NaN where missing)."""
        col = self.column(name)
        if not isinstance(col, NumericColumn):
            raise SchemaError(f"column {name!r} is not numeric")
        return col.values

    def categorical(self, name: str) -> CategoricalColumn:
        col = self.column(name)
        if not isinstance(col, CategoricalColumn):
            raise SchemaError(f"column {name!r} is not categorical")
        return col

    def columns(self) -> list[Column]:
        return list(self._columns.values())

    # -- row access ----------------------------------------------------------
    def row(self, index: int) -> dict[str, object]:
        """One row as a plain dict (labels / floats / None)."""
        if not -self._n_rows <= index < self._n_rows:
            raise RowIndexError(
                f"row index {index} out of range for table of {self._n_rows} rows"
            )
        if index < 0:
            index += self._n_rows
        out: dict[str, object] = {}
        for name, col in self._columns.items():
            if isinstance(col, NumericColumn):
                v = col.values[index]
                out[name] = None if np.isnan(v) else float(v)
            else:
                code = col.codes[index]
                out[name] = None if code == -1 else col.labels[code]
        return out

    def to_rows(self, limit: int | None = None) -> list[dict[str, object]]:
        """Rows as plain dicts, materialised column-wise.

        Each column is converted once through its vectorised
        ``to_objects`` kernel and the dicts are zipped together — the
        batch replacement for calling :meth:`row` in a loop.  ``limit``
        caps the output to the first ``limit`` rows without converting
        the rest of the table.
        """
        source = self if limit is None else self.slice(0, limit)
        names = source.column_names
        if not names:
            return []
        objects = [col.to_objects() for col in source._columns.values()]
        return [dict(zip(names, values)) for values in zip(*objects)]

    # -- column-wise transformations -----------------------------------------
    def select(self, names: Sequence[str]) -> "DataTable":
        """Table restricted to the given columns, in the given order."""
        cols = [self.column(n) for n in names]
        schema = self.schema.subset(list(names)) if self.schema else None
        return DataTable(cols, schema=schema)

    def drop(self, *names: str) -> "DataTable":
        for n in names:
            self.column(n)
        keep = [n for n in self._columns if n not in names]
        return self.select(keep)

    def with_column(self, column: Column) -> "DataTable":
        """Table with ``column`` appended or replaced (by name).

        When the replacement changes the column's kind (numeric vs
        categorical), any schema spec for that name is stale — its
        declared measurement level no longer describes the data — so
        the spec is dropped rather than re-validated against the old
        declaration.
        """
        if self._columns and len(column) != self._n_rows:
            raise SchemaError(
                f"new column {column.name!r} has {len(column)} rows, "
                f"table has {self._n_rows}"
            )
        schema = self.schema
        if schema is not None and column.name in schema:
            spec = schema[column.name]
            if spec.level.is_categorical == column.is_numeric:
                schema = TableSchema(
                    [s for s in schema if s.name != column.name]
                )
        cols = [c for n, c in self._columns.items() if n != column.name]
        cols.append(column)
        return DataTable(cols, schema=schema)

    def rename(self, mapping: Mapping[str, str]) -> "DataTable":
        """Table with columns renamed; schema specs follow their columns."""
        for old in mapping:
            self.column(old)
        cols = [
            col.rename(mapping.get(name, name))
            for name, col in self._columns.items()
        ]
        schema = None
        if self.schema is not None:
            schema = TableSchema(
                [
                    ColumnSpec(
                        mapping.get(s.name, s.name),
                        s.level,
                        s.role,
                        s.description,
                        s.units,
                    )
                    for s in self.schema
                ]
            )
        return DataTable(cols, schema=schema)

    def with_schema(self, schema: TableSchema) -> "DataTable":
        return DataTable(list(self._columns.values()), schema=schema)

    # -- row-wise transformations ----------------------------------------------
    def take(self, indices: np.ndarray) -> "DataTable":
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < -self._n_rows or indices.max() >= self._n_rows
        ):
            raise RowIndexError(
                f"take indices out of range for table of {self._n_rows} rows"
            )
        return DataTable(
            [c.take(indices) for c in self._columns.values()], schema=self.schema
        )

    def filter(self, mask: np.ndarray) -> "DataTable":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._n_rows,):
            raise SchemaError(
                f"filter mask of shape {mask.shape} does not match "
                f"{self._n_rows} rows"
            )
        return self.take(np.flatnonzero(mask))

    def slice(self, start: int, stop: int | None = None) -> "DataTable":
        """Zero-copy contiguous row span ``[start, stop)``.

        Python slice semantics (negative indices, clamping) apply; the
        returned table's columns are read-only *views* into this
        table's arrays, so slicing a million-row table costs nothing.
        """
        bounds = slice(start, stop).indices(self._n_rows)
        return DataTable(
            [c.slice(bounds[0], bounds[1]) for c in self._columns.values()],
            schema=self.schema,
        )

    def head(self, n: int = 5) -> "DataTable":
        return self.slice(0, max(n, 0))

    def concat(self, other: "DataTable") -> "DataTable":
        """Vertical concatenation; both tables must share column names."""
        if self._n_rows == 0 and not self._columns:
            return other
        if list(self._columns) != list(other._columns):
            raise SchemaError(
                "cannot concat tables with different columns: "
                f"{list(self._columns)} vs {list(other._columns)}"
            )
        cols = [
            self._columns[name].concat(other._columns[name])
            for name in self._columns
        ]
        return DataTable(cols, schema=self.schema)

    def shuffle(self, rng: np.random.Generator) -> "DataTable":
        return self.take(rng.permutation(self._n_rows))

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        replace: bool = False,
    ) -> "DataTable":
        if n > self._n_rows and not replace:
            raise EmptyTableError(
                f"cannot sample {n} rows without replacement from "
                f"{self._n_rows}"
            )
        idx = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take(idx)

    def sort_by(self, name: str, descending: bool = False) -> "DataTable":
        """Stable sort by one column; missing values sort last."""
        col = self.column(name)
        if isinstance(col, NumericColumn):
            keys = col.values.copy()
            keys[np.isnan(keys)] = np.inf if not descending else -np.inf
        else:
            keys = col.codes.astype(np.float64)
            keys[keys == -1] = np.inf if not descending else -np.inf
        order = np.argsort(-keys if descending else keys, kind="stable")
        return self.take(order)

    # -- grouping & splitting --------------------------------------------------
    def group_by(self, name: str) -> dict[object, "DataTable"]:
        """Partition rows by the values of one column.

        Missing values group under ``None``.  Group order follows first
        appearance for categoricals and ascending value for numerics.
        """
        col = self.column(name)
        groups: dict[object, DataTable] = {}
        if isinstance(col, NumericColumn):
            values = col.values
            missing = np.isnan(values)
            present = np.flatnonzero(~missing)
            # One stable argsort replaces a full-table mask scan per
            # distinct value; within each run the original (ascending)
            # row order is preserved, exactly like filtering by mask.
            order = present[np.argsort(values[present], kind="stable")]
            sorted_values = values[order]
            boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [order.size]))
            for lo, hi in zip(starts, stops):
                if hi > lo:
                    groups[float(sorted_values[lo])] = self.take(order[lo:hi])
            if missing.any():
                groups[None] = self.take(np.flatnonzero(missing))
        else:
            codes = col.codes
            order = np.argsort(codes, kind="stable")
            # Missing (-1) codes sort first; counts are offset by one so
            # every vocabulary level gets a contiguous [start, stop) run.
            counts = np.bincount(codes + 1, minlength=len(col.labels) + 1)
            stops = np.cumsum(counts)
            for code, label in enumerate(col.labels):
                lo, hi = stops[code], stops[code + 1]
                if hi > lo:
                    groups[label] = self.take(order[lo:hi])
            if counts[0]:
                groups[None] = self.take(order[: counts[0]])
        return groups

    def split(
        self,
        train_fraction: float,
        rng: np.random.Generator,
        stratify_by: str | None = None,
    ) -> tuple["DataTable", "DataTable"]:
        """Random train/validation partition.

        With ``stratify_by``, the split is performed within each level of
        the named (categorical) column so both partitions keep the class
        distribution — important for the paper's heavily imbalanced CP-k
        targets, where a plain split can starve the minority class.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ConfigurationError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        if self._n_rows < 2:
            raise EmptyTableError("need at least 2 rows to split")
        if stratify_by is None:
            perm = rng.permutation(self._n_rows)
            cut = int(round(self._n_rows * train_fraction))
            cut = min(max(cut, 1), self._n_rows - 1)
            return self.take(perm[:cut]), self.take(perm[cut:])
        col = self.categorical(stratify_by)
        train_idx: list[np.ndarray] = []
        valid_idx: list[np.ndarray] = []
        for code in range(-1, len(col.labels)):
            members = np.flatnonzero(col.codes == code)
            if members.size == 0:
                continue
            members = rng.permutation(members)
            cut = int(round(members.size * train_fraction))
            if members.size >= 2:
                cut = min(max(cut, 1), members.size - 1)
            train_idx.append(members[:cut])
            valid_idx.append(members[cut:])
        train = np.sort(np.concatenate(train_idx))
        valid = np.sort(np.concatenate(valid_idx)) if valid_idx else np.array([], dtype=np.int64)
        return self.take(train), self.take(valid)

    # -- summaries -------------------------------------------------------------
    def describe(self) -> dict[str, dict]:
        """Per-column summary statistics."""
        return {name: col.summary() for name, col in self._columns.items()}

    def equals(self, other: "DataTable") -> bool:
        if list(self._columns) != list(other._columns):
            return False
        return all(
            self._columns[n].equals(other._columns[n]) for n in self._columns
        )

    def __repr__(self) -> str:
        return (
            f"DataTable({self._n_rows} rows × {self.n_columns} columns: "
            f"{', '.join(self._columns)})"
        )
