"""CSV and binary import / export for :class:`~repro.datatable.DataTable`.

The road authority's extracts arrive as flat CSV files; this module
provides a loss-aware round trip: missing values serialise as empty
fields, numeric columns are detected by attempting float parsing over
the full column, and everything else becomes categorical.

Parsing is chunked and vectorised: rows stream through the stdlib
``csv`` reader (which handles quoting in C) in 64k-row blocks, and
column typing happens on whole string arrays — one numpy cast per
column instead of a python ``float()`` per cell.  Columns numpy cannot
cast retry through the legacy per-cell path, so anything the old
parser accepted still parses identically.

The binary fast path lives in :mod:`repro.datatable.binary` and is
re-exported here: :func:`write_binary` / :func:`read_binary` persist
and memory-map ``.rpdt`` artefacts, and :func:`cached_read_csv` keeps
a checksummed sidecar so the second load of the same CSV skips the
parse entirely.
"""

from __future__ import annotations

import csv
import io
import itertools
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.datatable.binary import (
    cached_read_csv,
    default_cache_path,
    read_binary,
    read_binary_header,
    write_binary,
)
from repro.datatable.column import CategoricalColumn, Column, NumericColumn
from repro.datatable.table import DataTable
from repro.exceptions import SchemaError

__all__ = [
    "write_csv",
    "read_csv",
    "to_csv_string",
    "from_csv_string",
    "write_binary",
    "read_binary",
    "read_binary_header",
    "cached_read_csv",
    "default_cache_path",
]

#: Rows parsed per chunk; bounds transient memory while keeping the
#: per-chunk numpy fixed costs negligible.
_CHUNK_ROWS = 65536


def write_csv(table: DataTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as UTF-8 CSV with a header row."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def to_csv_string(table: DataTable) -> str:
    """Render ``table`` as a CSV string (used by reports and tests)."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def _write(table: DataTable, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.column_names)
    object_columns = [col.to_objects() for col in table.columns()]
    writer.writerows(
        ["" if value is None else _render(value) for value in row]
        for row in zip(*object_columns)
    )


def _render(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def read_csv(path: str | Path) -> DataTable:
    """Read a CSV file written by :func:`write_csv` (or compatible)."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return _read(handle)


def from_csv_string(text: str) -> DataTable:
    return _read(io.StringIO(text))


def _read(handle: TextIO) -> DataTable:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input has no header row") from None
    if len(set(header)) != len(header):
        raise SchemaError(f"CSV header contains duplicate names: {header}")
    n_cols = len(header)
    chunks: list[np.ndarray] = []
    rows_seen = 0
    while True:
        chunk = list(itertools.islice(reader, _CHUNK_ROWS))
        if not chunk:
            break
        widths = np.fromiter(map(len, chunk), dtype=np.int64, count=len(chunk))
        if (widths != n_cols).any():
            bad = int(np.flatnonzero(widths != n_cols)[0])
            raise SchemaError(
                f"CSV line {rows_seen + bad + 2} has {widths[bad]} fields, "
                f"expected {n_cols}"
            )
        block = np.empty((len(chunk), n_cols), dtype=object)
        block[:] = chunk
        chunks.append(block)
        rows_seen += len(chunk)
    if chunks:
        cells = np.concatenate(chunks, axis=0)
    else:
        cells = np.empty((0, n_cols), dtype=object)
    columns = [
        _parse_column_array(name, cells[:, j])
        for j, name in enumerate(header)
    ]
    return DataTable(columns)


def _parse_column_array(name: str, cells: np.ndarray) -> Column:
    """Type one raw string column: all-floats → numeric, else labels.

    The numeric attempt is a single vectorised cast with empty fields
    mapped to NaN.  numpy's string-to-float grammar is a subset of
    python's (no underscore separators, for instance), so a failed cast
    retries cell-by-cell with ``float`` before falling back to a
    categorical column — the legacy parser's exact behaviour.
    """
    empty = cells == ""
    try:
        values = np.where(empty, "nan", cells).astype(np.float64)
    except ValueError:
        return _parse_column_fallback(name, cells, empty)
    if empty.any():
        values = np.where(empty, np.nan, values)
    return NumericColumn.from_array(name, values)


def _parse_column_fallback(
    name: str, cells: np.ndarray, empty: np.ndarray
) -> Column:
    parsed: list = []
    numeric = True
    for cell in cells:
        if cell == "":
            parsed.append(None)
            continue
        try:
            parsed.append(float(cell))
        except ValueError:
            numeric = False
            break
    if numeric:
        return NumericColumn(name, parsed)
    labels = cells.copy()
    labels[empty] = None
    return CategoricalColumn(name, labels)
