"""CSV import / export for :class:`~repro.datatable.DataTable`.

The road authority's extracts arrive as flat CSV files; this module
provides a loss-aware round trip: missing values serialise as empty
fields, numeric columns are detected by attempting float parsing over
the full column, and everything else becomes categorical.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO

from repro.datatable.table import DataTable
from repro.exceptions import SchemaError

__all__ = ["write_csv", "read_csv", "to_csv_string", "from_csv_string"]


def write_csv(table: DataTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as UTF-8 CSV with a header row."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(table, handle)


def to_csv_string(table: DataTable) -> str:
    """Render ``table`` as a CSV string (used by reports and tests)."""
    buffer = io.StringIO()
    _write(table, buffer)
    return buffer.getvalue()


def _write(table: DataTable, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(table.column_names)
    object_columns = [col.to_objects() for col in table.columns()]
    for i in range(table.n_rows):
        writer.writerow(
            ["" if col[i] is None else _render(col[i]) for col in object_columns]
        )


def _render(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def read_csv(path: str | Path) -> DataTable:
    """Read a CSV file written by :func:`write_csv` (or compatible)."""
    with open(path, "r", newline="", encoding="utf-8") as handle:
        return _read(handle)


def from_csv_string(text: str) -> DataTable:
    return _read(io.StringIO(text))


def _read(handle: TextIO) -> DataTable:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input has no header row") from None
    if len(set(header)) != len(header):
        raise SchemaError(f"CSV header contains duplicate names: {header}")
    raw_columns: list[list[str]] = [[] for _ in header]
    for row_number, row in enumerate(reader, start=2):
        if len(row) != len(header):
            raise SchemaError(
                f"CSV line {row_number} has {len(row)} fields, "
                f"expected {len(header)}"
            )
        for cell, column in zip(row, raw_columns):
            column.append(cell)
    data = {
        name: _parse_column(cells) for name, cells in zip(header, raw_columns)
    }
    return DataTable.from_columns(data)


def _parse_column(cells: list[str]) -> list:
    """Parse one raw string column: all-floats → numeric, else labels."""
    parsed: list = []
    numeric = True
    for cell in cells:
        if cell == "":
            parsed.append(None)
            continue
        try:
            parsed.append(float(cell))
        except ValueError:
            numeric = False
            break
    if numeric:
        return parsed
    return [None if cell == "" else cell for cell in cells]
