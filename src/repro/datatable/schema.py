"""Column roles and measurement levels for :class:`~repro.datatable.DataTable`.

The paper configures its SAS / WEKA models by assigning each variable a
*role* (input, target, identifier, rejected) and a *measurement level*
(interval or nominal; binary targets are nominal with two levels).  The
same vocabulary is used here so that model code can be written against a
schema rather than hard-coded column lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import MissingColumnError, SchemaError

__all__ = ["Role", "MeasurementLevel", "ColumnSpec", "TableSchema"]


class Role(Enum):
    """The modelling role a column plays."""

    INPUT = "input"
    TARGET = "target"
    ID = "id"
    REJECTED = "rejected"


class MeasurementLevel(Enum):
    """Statistical measurement level of a column.

    ``INTERVAL``
        Real-valued; differences are meaningful (skid resistance, AADT).
    ``NOMINAL``
        Unordered categories (surface type, road class).
    ``BINARY``
        A nominal column with exactly two levels; the paper's Boolean
        crash-proneness targets are binary.
    """

    INTERVAL = "interval"
    NOMINAL = "nominal"
    BINARY = "binary"

    @property
    def is_categorical(self) -> bool:
        return self in (MeasurementLevel.NOMINAL, MeasurementLevel.BINARY)


@dataclass(frozen=True)
class ColumnSpec:
    """Declared name, level and role of one column.

    Parameters
    ----------
    name:
        Column name as it appears in the table.
    level:
        Measurement level; drives which split tests / likelihoods apply.
    role:
        Modelling role.  Exactly one TARGET is allowed per schema.
    description:
        Free-text documentation carried through to reports.
    units:
        Physical units for interval columns (documentation only).
    """

    name: str
    level: MeasurementLevel
    role: Role = Role.INPUT
    description: str = ""
    units: str = ""

    def with_role(self, role: Role) -> "ColumnSpec":
        """Return a copy of this spec with a different role."""
        return ColumnSpec(self.name, self.level, role, self.description, self.units)


@dataclass
class TableSchema:
    """An ordered collection of :class:`ColumnSpec`.

    The schema is intentionally lightweight: it does not own data, it
    only records how each column should be treated by models and
    reports.  ``DataTable`` instances may carry a schema but never
    require one.
    """

    specs: list[ColumnSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate column specs: {sorted(dupes)}")
        targets = [s for s in self.specs if s.role is Role.TARGET]
        if len(targets) > 1:
            raise SchemaError(
                "schema declares multiple targets: "
                + ", ".join(s.name for s in targets)
            )

    # -- lookup ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __getitem__(self, name: str) -> ColumnSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise MissingColumnError(name, tuple(s.name for s in self.specs))

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.specs]

    @property
    def target(self) -> ColumnSpec | None:
        """The single TARGET spec, or ``None`` if no target is declared."""
        for spec in self.specs:
            if spec.role is Role.TARGET:
                return spec
        return None

    def inputs(self) -> list[ColumnSpec]:
        """Specs with the INPUT role, in declaration order."""
        return [s for s in self.specs if s.role is Role.INPUT]

    def input_names(self) -> list[str]:
        return [s.name for s in self.inputs()]

    def interval_inputs(self) -> list[str]:
        return [
            s.name
            for s in self.inputs()
            if s.level is MeasurementLevel.INTERVAL
        ]

    def nominal_inputs(self) -> list[str]:
        return [s.name for s in self.inputs() if s.level.is_categorical]

    # -- construction helpers -------------------------------------------
    def add(self, spec: ColumnSpec) -> "TableSchema":
        """Return a new schema with ``spec`` appended."""
        return TableSchema(self.specs + [spec])

    def with_target(self, name: str) -> "TableSchema":
        """Return a new schema in which ``name`` is the (only) target.

        Any previous target is demoted to INPUT.  Raises
        :class:`MissingColumnError` if ``name`` is not in the schema.
        """
        self[name]  # raise early if absent
        new_specs = []
        for spec in self.specs:
            if spec.name == name:
                new_specs.append(spec.with_role(Role.TARGET))
            elif spec.role is Role.TARGET:
                new_specs.append(spec.with_role(Role.INPUT))
            else:
                new_specs.append(spec)
        return TableSchema(new_specs)

    def reject(self, *names: str) -> "TableSchema":
        """Return a new schema with the given columns marked REJECTED."""
        for name in names:
            self[name]
        return TableSchema(
            [
                s.with_role(Role.REJECTED) if s.name in names else s
                for s in self.specs
            ]
        )

    def subset(self, names: list[str]) -> "TableSchema":
        """Schema restricted to ``names``, preserving declaration order."""
        wanted = set(names)
        return TableSchema([s for s in self.specs if s.name in wanted])
