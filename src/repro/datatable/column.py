"""Typed columns with explicit missing-value masks.

Two concrete column kinds exist:

:class:`NumericColumn`
    float64 values; missing values are stored as NaN but always queried
    through :meth:`Column.missing_mask` so callers never test NaN
    directly.

:class:`CategoricalColumn`
    Integer codes into a label vocabulary; code ``-1`` means missing.

The paper keeps missing values as "valid data" for its tree models, so
columns must round-trip missingness losslessly rather than imputing at
ingest time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ColumnTypeError, SchemaError

__all__ = ["Column", "NumericColumn", "CategoricalColumn", "column_from_values"]

_MISSING_CODE = -1


class Column:
    """Abstract base for a single named, typed column of data."""

    name: str

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def is_numeric(self) -> bool:
        raise NotImplementedError

    def missing_mask(self) -> np.ndarray:
        """Boolean array, True where the value is missing."""
        raise NotImplementedError

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def take(self, indices: np.ndarray) -> "Column":
        """New column with rows re-ordered / subset by integer indices."""
        raise NotImplementedError

    def filter(self, mask: np.ndarray) -> "Column":
        """New column keeping rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise SchemaError(
                f"filter mask length {mask.shape} does not match column "
                f"{self.name!r} of length {len(self)}"
            )
        return self.take(np.flatnonzero(mask))

    def concat(self, other: "Column") -> "Column":
        """New column with ``other``'s rows appended."""
        raise NotImplementedError

    def to_objects(self) -> list:
        """Python-object view (floats / labels / None) for CSV export."""
        raise NotImplementedError

    def rename(self, name: str) -> "Column":
        raise NotImplementedError

    def equals(self, other: "Column") -> bool:
        """Value equality including missingness and (for categoricals) labels."""
        raise NotImplementedError


class NumericColumn(Column):
    """An interval-scaled column backed by a float64 array.

    Parameters
    ----------
    name:
        Column name.
    values:
        Any sequence coercible to float; ``None`` entries become missing.
    """

    def __init__(self, name: str, values: Iterable):
        self.name = name
        arr = np.asarray(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )
        if arr.ndim != 1:
            raise SchemaError(
                f"numeric column {name!r} requires 1-D data, got shape {arr.shape}"
            )
        self._values = arr
        self._values.flags.writeable = False

    @classmethod
    def from_array(cls, name: str, array: np.ndarray) -> "NumericColumn":
        """Wrap an existing float array without per-element conversion."""
        col = cls.__new__(cls)
        col.name = name
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 1:
            raise SchemaError(
                f"numeric column {name!r} requires 1-D data, got shape {arr.shape}"
            )
        col._values = arr.copy()
        col._values.flags.writeable = False
        return col

    def __len__(self) -> int:
        return self._values.shape[0]

    @property
    def is_numeric(self) -> bool:
        return True

    @property
    def values(self) -> np.ndarray:
        """Read-only float64 view; missing entries are NaN."""
        return self._values

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._values)

    def present_values(self) -> np.ndarray:
        """Only the non-missing values."""
        return self._values[~self.missing_mask()]

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn.from_array(self.name, self._values[indices])

    def concat(self, other: Column) -> "NumericColumn":
        if not isinstance(other, NumericColumn):
            raise ColumnTypeError(
                f"cannot concat numeric column {self.name!r} with "
                f"{type(other).__name__}"
            )
        return NumericColumn.from_array(
            self.name, np.concatenate([self._values, other._values])
        )

    def to_objects(self) -> list:
        return [None if np.isnan(v) else float(v) for v in self._values]

    def rename(self, name: str) -> "NumericColumn":
        return NumericColumn.from_array(name, self._values)

    def equals(self, other: Column) -> bool:
        if not isinstance(other, NumericColumn) or len(self) != len(other):
            return False
        a, b = self._values, other._values
        both_nan = np.isnan(a) & np.isnan(b)
        with np.errstate(invalid="ignore"):
            same = (a == b) | both_nan
        return bool(same.all())

    # -- statistics ------------------------------------------------------
    def summary(self) -> dict:
        """Five-number-style summary over present values."""
        present = self.present_values()
        if present.size == 0:
            return {
                "count": 0, "missing": len(self), "mean": float("nan"),
                "std": float("nan"), "min": float("nan"),
                "median": float("nan"), "max": float("nan"),
            }
        return {
            "count": int(present.size),
            "missing": self.n_missing(),
            "mean": float(present.mean()),
            "std": float(present.std(ddof=1)) if present.size > 1 else 0.0,
            "min": float(present.min()),
            "median": float(np.median(present)),
            "max": float(present.max()),
        }

    def __repr__(self) -> str:
        return f"NumericColumn({self.name!r}, n={len(self)}, missing={self.n_missing()})"


class CategoricalColumn(Column):
    """A nominal column stored as integer codes into a label list.

    Parameters
    ----------
    name:
        Column name.
    values:
        Sequence of hashable labels; ``None`` entries become missing.
    labels:
        Optional explicit vocabulary.  When given, all present values
        must belong to it; this keeps train/validation splits sharing a
        single code space.
    """

    def __init__(
        self,
        name: str,
        values: Iterable,
        labels: Sequence[str] | None = None,
    ):
        self.name = name
        values = list(values)
        if labels is None:
            seen: dict[str, int] = {}
            for v in values:
                if v is not None and v not in seen:
                    seen[v] = len(seen)
            self._labels = tuple(seen)
        else:
            self._labels = tuple(labels)
            if len(set(self._labels)) != len(self._labels):
                raise SchemaError(
                    f"categorical column {name!r} has duplicate labels"
                )
        index = {label: code for code, label in enumerate(self._labels)}
        codes = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            if v is None:
                codes[i] = _MISSING_CODE
            else:
                try:
                    codes[i] = index[v]
                except KeyError:
                    raise SchemaError(
                        f"value {v!r} not in vocabulary of column {name!r}"
                    ) from None
        self._codes = codes
        self._codes.flags.writeable = False

    @classmethod
    def from_codes(
        cls, name: str, codes: np.ndarray, labels: Sequence[str]
    ) -> "CategoricalColumn":
        """Wrap existing integer codes (−1 = missing) with a vocabulary."""
        col = cls.__new__(cls)
        col.name = name
        col._labels = tuple(labels)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.max(initial=-1) >= len(col._labels)):
            raise SchemaError(
                f"code out of range for column {name!r} "
                f"(max {codes.max()}, vocabulary size {len(col._labels)})"
            )
        if codes.size and codes.min(initial=0) < _MISSING_CODE:
            raise SchemaError(f"negative code below missing marker in {name!r}")
        col._codes = codes.copy()
        col._codes.flags.writeable = False
        return col

    def __len__(self) -> int:
        return self._codes.shape[0]

    @property
    def is_numeric(self) -> bool:
        return False

    @property
    def codes(self) -> np.ndarray:
        """Read-only int64 codes; −1 marks missing."""
        return self._codes

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    def missing_mask(self) -> np.ndarray:
        return self._codes == _MISSING_CODE

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn.from_codes(
            self.name, self._codes[indices], self._labels
        )

    def concat(self, other: Column) -> "CategoricalColumn":
        if not isinstance(other, CategoricalColumn):
            raise ColumnTypeError(
                f"cannot concat categorical column {self.name!r} with "
                f"{type(other).__name__}"
            )
        if other._labels == self._labels:
            return CategoricalColumn.from_codes(
                self.name,
                np.concatenate([self._codes, other._codes]),
                self._labels,
            )
        # Re-encode the other column into a merged vocabulary.
        merged = list(self._labels)
        for label in other._labels:
            if label not in merged:
                merged.append(label)
        remap = np.array(
            [merged.index(lbl) for lbl in other._labels], dtype=np.int64
        )
        other_codes = np.where(
            other._codes == _MISSING_CODE,
            _MISSING_CODE,
            remap[np.clip(other._codes, 0, None)],
        )
        return CategoricalColumn.from_codes(
            self.name, np.concatenate([self._codes, other_codes]), merged
        )

    def to_objects(self) -> list:
        return [
            None if c == _MISSING_CODE else self._labels[c] for c in self._codes
        ]

    def rename(self, name: str) -> "CategoricalColumn":
        return CategoricalColumn.from_codes(name, self._codes, self._labels)

    def equals(self, other: Column) -> bool:
        if not isinstance(other, CategoricalColumn) or len(self) != len(other):
            return False
        return self.to_objects() == other.to_objects()

    # -- statistics ------------------------------------------------------
    def value_counts(self) -> dict[str, int]:
        """Label → count over present values, in vocabulary order."""
        counts = np.bincount(
            self._codes[self._codes != _MISSING_CODE],
            minlength=len(self._labels),
        )
        return {label: int(n) for label, n in zip(self._labels, counts)}

    def summary(self) -> dict:
        counts = self.value_counts()
        mode = max(counts, key=counts.get) if counts else None
        return {
            "count": int(len(self) - self.n_missing()),
            "missing": self.n_missing(),
            "levels": len(self._labels),
            "mode": mode,
        }

    def __repr__(self) -> str:
        return (
            f"CategoricalColumn({self.name!r}, n={len(self)}, "
            f"levels={len(self._labels)}, missing={self.n_missing()})"
        )


def column_from_values(name: str, values: Iterable) -> Column:
    """Build the appropriate column type by inspecting the values.

    ints / floats / None → :class:`NumericColumn`; anything else →
    :class:`CategoricalColumn`.  Mixed numeric and string data is a
    schema error rather than a silent coercion.
    """
    values = list(values)
    kinds = {
        type(v) for v in values if v is not None
    }
    numeric_kinds = {int, float, np.float64, np.int64, np.int32, np.float32, bool}
    if not kinds or kinds <= numeric_kinds:
        return NumericColumn(name, values)
    if any(k in numeric_kinds for k in kinds):
        raise SchemaError(
            f"column {name!r} mixes numeric and non-numeric values"
        )
    return CategoricalColumn(name, values)
