"""Typed columns with explicit missing-value masks.

Two concrete column kinds exist:

:class:`NumericColumn`
    float64 values; missing values are stored as NaN but always queried
    through :meth:`Column.missing_mask` so callers never test NaN
    directly.

:class:`CategoricalColumn`
    Integer codes into a label vocabulary; code ``-1`` means missing.

The paper keeps missing values as "valid data" for its tree models, so
columns must round-trip missingness losslessly rather than imputing at
ingest time.

Hot paths (``take``/``concat``/``slice``/``to_objects``/``equals``) are
contiguous-numpy kernels with no python-object round-trips: row
selection wraps the freshly-indexed array without a second copy,
``slice`` returns a zero-copy view, and equality compares raw
value/code arrays.  The arrays backing a column are always read-only,
which is what makes the zero-copy sharing safe.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ColumnTypeError, SchemaError

__all__ = ["Column", "NumericColumn", "CategoricalColumn", "column_from_values"]

_MISSING_CODE = -1


def _object_array(values: Iterable) -> np.ndarray:
    """1-D object array of ``values`` (kept as python objects)."""
    values = list(values)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    if arr.ndim != 1:
        raise SchemaError(f"column data must be 1-D, got shape {arr.shape}")
    return arr


def _none_mask(arr: np.ndarray) -> np.ndarray:
    """Boolean mask of ``None`` entries in an object array."""
    # Elementwise __eq__ against None runs in numpy's C loop; only the
    # literal None compares equal, so this is exactly ``v is None``.
    return np.asarray(np.equal(arr, None), dtype=bool)


class Column:
    """Abstract base for a single named, typed column of data."""

    name: str

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def is_numeric(self) -> bool:
        raise NotImplementedError

    def missing_mask(self) -> np.ndarray:
        """Boolean array, True where the value is missing."""
        raise NotImplementedError

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def take(self, indices: np.ndarray) -> "Column":
        """New column with rows re-ordered / subset by integer indices."""
        raise NotImplementedError

    def slice(self, start: int, stop: int) -> "Column":
        """Zero-copy view of rows ``[start, stop)`` (python slice rules)."""
        raise NotImplementedError

    def filter(self, mask: np.ndarray) -> "Column":
        """New column keeping rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise SchemaError(
                f"filter mask length {mask.shape} does not match column "
                f"{self.name!r} of length {len(self)}"
            )
        return self.take(np.flatnonzero(mask))

    def concat(self, other: "Column") -> "Column":
        """New column with ``other``'s rows appended."""
        raise NotImplementedError

    def to_objects(self) -> list:
        """Python-object view (floats / labels / None) for CSV export."""
        raise NotImplementedError

    def rename(self, name: str) -> "Column":
        raise NotImplementedError

    def equals(self, other: "Column") -> bool:
        """Value equality including missingness and (for categoricals) labels."""
        raise NotImplementedError


class NumericColumn(Column):
    """An interval-scaled column backed by a float64 array.

    Parameters
    ----------
    name:
        Column name.
    values:
        Any sequence coercible to float; ``None`` entries become missing.
    """

    def __init__(self, name: str, values: Iterable):
        self.name = name
        if isinstance(values, np.ndarray) and values.dtype.kind in "fiub":
            arr = values.astype(np.float64)
        else:
            obj = _object_array(values)
            missing = _none_mask(obj)
            if missing.any():
                obj = obj.copy()
                obj[missing] = np.nan
            try:
                arr = obj.astype(np.float64)
            except (TypeError, ValueError) as exc:
                raise SchemaError(
                    f"numeric column {name!r} has a non-numeric value: {exc}"
                ) from None
        if arr.ndim != 1:
            raise SchemaError(
                f"numeric column {name!r} requires 1-D data, got shape {arr.shape}"
            )
        self._values = arr
        self._values.flags.writeable = False

    @classmethod
    def _wrap(cls, name: str, values: np.ndarray) -> "NumericColumn":
        """Adopt a float64 array without copying.

        The caller must guarantee no other writer holds the array —
        fancy-indexing results, concatenations, read-only views and
        memory-mapped blocks all qualify.
        """
        col = cls.__new__(cls)
        col.name = name
        col._values = values
        if values.flags.writeable:
            values.flags.writeable = False
        return col

    @classmethod
    def from_array(cls, name: str, array: np.ndarray) -> "NumericColumn":
        """Wrap an existing float array without per-element conversion."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 1:
            raise SchemaError(
                f"numeric column {name!r} requires 1-D data, got shape {arr.shape}"
            )
        # Already-frozen arrays (another column's values, an mmap block)
        # cannot be mutated behind our back, so they are shared as-is.
        if arr.flags.writeable:
            arr = arr.copy()
        return cls._wrap(name, arr)

    def __len__(self) -> int:
        return self._values.shape[0]

    @property
    def is_numeric(self) -> bool:
        return True

    @property
    def values(self) -> np.ndarray:
        """Read-only float64 view; missing entries are NaN."""
        return self._values

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._values)

    def present_values(self) -> np.ndarray:
        """Only the non-missing values."""
        return self._values[~self.missing_mask()]

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn._wrap(self.name, self._values[indices])

    def slice(self, start: int, stop: int) -> "NumericColumn":
        return NumericColumn._wrap(self.name, self._values[start:stop])

    def concat(self, other: Column) -> "NumericColumn":
        if not isinstance(other, NumericColumn):
            raise ColumnTypeError(
                f"cannot concat numeric column {self.name!r} with "
                f"{type(other).__name__}"
            )
        return NumericColumn._wrap(
            self.name, np.concatenate([self._values, other._values])
        )

    def to_objects(self) -> list:
        out = self._values.astype(object)
        out[np.isnan(self._values)] = None
        return out.tolist()

    def rename(self, name: str) -> "NumericColumn":
        return NumericColumn._wrap(name, self._values)

    def equals(self, other: Column) -> bool:
        if not isinstance(other, NumericColumn) or len(self) != len(other):
            return False
        a, b = self._values, other._values
        both_nan = np.isnan(a) & np.isnan(b)
        with np.errstate(invalid="ignore"):
            same = (a == b) | both_nan
        return bool(same.all())

    # -- statistics ------------------------------------------------------
    def summary(self) -> dict:
        """Five-number-style summary over present values."""
        present = self.present_values()
        if present.size == 0:
            return {
                "count": 0, "missing": len(self), "mean": float("nan"),
                "std": float("nan"), "min": float("nan"),
                "median": float("nan"), "max": float("nan"),
            }
        return {
            "count": int(present.size),
            "missing": self.n_missing(),
            "mean": float(present.mean()),
            "std": float(present.std(ddof=1)) if present.size > 1 else 0.0,
            "min": float(present.min()),
            "median": float(np.median(present)),
            "max": float(present.max()),
        }

    def __repr__(self) -> str:
        return f"NumericColumn({self.name!r}, n={len(self)}, missing={self.n_missing()})"


class CategoricalColumn(Column):
    """A nominal column stored as integer codes into a label list.

    Parameters
    ----------
    name:
        Column name.
    values:
        Sequence of hashable labels; ``None`` entries become missing.
    labels:
        Optional explicit vocabulary.  When given, all present values
        must belong to it; this keeps train/validation splits sharing a
        single code space.
    """

    def __init__(
        self,
        name: str,
        values: Iterable,
        labels: Sequence[str] | None = None,
    ):
        self.name = name
        obj = _object_array(values)
        missing = _none_mask(obj)
        present = obj[~missing]
        try:
            present_str = present.astype(str)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"categorical column {name!r} has an unencodable value: {exc}"
            ) from None
        if labels is None:
            # Vocabulary in first-appearance order, encoded without a
            # per-element python loop: unique-sort, then rank the
            # sorted vocabulary by each label's first occurrence.
            uniq, first_pos, inverse = np.unique(
                present_str, return_index=True, return_inverse=True
            )
            appearance = np.argsort(first_pos, kind="stable")
            rank = np.empty(len(uniq), dtype=np.int64)
            rank[appearance] = np.arange(len(uniq), dtype=np.int64)
            self._labels = tuple(str(u) for u in uniq[appearance])
            present_codes = rank[inverse]
        else:
            self._labels = tuple(labels)
            if len(set(self._labels)) != len(self._labels):
                raise SchemaError(
                    f"categorical column {name!r} has duplicate labels"
                )
            present_codes = _encode_labels(name, present_str, self._labels)
        codes = np.full(len(obj), _MISSING_CODE, dtype=np.int64)
        codes[~missing] = present_codes
        self._codes = codes
        self._codes.flags.writeable = False

    @classmethod
    def _wrap(
        cls, name: str, codes: np.ndarray, labels: tuple[str, ...]
    ) -> "CategoricalColumn":
        """Adopt an int64 code array without copying or validating.

        Internal fast path: the caller must pass codes already known to
        be within ``[-1, len(labels))`` (e.g. taken from another
        column) and a tuple vocabulary.
        """
        col = cls.__new__(cls)
        col.name = name
        col._labels = labels
        col._codes = codes
        if codes.flags.writeable:
            codes.flags.writeable = False
        return col

    @classmethod
    def from_codes(
        cls, name: str, codes: np.ndarray, labels: Sequence[str]
    ) -> "CategoricalColumn":
        """Wrap existing integer codes (−1 = missing) with a vocabulary."""
        labels = tuple(labels)
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.max(initial=-1) >= len(labels)):
            raise SchemaError(
                f"code out of range for column {name!r} "
                f"(max {codes.max()}, vocabulary size {len(labels)})"
            )
        if codes.size and codes.min(initial=0) < _MISSING_CODE:
            raise SchemaError(f"negative code below missing marker in {name!r}")
        if codes.flags.writeable:
            codes = codes.copy()
        return cls._wrap(name, codes, labels)

    def __len__(self) -> int:
        return self._codes.shape[0]

    @property
    def is_numeric(self) -> bool:
        return False

    @property
    def codes(self) -> np.ndarray:
        """Read-only int64 codes; −1 marks missing."""
        return self._codes

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    def missing_mask(self) -> np.ndarray:
        return self._codes == _MISSING_CODE

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn._wrap(
            self.name, self._codes[indices], self._labels
        )

    def slice(self, start: int, stop: int) -> "CategoricalColumn":
        return CategoricalColumn._wrap(
            self.name, self._codes[start:stop], self._labels
        )

    def concat(self, other: Column) -> "CategoricalColumn":
        if not isinstance(other, CategoricalColumn):
            raise ColumnTypeError(
                f"cannot concat categorical column {self.name!r} with "
                f"{type(other).__name__}"
            )
        if other._labels == self._labels:
            return CategoricalColumn._wrap(
                self.name,
                np.concatenate([self._codes, other._codes]),
                self._labels,
            )
        # Re-encode the other column into a merged vocabulary.
        merged = list(self._labels)
        for label in other._labels:
            if label not in merged:
                merged.append(label)
        remap = np.array(
            [merged.index(lbl) for lbl in other._labels], dtype=np.int64
        )
        other_codes = np.where(
            other._codes == _MISSING_CODE,
            _MISSING_CODE,
            remap[np.clip(other._codes, 0, None)],
        )
        return CategoricalColumn._wrap(
            self.name,
            np.concatenate([self._codes, other_codes]),
            tuple(merged),
        )

    def to_objects(self) -> list:
        # Vocabulary lookup table with None parked at index -1, so the
        # missing code indexes it directly — one fancy-index, no loop.
        lut = np.empty(len(self._labels) + 1, dtype=object)
        lut[: len(self._labels)] = self._labels
        lut[-1] = None
        return lut[self._codes].tolist()

    def rename(self, name: str) -> "CategoricalColumn":
        return CategoricalColumn._wrap(name, self._codes, self._labels)

    def equals(self, other: Column) -> bool:
        if not isinstance(other, CategoricalColumn) or len(self) != len(other):
            return False
        if other._labels == self._labels:
            return bool(np.array_equal(self._codes, other._codes))
        # Different vocabularies may still express the same values:
        # remap the other column's codes into this vocabulary, sending
        # unshared labels to an impossible code so they can never match.
        if not other._labels:
            # Empty vocabulary means every code is missing already.
            other_codes = other._codes
        else:
            index = {label: code for code, label in enumerate(self._labels)}
            remap = np.fromiter(
                (index.get(label, -2) for label in other._labels),
                dtype=np.int64,
                count=len(other._labels),
            )
            other_codes = np.where(
                other._codes == _MISSING_CODE,
                _MISSING_CODE,
                remap[np.clip(other._codes, 0, None)],
            )
        return bool(np.array_equal(self._codes, other_codes))

    # -- statistics ------------------------------------------------------
    def value_counts(self) -> dict[str, int]:
        """Label → count over present values, in vocabulary order."""
        counts = np.bincount(
            self._codes[self._codes != _MISSING_CODE],
            minlength=len(self._labels),
        )
        return {label: int(n) for label, n in zip(self._labels, counts)}

    def summary(self) -> dict:
        counts = self.value_counts()
        mode = max(counts, key=counts.get) if counts else None
        return {
            "count": int(len(self) - self.n_missing()),
            "missing": self.n_missing(),
            "levels": len(self._labels),
            "mode": mode,
        }

    def __repr__(self) -> str:
        return (
            f"CategoricalColumn({self.name!r}, n={len(self)}, "
            f"levels={len(self._labels)}, missing={self.n_missing()})"
        )


def _encode_labels(
    name: str, present: np.ndarray, labels: tuple[str, ...]
) -> np.ndarray:
    """Vectorised label → code lookup against an explicit vocabulary."""
    label_arr = np.asarray(labels, dtype=present.dtype if present.size else str)
    order = np.argsort(label_arr, kind="stable")
    sorted_labels = label_arr[order]
    pos = np.searchsorted(sorted_labels, present)
    pos_clipped = np.clip(pos, 0, len(labels) - 1) if len(labels) else pos
    known = (
        (pos < len(labels)) & (sorted_labels[pos_clipped] == present)
        if len(labels)
        else np.zeros(present.shape, dtype=bool)
    )
    if not known.all():
        offender = present[~known][0]
        raise SchemaError(
            f"value {str(offender)!r} not in vocabulary of column {name!r}"
        )
    return order[pos_clipped].astype(np.int64)


def column_from_values(name: str, values: Iterable) -> Column:
    """Build the appropriate column type by inspecting the values.

    ints / floats / None → :class:`NumericColumn`; anything else →
    :class:`CategoricalColumn`.  Mixed numeric and string data is a
    schema error rather than a silent coercion.
    """
    values = list(values)
    kinds = {
        type(v) for v in values if v is not None
    }
    numeric_kinds = {int, float, np.float64, np.int64, np.int32, np.float32, bool}
    if not kinds or kinds <= numeric_kinds:
        return NumericColumn(name, values)
    if any(k in numeric_kinds for k in kinds):
        raise SchemaError(
            f"column {name!r} mixes numeric and non-numeric values"
        )
    return CategoricalColumn(name, values)
