"""Columnar table substrate used by every other subpackage.

Public surface::

    from repro.datatable import (
        DataTable, NumericColumn, CategoricalColumn,
        TableSchema, ColumnSpec, Role, MeasurementLevel,
        read_csv, write_csv,
    )
"""

from repro.datatable.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.datatable.io import (
    from_csv_string,
    read_csv,
    to_csv_string,
    write_csv,
)
from repro.datatable.schema import (
    ColumnSpec,
    MeasurementLevel,
    Role,
    TableSchema,
)
from repro.datatable.table import DataTable

__all__ = [
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "column_from_values",
    "DataTable",
    "TableSchema",
    "ColumnSpec",
    "Role",
    "MeasurementLevel",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
]
