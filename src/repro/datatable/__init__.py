"""Columnar table substrate used by every other subpackage.

Public surface::

    from repro.datatable import (
        DataTable, NumericColumn, CategoricalColumn,
        TableSchema, ColumnSpec, Role, MeasurementLevel,
        read_csv, write_csv,
    )
"""

from repro.datatable.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_values,
)
from repro.datatable.io import (
    cached_read_csv,
    default_cache_path,
    from_csv_string,
    read_binary,
    read_binary_header,
    read_csv,
    to_csv_string,
    write_binary,
    write_csv,
)
from repro.datatable.schema import (
    ColumnSpec,
    MeasurementLevel,
    Role,
    TableSchema,
)
from repro.datatable.table import DataTable

__all__ = [
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "column_from_values",
    "DataTable",
    "TableSchema",
    "ColumnSpec",
    "Role",
    "MeasurementLevel",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
    "read_binary",
    "read_binary_header",
    "write_binary",
    "cached_read_csv",
    "default_cache_path",
]
