"""Versioned, checksummed binary table artefacts (``.rpdt``).

The CSV path exists because the road authority's extracts are CSV; the
binary path exists because a regenerated million-segment study table
should load in milliseconds, not re-parse text on every run.  The
format is a single file::

    offset 0   magic  b"RPDT"
           4   u32    format version (currently 1)
           8   u64    header length in bytes (the JSON below)
          16   u32    crc32 of the header JSON
          20   header JSON (utf-8)
          ...  zero padding to a 64-byte boundary ("data start")
          ...  per-column blocks, each 64-byte aligned, declared order

The header records, per column: name, kind (numeric/categorical),
dtype, block offset *relative to data start*, byte length, crc32 and —
for categoricals — the label vocabulary.  Table schemas (roles /
measurement levels) round-trip through the header, as does a free-form
``meta`` dict used by the CSV cache to fingerprint its source.

Numeric blocks are little-endian float64, categorical blocks are
little-endian int64 codes (−1 = missing), exactly the in-memory layout
of :class:`~repro.datatable.column.NumericColumn` /
:class:`~repro.datatable.column.CategoricalColumn` — loading is
therefore zero-copy: columns wrap read-only memory-mapped views.

Failure policy: loading is atomic.  Bad magic / malformed header raise
:class:`~repro.exceptions.ArtefactError`, version skew raises
:class:`~repro.exceptions.ArtefactVersionError`, truncation, size
mismatch, out-of-range codes or (with ``verify=True``) block checksum
mismatches raise :class:`~repro.exceptions.ArtefactIntegrityError` —
a partial table is never returned.  Structural checks (magic, version,
header crc, exact file size, block bounds, code ranges) always run;
``verify=True`` additionally checksums every data block, which forces
the file off disk and is meant for tests and provenance audits rather
than the mmap fast path.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.datatable.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
)
from repro.datatable.schema import (
    ColumnSpec,
    MeasurementLevel,
    Role,
    TableSchema,
)
from repro.datatable.table import DataTable
from repro.exceptions import (
    ArtefactError,
    ArtefactIntegrityError,
    ArtefactVersionError,
)

__all__ = [
    "FORMAT_VERSION",
    "write_binary",
    "read_binary",
    "read_binary_header",
    "cached_read_csv",
]

MAGIC = b"RPDT"
FORMAT_VERSION = 1
_PREFIX = struct.Struct("<4sIQI")  # magic, version, header_len, header_crc
_ALIGN = 64

_NUMERIC_DTYPE = "<f8"
_CATEGORICAL_DTYPE = "<i8"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _column_block(column: Column) -> np.ndarray:
    """The column's raw values as a contiguous little-endian array."""
    arr = (
        column.values
        if isinstance(column, NumericColumn)
        else column.codes
    )
    dtype = _NUMERIC_DTYPE if column.is_numeric else _CATEGORICAL_DTYPE
    return np.ascontiguousarray(arr, dtype=dtype)


def _schema_payload(schema: TableSchema | None) -> list[dict] | None:
    if schema is None:
        return None
    return [
        {
            "name": s.name,
            "level": s.level.value,
            "role": s.role.value,
            "description": s.description,
            "units": s.units,
        }
        for s in schema
    ]


def _schema_from_payload(payload: list[dict] | None) -> TableSchema | None:
    if payload is None:
        return None
    try:
        return TableSchema(
            [
                ColumnSpec(
                    name=entry["name"],
                    level=MeasurementLevel(entry["level"]),
                    role=Role(entry["role"]),
                    description=entry.get("description", ""),
                    units=entry.get("units", ""),
                )
                for entry in payload
            ]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtefactError(f"malformed schema payload: {exc}") from exc


def write_binary(
    table: DataTable, path: str | Path, meta: dict | None = None
) -> None:
    """Persist ``table`` at ``path`` in the ``.rpdt`` binary format.

    The write is atomic (temp file + rename), so a concurrent reader
    sees either the previous artefact or the complete new one.
    """
    path = Path(path)
    blocks = [_column_block(col) for col in table.columns()]
    columns = []
    offset = 0
    for col, block in zip(table.columns(), blocks):
        offset = _align(offset)
        entry = {
            "name": col.name,
            "kind": "numeric" if col.is_numeric else "categorical",
            "dtype": _NUMERIC_DTYPE if col.is_numeric else _CATEGORICAL_DTYPE,
            "offset": offset,
            "nbytes": int(block.nbytes),
            "crc32": zlib.crc32(block.tobytes()),
        }
        if isinstance(col, CategoricalColumn):
            entry["labels"] = list(col.labels)
        columns.append(entry)
        offset += int(block.nbytes)
    header = {
        "format_version": FORMAT_VERSION,
        "n_rows": table.n_rows,
        "data_size": offset,
        "columns": columns,
        "schema": _schema_payload(table.schema),
        "meta": meta or {},
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    prefix = _PREFIX.pack(
        MAGIC, FORMAT_VERSION, len(header_bytes), zlib.crc32(header_bytes)
    )
    data_start = _align(_PREFIX.size + len(header_bytes))

    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(prefix)
            handle.write(header_bytes)
            handle.write(b"\x00" * (data_start - _PREFIX.size - len(header_bytes)))
            cursor = 0
            for entry, block in zip(columns, blocks):
                handle.write(b"\x00" * (entry["offset"] - cursor))
                handle.write(memoryview(block))
                cursor = entry["offset"] + entry["nbytes"]
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()


def read_binary_header(path: str | Path) -> dict:
    """Validated header of an ``.rpdt`` artefact (no data blocks read).

    Raises the same typed errors as :func:`read_binary` for structural
    problems; used by the CSV cache to check source fingerprints
    without paying for a table load.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        raw_prefix = handle.read(_PREFIX.size)
        if len(raw_prefix) < _PREFIX.size:
            raise ArtefactIntegrityError(
                f"{path}: truncated before the header prefix"
            )
        magic, version, header_len, header_crc = _PREFIX.unpack(raw_prefix)
        if magic != MAGIC:
            raise ArtefactError(
                f"{path}: not a binary table artefact (magic {magic!r})"
            )
        if version != FORMAT_VERSION:
            raise ArtefactVersionError(
                f"{path}: format version {version} is not supported "
                f"(reader supports {FORMAT_VERSION})"
            )
        header_bytes = handle.read(header_len)
    if len(header_bytes) < header_len:
        raise ArtefactIntegrityError(f"{path}: truncated inside the header")
    if zlib.crc32(header_bytes) != header_crc:
        raise ArtefactIntegrityError(f"{path}: header checksum mismatch")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ArtefactError(f"{path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or "columns" not in header:
        raise ArtefactError(f"{path}: header is not a column manifest")
    header["_data_start"] = _align(_PREFIX.size + header_len)
    return header


def read_binary(
    path: str | Path, mmap: bool = True, verify: bool = False
) -> DataTable:
    """Load an ``.rpdt`` artefact written by :func:`write_binary`.

    With ``mmap=True`` (the default) numeric blocks are memory-mapped
    read-only views — the table is usable immediately and pages in on
    demand, which is what makes a million-row load millisecond-class.
    ``verify=True`` additionally checks every block's crc32 (reads the
    whole file).
    """
    path = Path(path)
    header = read_binary_header(path)
    data_start = header.pop("_data_start")
    try:
        n_rows = int(header["n_rows"])
        data_size = int(header["data_size"])
        manifest = list(header["columns"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtefactError(f"{path}: malformed header fields: {exc}") from exc

    actual_size = path.stat().st_size
    expected_size = data_start + data_size
    if actual_size != expected_size:
        raise ArtefactIntegrityError(
            f"{path}: file is {actual_size} bytes, header declares "
            f"{expected_size} — truncated or trailing garbage"
        )

    if not mmap:
        with open(path, "rb") as handle:
            handle.seek(data_start)
            data = handle.read(data_size)
        if len(data) != data_size:
            raise ArtefactIntegrityError(f"{path}: truncated data section")

    columns: list[Column] = []
    for entry in manifest:
        try:
            name = entry["name"]
            kind = entry["kind"]
            dtype = np.dtype(entry["dtype"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtefactError(
                f"{path}: malformed column entry: {exc}"
            ) from exc
        if offset < 0 or offset + nbytes > data_size:
            raise ArtefactIntegrityError(
                f"{path}: column {name!r} block [{offset}, {offset + nbytes}) "
                f"escapes the {data_size}-byte data section"
            )
        if nbytes != n_rows * dtype.itemsize:
            raise ArtefactIntegrityError(
                f"{path}: column {name!r} holds {nbytes} bytes, expected "
                f"{n_rows} rows of {dtype.itemsize}"
            )
        if mmap:
            block = np.memmap(
                path,
                mode="r",
                dtype=dtype,
                offset=data_start + offset,
                shape=(n_rows,),
            )
        else:
            block = np.frombuffer(data, dtype=dtype, offset=offset, count=n_rows)
        if verify and zlib.crc32(block.tobytes()) != entry.get("crc32"):
            raise ArtefactIntegrityError(
                f"{path}: column {name!r} data checksum mismatch"
            )
        if kind == "numeric":
            columns.append(NumericColumn._wrap(name, block))
        elif kind == "categorical":
            labels = entry.get("labels")
            if not isinstance(labels, list):
                raise ArtefactError(
                    f"{path}: categorical column {name!r} has no vocabulary"
                )
            codes = np.asarray(block)
            if codes.size and (
                codes.max(initial=-1) >= len(labels)
                or codes.min(initial=0) < -1
            ):
                raise ArtefactIntegrityError(
                    f"{path}: column {name!r} has codes outside its "
                    f"{len(labels)}-label vocabulary"
                )
            columns.append(
                CategoricalColumn._wrap(
                    name, codes, tuple(str(label) for label in labels)
                )
            )
        else:
            raise ArtefactError(
                f"{path}: column {name!r} has unknown kind {kind!r}"
            )
    schema = _schema_from_payload(header.get("schema"))
    try:
        return DataTable(columns, schema=schema)
    except Exception as exc:
        raise ArtefactError(f"{path}: inconsistent table: {exc}") from exc


# -- transparent CSV → binary cache -------------------------------------


def _source_fingerprint(path: Path, with_digest: bool = True) -> dict:
    stat = path.stat()
    fingerprint = {"size": stat.st_size, "mtime_ns": stat.st_mtime_ns}
    if with_digest:
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        fingerprint["sha256"] = digest.hexdigest()
    return fingerprint


def default_cache_path(path: str | Path) -> Path:
    """Where :func:`cached_read_csv` keeps the sidecar artefact."""
    path = Path(path)
    return path.with_name(path.name + ".rpdt")


def cached_read_csv(
    path: str | Path,
    cache_path: str | Path | None = None,
    refresh: bool = False,
) -> DataTable:
    """Read a CSV with a transparent binary cache keyed to the source.

    First call parses the CSV and writes a sidecar ``.rpdt`` artefact
    whose header records the source's size, mtime and sha256.  Later
    calls memory-map the artefact instead of re-parsing: a stat match
    (size + mtime) is trusted outright; a stat mismatch falls back to
    the sha256, so a touched-but-identical file still hits.  Any
    mismatch — or any unreadable/corrupt cache — silently rebuilds
    from the CSV; the cache can never serve stale or partial rows.
    """
    from repro.datatable.io import read_csv

    path = Path(path)
    cache = Path(cache_path) if cache_path is not None else default_cache_path(path)
    if not refresh and cache.exists():
        try:
            cached_source = read_binary_header(cache).get("meta", {}).get(
                "source", {}
            )
            current = _source_fingerprint(path, with_digest=False)
            matches = all(
                cached_source.get(key) == current[key] for key in current
            )
            if not matches:
                matches = (
                    _source_fingerprint(path)["sha256"]
                    == cached_source.get("sha256")
                )
            if matches:
                return read_binary(cache, mmap=True)
        except ArtefactError:
            pass  # fall through to a rebuild
    table = read_csv(path)
    write_binary(table, cache, meta={"source": _source_fingerprint(path)})
    return table
