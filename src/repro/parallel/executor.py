"""The sweep executor: pluggable serial / process backends.

``SweepExecutor`` runs batches of :class:`~repro.parallel.tasks.SweepTask`
and records a :class:`~repro.parallel.timing.StageTimings` as it goes.
Backends:

``serial``
    In-process loop, selected by ``n_jobs=1`` (the default).  This is
    the reference implementation — deterministic and debuggable.
``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` with ``n_jobs``
    workers, selected by ``n_jobs != 1``.  Results are collected in
    submission order and every task carries its own derived seed, so
    the output is bit-identical to the serial backend — only the wall
    clock differs.

The pool is created lazily on first use and reused across stages; use
the executor as a context manager (or call :meth:`SweepExecutor.shutdown`)
to release the workers.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.obs import trace as obs_trace
from repro.parallel.tasks import SweepTask, TaskResult, execute_task
from repro.parallel.timing import StageTiming, StageTimings, TaskTiming

__all__ = ["SweepExecutor", "available_backends", "resolve_n_jobs"]


def available_backends() -> tuple[str, ...]:
    return ("serial", "process")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a worker count >= 1.

    ``None`` and ``0`` mean "all cores"; negative values count back
    from the core count (``-1`` = all cores, ``-2`` = all but one),
    following the joblib convention.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return int(n_jobs)


class _SerialBackend:
    name = "serial"

    def run(self, tasks: Sequence[SweepTask]) -> list[TaskResult]:
        return [execute_task(task) for task in tasks]

    def shutdown(self) -> None:  # nothing to release
        pass


class _ProcessBackend:
    name = "process"

    def __init__(self, n_jobs: int):
        self.n_jobs = n_jobs
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Fork (where available) shares the already-imported library
            # and the parent's dataset pages with the workers; tasks are
            # seed-complete, so the start method cannot affect results.
            import multiprocessing

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_jobs, mp_context=context
            )
        return self._pool

    def run(self, tasks: Sequence[SweepTask]) -> list[TaskResult]:
        pool = self._ensure_pool()
        # map() preserves submission order regardless of completion order.
        return list(pool.map(execute_task, tasks))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class SweepExecutor:
    """Dispatches sweep tasks over a backend and records stage timings.

    Parameters
    ----------
    n_jobs:
        Worker count; ``1`` (default) selects the serial backend,
        anything else a process pool of ``resolve_n_jobs(n_jobs)``
        workers.  ``None`` / ``0`` use all cores; negatives count back
        from the core count.
    backend:
        Explicit backend override (``"serial"`` or ``"process"``),
        mainly for tests; normally derived from ``n_jobs``.
    """

    def __init__(self, n_jobs: int | None = 1, backend: str | None = None):
        self.n_jobs = resolve_n_jobs(n_jobs)
        if backend is None:
            backend = "serial" if self.n_jobs == 1 else "process"
        if backend not in available_backends():
            raise ConfigurationError(
                f"backend must be one of {available_backends()}, "
                f"got {backend!r}"
            )
        self.backend_name = backend
        self._backend = (
            _SerialBackend()
            if backend == "serial"
            else _ProcessBackend(self.n_jobs)
        )
        self.timings = StageTimings(backend=backend, n_jobs=self.n_jobs)

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._backend.shutdown()

    # -- execution -------------------------------------------------------
    def run(
        self, tasks: Sequence[SweepTask], stage: str = "sweep"
    ) -> list[TaskResult]:
        """Run a task batch; results come back in submission order.

        When a tracer is active in this context, the batch runs under
        an ``executor.run`` span whose context is shipped inside every
        task; worker-side spans come back in the results and are
        absorbed here, stitching serial and process backends into the
        same connected trace.
        """
        tracer = obs_trace.current_tracer()
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "executor.run",
                stage=stage,
                backend=self.backend_name,
                n_tasks=len(tasks),
            ) as run_span:
                ctx = run_span.context()
                results = self._backend.run(
                    [
                        dataclasses.replace(task, trace_context=ctx)
                        for task in tasks
                    ]
                )
                for result in results:
                    tracer.absorb(result.spans)
        else:
            results = self._backend.run(list(tasks))
        self.timings.stages.append(
            StageTiming(
                stage=stage,
                wall_seconds=time.perf_counter() - start,
                tasks=[
                    TaskTiming(
                        key=r.key, seconds=r.seconds, threshold=r.threshold
                    )
                    for r in results
                ],
            )
        )
        return results

    @contextmanager
    def timed_stage(self, stage: str) -> Iterator[None]:
        """Time a non-task stage (selection, clustering) into the record."""
        start = time.perf_counter()
        try:
            with obs_trace.span(f"stage.{stage}", backend=self.backend_name):
                yield
        finally:
            self.timings.stages.append(
                StageTiming(
                    stage=stage,
                    wall_seconds=time.perf_counter() - start,
                )
            )

    def attach_cache_stats(self, cache) -> None:
        """Copy a ``ThresholdDatasetCache``'s counters into the record."""
        self.timings.cache_hits = cache.hits
        self.timings.cache_misses = cache.misses
