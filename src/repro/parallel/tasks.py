"""Task units for the sweep-execution engine.

A :class:`SweepTask` is one node of the sweep DAG: a plain function
call tagged with the stage it belongs to and the threshold it models.
Tasks must be *self-contained and picklable* so the process backend can
ship them to workers: ``fn`` has to be a module-level callable and the
arguments must survive ``pickle`` (``DataTable`` and the dataclasses
built on it do).

Determinism contract: a task carries every input its function needs —
including its derived random seed — so its result depends only on the
task itself, never on which backend runs it or in what order.  That is
what makes ``n_jobs=N`` output bit-identical to ``n_jobs=1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["SweepTask", "TaskResult", "execute_task"]


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Unique human-readable id, e.g. ``"phase1/cp-4"``; used to label
        per-task timings.
    fn:
        A module-level callable (picklable by reference).
    args / kwargs:
        Call arguments; must be picklable for the process backend.
    stage:
        The sweep stage the task belongs to (``"phase1"``,
        ``"supporting-bayes"``, ...).
    threshold:
        The CP-k threshold the task models, if any.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    stage: str = ""
    threshold: int | None = None


@dataclass(frozen=True)
class TaskResult:
    """A task's return value plus its measured wall time."""

    key: str
    value: Any
    seconds: float
    threshold: int | None = None


def execute_task(task: SweepTask) -> TaskResult:
    """Run one task and time it.

    This is the worker entry point for every backend: the serial
    backend calls it inline, the process backend ships it to pool
    workers.  Timing happens inside the worker so per-task seconds
    reflect compute, not queueing.
    """
    start = time.perf_counter()
    value = task.fn(*task.args, **task.kwargs)
    return TaskResult(
        key=task.key,
        value=value,
        seconds=time.perf_counter() - start,
        threshold=task.threshold,
    )
