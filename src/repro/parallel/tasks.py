"""Task units for the sweep-execution engine.

A :class:`SweepTask` is one node of the sweep DAG: a plain function
call tagged with the stage it belongs to and the threshold it models.
Tasks must be *self-contained and picklable* so the process backend can
ship them to workers: ``fn`` has to be a module-level callable and the
arguments must survive ``pickle`` (``DataTable`` and the dataclasses
built on it do).

Determinism contract: a task carries every input its function needs —
including its derived random seed — so its result depends only on the
task itself, never on which backend runs it or in what order.  That is
what makes ``n_jobs=N`` output bit-identical to ``n_jobs=1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.span import Span, SpanContext
from repro.obs.trace import Tracer, use_tracer

__all__ = ["SweepTask", "TaskResult", "execute_task"]


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work.

    Attributes
    ----------
    key:
        Unique human-readable id, e.g. ``"phase1/cp-4"``; used to label
        per-task timings.
    fn:
        A module-level callable (picklable by reference).
    args / kwargs:
        Call arguments; must be picklable for the process backend.
    stage:
        The sweep stage the task belongs to (``"phase1"``,
        ``"supporting-bayes"``, ...).
    threshold:
        The CP-k threshold the task models, if any.
    trace_context:
        Optional shipped span context of the dispatching executor.
        When set, the worker wraps the call in a ``task.<key>`` span
        parented onto it and returns the recorded spans inside the
        result, so a cross-process sweep reassembles into one trace.
        ``None`` (the default, when nobody is tracing) keeps the task
        payload and the hot path identical to an uninstrumented build.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    stage: str = ""
    threshold: int | None = None
    trace_context: SpanContext | None = None


@dataclass(frozen=True)
class TaskResult:
    """A task's return value plus its measured wall time.

    ``spans`` holds the worker-side span records when the task was
    dispatched with a ``trace_context`` (empty otherwise); the executor
    absorbs them into the dispatching tracer on collection.
    """

    key: str
    value: Any
    seconds: float
    threshold: int | None = None
    spans: tuple[Span, ...] = ()


def execute_task(task: SweepTask) -> TaskResult:
    """Run one task and time it.

    This is the worker entry point for every backend: the serial
    backend calls it inline, the process backend ships it to pool
    workers.  Timing happens inside the worker so per-task seconds
    reflect compute, not queueing.

    When the task carries a ``trace_context``, the call runs under a
    fresh local tracer (not the worker's process-wide default) whose
    root span parents onto the shipped context — in-process backends
    get the same treatment so serial and process traces have identical
    shape.
    """
    if task.trace_context is None:
        start = time.perf_counter()
        value = task.fn(*task.args, **task.kwargs)
        return TaskResult(
            key=task.key,
            value=value,
            seconds=time.perf_counter() - start,
            threshold=task.threshold,
        )
    tracer = Tracer(enabled=True, max_spans=None)
    start = time.perf_counter()
    with use_tracer(tracer):
        with tracer.span(
            f"task.{task.key}",
            parent=task.trace_context,
            stage=task.stage,
            threshold=task.threshold,
        ):
            value = task.fn(*task.args, **task.kwargs)
    return TaskResult(
        key=task.key,
        value=value,
        seconds=time.perf_counter() - start,
        threshold=task.threshold,
        spans=tuple(tracer.drain()),
    )
