"""Memoised CP-k threshold dataset construction.

``run_full_study`` sweeps the same crash-only table with several model
families (trees, naive Bayes, optionally M5), and each family used to
call ``build_threshold_dataset`` afresh at every threshold.  The
derivation is pure — the CP-k dataset is a function of the source
table and the threshold alone — so one build per ``(table, threshold)``
can serve every family.  (The build itself is now a vectorised kernel,
but at paper scale it still costs a table copy per threshold; the
cache keeps the sweep's working set at one dataset per threshold.)

Identity model: a key is ``(id(table), threshold)`` and the cache holds
a strong reference to each source table, so a table's ``id`` cannot be
recycled while its entries are alive.  A *different* table object —
even one with equal contents — is a different key; callers that want
sharing must pass the same object, which is exactly how the study
threads its instance tables through a run.

Long-lived processes (scenario fleets sweeping many generated tables)
can pass ``max_entries`` to bound the cache: entries are evicted least
recently used, together with the table reference that kept their
source alive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.obs.trace import span as obs_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.thresholds import ThresholdDataset
    from repro.datatable import DataTable

__all__ = ["ThresholdDatasetCache"]


class ThresholdDatasetCache:
    """Memoises ``build_threshold_dataset`` per ``(table, threshold)``."""

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[int, int], "ThresholdDataset"] = (
            OrderedDict()
        )
        self._tables: dict[int, "DataTable"] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, table: "DataTable", threshold: int) -> "ThresholdDataset":
        """The CP-``threshold`` dataset of ``table``, built at most once."""
        from repro.core.thresholds import build_threshold_dataset

        key = (id(table), int(threshold))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            with obs_span(
                "cache.threshold_dataset", threshold=int(threshold), hit=True
            ):
                return entry
        self.misses += 1
        with obs_span(
            "cache.threshold_dataset", threshold=int(threshold), hit=False
        ):
            dataset = build_threshold_dataset(table, threshold)
        self._entries[key] = dataset
        self._tables[key[0]] = table
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                evicted_key, _ = self._entries.popitem(last=False)
                if not any(k[0] == evicted_key[0] for k in self._entries):
                    self._tables.pop(evicted_key[0], None)
        return dataset

    def contains(self, table: "DataTable", threshold: int) -> bool:
        """True if ``get`` would hit (without touching the counters)."""
        return (id(table), int(threshold)) in self._entries

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self._tables.clear()
        self.hits = 0
        self.misses = 0
