"""Parallel sweep execution for the threshold studies.

The paper's modelling loop refits two trees plus the supporting model
families at every crash-count threshold.  Each ``(threshold, model)``
fit is independent of every other — the sweep is a DAG whose only joins
are threshold *selection* (needs both phases) and phase-3 clustering
(needs the selection).  This package turns those independent fits into
dispatchable tasks:

:class:`~repro.parallel.tasks.SweepTask`
    One picklable unit of work: a module-level function plus arguments,
    tagged with its stage and threshold.
:class:`~repro.parallel.executor.SweepExecutor`
    Runs task batches on a pluggable backend — ``serial`` (in-process,
    the ``n_jobs=1`` default) or ``process``
    (:class:`concurrent.futures.ProcessPoolExecutor`).  Results come
    back in submission order and every task carries its own
    deterministic seed, so the parallel output is bit-identical to the
    serial output.
:class:`~repro.parallel.cache.ThresholdDatasetCache`
    Memoises ``build_threshold_dataset`` per ``(table, threshold)`` so
    one CP-k table serves every model family that sweeps it.
:class:`~repro.parallel.timing.StageTimings`
    Wall time per stage and per task, tasks dispatched, and cache
    hit/miss counts — threaded into ``StudyReport`` and printed by the
    CLI ``--timings`` flag.
"""

from repro.parallel.cache import ThresholdDatasetCache
from repro.parallel.executor import (
    SweepExecutor,
    available_backends,
    resolve_n_jobs,
)
from repro.parallel.tasks import SweepTask, TaskResult, execute_task
from repro.parallel.timing import StageTiming, StageTimings, TaskTiming

__all__ = [
    "SweepTask",
    "TaskResult",
    "execute_task",
    "SweepExecutor",
    "available_backends",
    "resolve_n_jobs",
    "ThresholdDatasetCache",
    "TaskTiming",
    "StageTiming",
    "StageTimings",
]
